#!/usr/bin/env python
"""Deployment crawl: reproduce Figure 4 on a synthetic Tribler network.

Generates a heavy-tailed population, runs the 30-day measurement crawl,
and prints the contribution imbalance and the reputation CDF exactly as
the paper reports them.

Run:  python examples/deployment_crawl.py [--peers N] [--seed N]
"""

import argparse

import numpy as np

from repro.analysis.ascii_plot import ascii_chart, render_table
from repro.deployment.network import DeploymentParams
from repro.experiments import run_fig4

GB = 1024.0**3


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--peers", type=int, default=1500)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    result = run_fig4(DeploymentParams(num_peers=args.peers), seed=args.seed)
    net = result.net_contribution

    print(f"peers seen by the measurement peer : {result.peers_seen}")
    print(f"messages logged over 30 days       : {result.messages_logged}\n")

    print("== Figure 4(a): upload - download of the seen peers ==")
    rows = [
        ("net-negative peers", f"{(net < 0).mean():.0%}"),
        ("exactly zero (fresh installs)", f"{(net == 0).mean():.0%}"),
        ("net-positive peers", f"{(net > 0).mean():.0%}"),
        ("biggest altruist", f"{net.max() / GB:.1f} GB"),
        ("heaviest consumer", f"{net.min() / GB:.1f} GB"),
    ]
    print(render_table(["statistic", "value"], rows))

    print("\n== Figure 4(b): reputation CDF at the measurement peer ==")
    print(
        ascii_chart(
            {"cdf": result.reputation_cdf},
            y_label="cumulative fraction vs sorted reputation",
        )
    )
    f = result.fractions
    print(
        f"\nnegative={f['negative']:.0%}  zero={f['zero']:.0%}  "
        f"positive={f['positive']:.0%}   (paper: ~40% / ~50% / ~10%)"
    )


if __name__ == "__main__":
    main()
