#!/usr/bin/env python
"""Liar attack: how far can selfish lying carry a freerider?

Builds a small gossip network in which one peer lies outrageously about
its contribution (claims multi-GB uploads, zero downloads) and shows why
the maxflow bound keeps the damage local: the liar's reputation at any
evaluator is capped by the evaluator's *real* incoming service.

Then runs the Figure 3(b) sweep in miniature: the community-wide effect
of increasing liar fractions under the ban policy.

Run:  python examples/liar_attack.py
"""

from repro.analysis.ascii_plot import render_table
from repro.core import BarterCastNode, SelfishLiar, MB
from repro.experiments import ScenarioConfig, run_fig3


def microcosm() -> None:
    print("== Microcosm: one liar, one honest relay, one evaluator ==\n")
    liar = BarterCastNode("liar", behavior=SelfishLiar(lie_upload_bytes=100_000 * MB))
    relay = BarterCastNode("relay")
    evaluator = BarterCastNode("eva")

    # Reality: the liar downloaded 300 MB from the relay and gave nothing.
    liar.record_download("relay", 300 * MB, now=1.0)
    relay.record_upload("liar", 300 * MB, now=1.0)

    # The evaluator's real experience: it received 80 MB from the relay.
    evaluator.record_download("relay", 80 * MB, now=2.0)

    # Honest gossip reaches the evaluator first...
    evaluator.receive_message(relay.create_message(now=3.0))
    honest_view = evaluator.reputation_of("liar")

    # ...then the liar's fabricated message (claims ~100 GB uploaded).
    evaluator.receive_message(liar.create_message(now=4.0))
    after_lie = evaluator.reputation_of("liar")

    cap = evaluator.config.metric.scale(80 * MB)
    print(f"reputation of liar before its lie : {honest_view:+.3f}")
    print(f"reputation of liar after its lie  : {after_lie:+.3f}")
    print(f"hard cap from 80 MB real service  : {cap:+.3f}")
    print(
        "\nThe lie moved the needle only within the maxflow bound: the\n"
        "evaluator weighs hearsay by what it actually received.\n"
    )


def community_sweep() -> None:
    print("== Community: Figure 3(b) in miniature (ban policy, delta=-0.5) ==\n")
    scenario = ScenarioConfig.tiny(seed=11)
    result = run_fig3(scenario, kind="lie", percentages=(0, 25, 50))
    rows = [
        (f"{pct:.0f}%", s, f)
        for pct, s, f in zip(
            result.percentages, result.sharer_speed_kbps, result.freerider_speed_kbps
        )
    ]
    print(render_table(["% lying", "sharer KBps", "freerider KBps"], rows, "{:.1f}"))
    print(
        "\nThe paper finds the protocol remains effective below ~18% liars\n"
        "at full scale; run `python -m repro.cli fig3 --profile paper` for\n"
        "the full-week version."
    )


if __name__ == "__main__":
    microcosm()
    community_sweep()
