#!/usr/bin/env python
"""Policy showdown: plain BitTorrent vs rank vs ban on one community.

Runs the same trace-driven community (identical trace, identical
sharer/freerider split, identical seeds) under three policies and prints
the speed each group achieved — the experiment behind Figure 2 of the
paper, in miniature.

Run:  python examples/policy_showdown.py [--profile fast|paper] [--seed N]

The fast profile takes a minute or two; the tiny profile is instant but
has too little contention for the policies to differentiate.
"""

import argparse

from repro.analysis.ascii_plot import render_table
from repro.core.policies import BanPolicy, NoPolicy, RankPolicy
from repro.experiments import ScenarioConfig, build_simulation

KB = 1024.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="fast", choices=("tiny", "fast", "paper"))
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    scenario = ScenarioConfig.named(args.profile, seed=args.seed)
    policies = [NoPolicy(), RankPolicy(), BanPolicy(-0.5)]

    rows = []
    for policy in policies:
        sim = build_simulation(scenario, policy=policy)
        stats = sim.run()
        sharer = stats.group_mean_speed(sim.roles.sharers) / KB
        freerider = stats.group_mean_speed(sim.roles.freeriders) / KB
        rows.append(
            (
                policy.name,
                sharer,
                freerider,
                freerider / sharer if sharer > 0 else float("nan"),
            )
        )

    print(f"profile={scenario.name} seed={scenario.seed} "
          f"({scenario.trace_params.num_peers} peers, "
          f"{scenario.trace_params.num_swarms} swarms, "
          f"{scenario.trace_params.duration / 86400:.0f} days)\n")
    print(
        render_table(
            ["policy", "sharer KBps", "freerider KBps", "freerider/sharer"],
            rows,
            "{:.1f}",
        )
    )
    print(
        "\nThe ban policy gives freeriders the strongest disincentive\n"
        "(lowest freerider/sharer ratio); the paper reports the same\n"
        "ordering at full scale, where sharers overtake by day ~3\n"
        "(Figure 2; see EXPERIMENTS.md for the full-week numbers)."
    )


if __name__ == "__main__":
    main()
