#!/usr/bin/env python
"""Trace tooling: generate, inspect, persist, and reuse community traces.

The trace substrate replaces the paper's proprietary filelist.org scrape;
this example shows the workload structure it produces (sessions, flash
crowds, file sizes, connectability) and the JSON round-trip used to
archive a workload next to its experiment results.

Run:  python examples/trace_tooling.py [--seed N] [--out trace.json]
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis.ascii_plot import render_table
from repro.traces import (
    SyntheticTraceGenerator,
    TraceParams,
    load_trace,
    save_trace,
)

DAY = 86400.0
MB = 1024.0**2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=None, help="where to write the JSON trace")
    args = parser.parse_args()

    params = TraceParams(num_peers=60, num_swarms=6, duration=4 * DAY)
    trace = SyntheticTraceGenerator(params, seed=args.seed).generate()

    print(f"{trace!r}\n")

    # Per-swarm workload: size and flash-crowd arrival pattern.
    rows = []
    for sid, spec in sorted(trace.swarms.items()):
        times = sorted(r.time for r in trace.requests if r.swarm_id == sid)
        first = times[0] / 3600 if times else float("nan")
        spread = (times[-1] - times[0]) / 3600 if len(times) > 1 else 0.0
        rows.append(
            (sid, spec.file_size / MB, spec.num_pieces, len(times), first, spread)
        )
    print(render_table(
        ["swarm", "size MB", "pieces", "requests", "first req (h)", "spread (h)"],
        rows, "{:.1f}",
    ))

    # Session structure: how online is this community?
    uptimes = [p.total_uptime / trace.duration for p in trace.peers.values()]
    connectable = np.mean([p.connectable for p in trace.peers.values()])
    print(f"\nmean online fraction: {np.mean(uptimes):.2f}   "
          f"connectable peers: {connectable:.0%}")

    # Concurrency preview: online peers per 6-hour slot.
    slots = np.arange(0.0, trace.duration, 6 * 3600.0)
    online = [sum(p.online_at(t) for p in trace.peers.values()) for t in slots]
    print("online peers per 6h slot:", online)

    # Persist and reload — bit-identical workloads for later reruns.
    out = Path(args.out) if args.out else Path(tempfile.gettempdir()) / "trace.json"
    save_trace(trace, out)
    reloaded = load_trace(out)
    assert reloaded.num_peers == trace.num_peers
    assert len(reloaded.requests) == len(trace.requests)
    print(f"\ntrace archived to {out} ({out.stat().st_size} bytes) and verified.")


if __name__ == "__main__":
    main()
