#!/usr/bin/env python
"""Whitewashing defenses: the paper's §3.5 trade-off, measured.

A population of honest newcomers and identity-cycling whitewashers
requests service from BarterCast-running sharers under three stranger
policies.  Shows why the deployed system leans on permanent identities,
and what the (static / adaptive) newcomer-penalty alternatives cost.

Run:  python examples/whitewash_defense.py
"""

from repro.analysis.ascii_plot import ascii_chart, render_table
from repro.experiments import WhitewashParams, run_whitewash


def main() -> None:
    params = WhitewashParams(rounds=150)
    kinds = ("trusted", "static", "adaptive")
    results = {kind: run_whitewash(kind, params, seed=42) for kind in kinds}

    rows = [
        (
            kind,
            results[kind].service["newcomer"],
            results[kind].service["washer"],
            results[kind].washer_advantage,
            results[kind].identities_burned,
        )
        for kind in kinds
    ]
    print(
        render_table(
            ["stranger policy", "newcomer units", "washer units",
             "washer/newcomer", "identities burned"],
            rows,
            "{:.1f}",
        )
    )

    print("\nAdaptive stranger prior over time (sinks as burned identities")
    print("teach the community what strangers have been worth):\n")
    print(ascii_chart({"prior": results["adaptive"].prior_trajectory}))

    print(
        "\nReading: with permanent identities (trusted) whitewashing is free;\n"
        "a static penalty below the ban threshold locks washers out but makes\n"
        "every honest newcomer pre-pay; the adaptive policy converges to the\n"
        "same lockout while charging honest newcomers only during attacks."
    )


if __name__ == "__main__":
    main()
