#!/usr/bin/env python
"""Quickstart: BarterCast in 60 lines.

Three peers exchange data; gossip spreads the word; reputations follow.
Run:  python examples/quickstart.py
"""

from repro.core import BarterCastNode, MB


def main() -> None:
    # Three peers. Alice seeds generously, Bob downloads and relays,
    # Carol is a stranger who only hears about the others through gossip.
    alice = BarterCastNode("alice")
    bob = BarterCastNode("bob")
    carol = BarterCastNode("carol")

    # Alice uploads 400 MB to Bob; both sides account the transfer in
    # their tamper-proof private histories.
    alice.record_upload("bob", 400 * MB, now=100.0)
    bob.record_download("alice", 400 * MB, now=100.0)

    # Bob relays 150 MB of it onward to Carol.
    bob.record_upload("carol", 150 * MB, now=200.0)
    carol.record_download("bob", 150 * MB, now=200.0)

    # Direct experience: Bob rates Alice positively, Alice rates Bob
    # negatively (Bob consumed and has not yet reciprocated).
    print("Direct experience")
    print(f"  R_bob(alice)  = {bob.reputation_of('alice'):+.3f}  (alice served bob)")
    print(f"  R_alice(bob)  = {alice.reputation_of('bob'):+.3f}  (bob consumed)")

    # Gossip: Bob sends Carol a BarterCast message — a selection of his
    # private history (his top uploaders and most recent contacts).
    message = bob.create_message(now=300.0)
    applied = carol.receive_message(message)
    print(f"\nCarol ingested {applied} record(s) from bob's message")

    # Carol has never met Alice, but now knows alice->bob->carol: a 2-hop
    # path whose maxflow is bounded by what Carol actually received from
    # Bob — hearsay can never outrank direct experience.
    print("\nAfter gossip")
    print(f"  R_carol(alice) = {carol.reputation_of('alice'):+.3f}  (2-hop credit, capped)")
    print(f"  R_carol(bob)   = {carol.reputation_of('bob'):+.3f}  (direct)")

    # The cap in action: even if Alice had uploaded a petabyte to Bob,
    # Carol's opinion of Alice cannot exceed her 150 MB of real service
    # from Bob (the maxflow bottleneck).
    alice2 = BarterCastNode("alice")  # fresh view of the same story
    bob.record_download("alice", 10_000_000 * MB, now=400.0)  # absurd claim path
    carol2 = BarterCastNode("carol2")
    carol2.record_download("bob", 150 * MB, now=200.0)
    carol2.receive_message(bob.create_message(now=500.0))
    print("\nMaxflow bound (paper's key security property)")
    print(f"  R_carol2(alice) = {carol2.reputation_of('alice'):+.3f}  "
          "(still capped by 150 MB of direct service)")


if __name__ == "__main__":
    main()
