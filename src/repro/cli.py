"""Command-line entry point.

Usage::

    python -m repro.cli fig1 [--profile fast|paper] [--seed N]
    python -m repro.cli fig2 [--profile ...]
    python -m repro.cli fig3 [--kind ignore|lie] [--profile ...]
    python -m repro.cli fig4 [--peers N] [--seed N]
    python -m repro.cli whitewash [--seed N]
    python -m repro.cli scalability [--peers N]
    python -m repro.cli all  [--profile ...]

Each subcommand regenerates one figure of the paper and prints the series
as tables/ASCII charts (see :mod:`repro.experiments.report`).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.deployment.network import DeploymentParams
from repro.experiments import (
    ScenarioConfig,
    report,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bartercast",
        description="Regenerate the figures of the BarterCast paper (IPDPS 2009).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--profile",
            choices=("tiny", "fast", "paper"),
            default="fast",
            help="scenario scale: 'fast' (seconds) or 'paper' (full scale, minutes)",
        )
        p.add_argument("--seed", type=int, default=42, help="root random seed")
        p.add_argument(
            "--export",
            metavar="DIR",
            default=None,
            help="also write the figure series as TSV files into DIR",
        )

    add_common(sub.add_parser("fig1", help="contribution vs reputation"))
    add_common(sub.add_parser("fig2", help="rank/ban policy effectiveness"))
    p3 = sub.add_parser("fig3", help="disobeying the message protocol")
    add_common(p3)
    p3.add_argument(
        "--kind",
        choices=("ignore", "lie", "both"),
        default="both",
        help="manipulation type (panel a: ignore, panel b: lie)",
    )
    p4 = sub.add_parser("fig4", help="deployment measurement")
    p4.add_argument("--peers", type=int, default=5000, help="population size")
    p4.add_argument("--seed", type=int, default=42, help="root random seed")
    pw = sub.add_parser("whitewash", help="stranger-policy trade-off (paper 3.5)")
    pw.add_argument("--seed", type=int, default=42, help="root random seed")
    ps = sub.add_parser("scalability", help="subjective-view scaling (future work)")
    ps.add_argument("--peers", type=int, default=100_000, help="largest view size")
    ps.add_argument("--seed", type=int, default=42, help="root random seed")
    add_common(sub.add_parser("all", help="regenerate every figure"))
    return parser


def _maybe_export(tables, export_dir) -> None:
    if export_dir is None:
        return
    from repro.analysis.export import write_series

    paths = write_series(tables, export_dir)
    for path in paths:
        print(f"[wrote {path}]")


def _fig1(scenario: ScenarioConfig, export_dir=None) -> None:
    result = run_fig1(scenario)
    print(report.report_fig1(result))
    from repro.analysis.export import export_fig1

    _maybe_export(export_fig1(result), export_dir)


def _fig2(scenario: ScenarioConfig, export_dir=None) -> None:
    result = run_fig2(scenario)
    print(report.report_fig2(result))
    from repro.analysis.export import export_fig2

    _maybe_export(export_fig2(result), export_dir)


def _fig3(scenario: ScenarioConfig, kind: str, export_dir=None) -> None:
    from repro.analysis.export import export_fig3

    kinds = ("ignore", "lie") if kind == "both" else (kind,)
    for k in kinds:
        result = run_fig3(scenario, kind=k)
        print(report.report_fig3(result))
        print()
        _maybe_export(export_fig3(result), export_dir)


def _fig4(peers: int, seed: int) -> None:
    params = DeploymentParams(num_peers=peers)
    print(report.report_fig4(run_fig4(params, seed=seed)))


def _whitewash(seed: int) -> None:
    from repro.analysis.ascii_plot import render_table
    from repro.experiments import run_whitewash

    rows = []
    for kind in ("trusted", "static", "adaptive"):
        r = run_whitewash(kind, seed=seed)
        rows.append(
            (kind, r.service["newcomer"], r.service["washer"],
             r.washer_advantage, r.identities_burned, r.prior_trajectory[-1])
        )
    print("== Whitewashing defenses (paper 3.5 / future work) ==")
    print(render_table(
        ["stranger policy", "newcomer units", "washer units",
         "washer/newcomer", "ids burned", "final prior"],
        rows, "{:.2f}",
    ))


def _scalability(peers: int, seed: int) -> None:
    from repro.analysis.ascii_plot import render_table
    from repro.experiments import run_scalability

    sizes = [s for s in (1_000, 10_000, 50_000, 100_000) if s <= peers]
    if not sizes or sizes[-1] != peers:
        sizes.append(peers)
    result = run_scalability(sizes=tuple(sizes), seed=seed)
    print("== Scalability of the subjective view (future work) ==")
    print(render_table(
        ["known peers", "edges", "query us", "batch us", "warm us", "ingest us/record"],
        [
            (p.num_peers, p.num_edges, p.query_us, p.batch_query_us,
             p.warm_query_us, p.ingest_us)
            for p in result.points
        ],
        "{:.1f}",
    ))
    print(f"query growth factor across sizes: {result.query_growth_factor():.2f}")
    if result.cache_hit_rate == result.cache_hit_rate:  # not NaN
        print(f"reputation cache hit rate: {result.cache_hit_rate:.1%}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    t0 = time.time()
    if args.command == "fig4":
        _fig4(args.peers, args.seed)
    elif args.command == "whitewash":
        _whitewash(args.seed)
    elif args.command == "scalability":
        _scalability(args.peers, args.seed)
    else:
        scenario = ScenarioConfig.named(args.profile, seed=args.seed)
        export_dir = getattr(args, "export", None)
        if args.command == "fig1":
            _fig1(scenario, export_dir)
        elif args.command == "fig2":
            _fig2(scenario, export_dir)
        elif args.command == "fig3":
            _fig3(scenario, args.kind, export_dir)
        elif args.command == "all":
            _fig1(scenario, export_dir)
            print()
            _fig2(scenario, export_dir)
            print()
            _fig3(scenario, "both", export_dir)
            print()
            _fig4(1000 if args.profile != "paper" else 5000, args.seed)
    print(f"\n[done in {time.time() - t0:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
