"""Command-line entry point.

Usage::

    python -m repro.cli fig1 [--profile fast|paper] [--seed N]
    python -m repro.cli fig2 [--profile ...]
    python -m repro.cli fig3 [--kind ignore|lie] [--profile ...]
    python -m repro.cli fig4 [--peers N] [--seed N]
    python -m repro.cli whitewash [--seed N]
    python -m repro.cli scalability [--peers N]
    python -m repro.cli faults [--losses 0,0.1,0.25,0.5] [--churn R]
    python -m repro.cli dissemination [--loss 0.2] [--export out/]
    python -m repro.cli explain --peer I [--subject J] [--profile ...]
    python -m repro.cli all  [--profile ...] [--fig4-peers N]
    python -m repro.cli report PATH          # re-render a stored manifest
    python -m repro.cli monitor [DIR]        # watch a running --jobs sweep
    python -m repro.cli chrome-trace TRACE   # convert a JSONL trace for Perfetto

Each subcommand regenerates one figure of the paper and prints the series
as tables/ASCII charts (see :mod:`repro.experiments.report`).

Fault-injection flags (on every scenario-driven figure command):

``--loss P`` / ``--dup P`` / ``--delay S`` / ``--churn R``
    Run the figure over an unreliable gossip plane: per-message drop
    probability, per-copy duplication probability, maximum random
    delivery delay (seconds), and abrupt-restart rate (events per peer
    per day).  All default to 0; with every knob at 0 the fault layer is
    never constructed and the run is bit-identical to one without these
    flags.  The ``faults`` subcommand sweeps a loss ladder and reports
    reputation coverage, false-ban rate and rank-inversion rate (add
    ``--top-k K`` for per-inversion explanation digests).

Provenance (``--provenance``, on every scenario-driven command):

    Record claim lineage — which gossip message delivered each live
    claim, when, and how many earlier copies it superseded — during the
    run.  Recording never feeds back into behaviour (results stay
    bit-identical); it exists for the ``explain`` subcommand, which
    re-runs a scenario with provenance on and decomposes one peer's
    subjective reputation of another into maxflow paths, leave-one-out
    deltas and per-edge claim lineage.

Observability flags (available on every subcommand):

``--metrics``
    Collect counters/timers during the run and print a summary report.
``--trace PATH``
    Write a JSONL structured trace of simulator events to ``PATH``.
``--trace-sample RATE``
    Trace sampling: a global keep-rate (``0.1``) or per-category spec
    (``0.05,bt.transfer=0.01``).
``--jobs N``
    Fan independent sweep points out to ``N`` worker processes
    (:mod:`repro.parallel`).  Results are bit-identical to ``--jobs 1``;
    ``all --jobs N`` pools every figure's tasks so workers stay busy
    across figure boundaries.  Tracing forces ``--jobs 1`` (one trace
    stream, one process).
``--timeseries [SECONDS]``
    Record a convergence time-series per simulation (reputation
    coverage, rank-inversion rate, cache hit rate, ``net.*`` deltas) at
    the given sim-time cadence; with no value, one row per stats
    sample.  Exported as CSV + JSON beside the run manifest.
``--prof``
    Profile run phases and maxflow kernels (wall + CPU, per-invocation
    histograms); prints a profile section and stores it in the
    manifest.  Phase spans additionally land in
    ``profile_chrome.json`` for Perfetto.
``--dissemination``
    Record per-claim dissemination DAGs (sends, deliveries, drops,
    duplicates, delays, churn wipes) during the run.  Never feeds back
    into behaviour — results stay bit-identical.  The ``dissemination``
    subcommand runs one faulted scenario with recording forced on and
    prints propagation analytics (time-to-coverage, hop counts,
    redundancy) plus fault attribution for undelivered claims;
    exported as CSV + JSON beside the run manifest.
``--monitor-dir DIR``
    Spool directory for live ``--jobs`` sweep monitoring (see ``repro
    monitor``); defaults to a per-user temp directory.

When ``--export DIR`` or ``--trace`` is given, a ``run_manifest.json``
capturing config, seed, code revision, per-phase wall time, and the final
metrics snapshot is written next to the output.  Instrumentation never
changes results: an instrumented run is bit-identical to a plain one.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.experiments import (
    ScenarioConfig,
    report,
    run_fig2,
    run_fig3,
)
from repro.obs import ManifestBuilder, Observability, make_observability
from repro.obs.report import render_report

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bartercast",
        description="Regenerate the figures of the BarterCast paper (IPDPS 2009).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--metrics",
            action="store_true",
            help="collect run metrics and print a summary report",
        )
        p.add_argument(
            "--trace",
            metavar="PATH",
            default=None,
            help="write a JSONL structured trace of simulator events to PATH",
        )
        p.add_argument(
            "--trace-sample",
            metavar="RATE",
            default=None,
            help="trace sampling: global rate ('0.1') or per-category "
            "spec ('0.05,bt.transfer=0.01')",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for independent sweep points "
            "(1 = serial; results are bit-identical at any level)",
        )
        p.add_argument(
            "--timeseries",
            nargs="?",
            const=-1.0,
            type=float,
            default=None,
            metavar="SECONDS",
            help="record a convergence time-series (coverage, rank "
            "inversion, cache hit rate, net deltas); optional sim-time "
            "cadence in seconds, default one row per stats sample",
        )
        p.add_argument(
            "--prof",
            action="store_true",
            help="profile phases and maxflow kernels (wall+CPU) and "
            "print/store a profile section",
        )
        p.add_argument(
            "--dissemination",
            action="store_true",
            help="record per-claim dissemination DAGs (propagation "
            "analytics + fault attribution; never changes results)",
        )
        p.add_argument(
            "--monitor-dir",
            metavar="DIR",
            default=None,
            help="spool directory for live sweep monitoring "
            "('repro monitor'; default: per-user temp dir)",
        )

    def add_faults(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--loss",
            type=float,
            default=0.0,
            metavar="P",
            help="per-message gossip drop probability (0 = reliable channel)",
        )
        p.add_argument(
            "--dup",
            type=float,
            default=0.0,
            metavar="P",
            help="per-copy gossip duplication probability (0 = exactly-once)",
        )
        p.add_argument(
            "--delay",
            type=float,
            default=0.0,
            metavar="SECONDS",
            help="maximum random gossip delivery delay (0 = instant; "
            "independent delays reorder messages)",
        )
        p.add_argument(
            "--churn",
            type=float,
            default=0.0,
            metavar="RATE",
            help="abrupt peer restarts per peer per simulated day "
            "(0 = no churn)",
        )

    def add_provenance(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--provenance",
            action="store_true",
            help="record claim lineage during the run (for 'explain'; "
            "never changes results)",
        )

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--profile",
            choices=("tiny", "fast", "paper"),
            default="fast",
            help="scenario scale: 'fast' (seconds) or 'paper' (full scale, minutes)",
        )
        p.add_argument("--seed", type=int, default=42, help="root random seed")
        p.add_argument(
            "--export",
            metavar="DIR",
            default=None,
            help="also write the figure series as TSV files into DIR",
        )
        add_faults(p)
        add_provenance(p)
        add_obs(p)

    add_common(sub.add_parser("fig1", help="contribution vs reputation"))
    add_common(sub.add_parser("fig2", help="rank/ban policy effectiveness"))
    p3 = sub.add_parser("fig3", help="disobeying the message protocol")
    add_common(p3)
    p3.add_argument(
        "--kind",
        choices=("ignore", "lie", "both"),
        default="both",
        help="manipulation type (panel a: ignore, panel b: lie)",
    )
    p4 = sub.add_parser("fig4", help="deployment measurement")
    p4.add_argument("--peers", type=int, default=5000, help="population size")
    p4.add_argument("--seed", type=int, default=42, help="root random seed")
    p4.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="also write the figure series as TSV files into DIR",
    )
    add_obs(p4)
    pw = sub.add_parser("whitewash", help="stranger-policy trade-off (paper 3.5)")
    pw.add_argument("--seed", type=int, default=42, help="root random seed")
    add_obs(pw)
    ps = sub.add_parser(
        "scalability",
        help="subjective-view scaling up to 100k peers (columnar backend)",
    )
    ps.add_argument("--peers", type=int, default=100_000, help="largest view size")
    ps.add_argument("--seed", type=int, default=42, help="root random seed")
    ps.add_argument(
        "--backend",
        choices=("dict", "columnar"),
        default="columnar",
        help="subjective-graph storage backend (results are bit-identical; "
        "columnar is the one that scales to 100k peers)",
    )
    add_obs(ps)
    pf = sub.add_parser(
        "faults", help="reputation quality vs gossip-plane fault level"
    )
    pf.add_argument(
        "--profile",
        choices=("tiny", "fast", "paper"),
        default="fast",
        help="scenario scale: 'fast' (seconds) or 'paper' (full scale, minutes)",
    )
    pf.add_argument("--seed", type=int, default=42, help="root random seed")
    pf.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="also write the sweep series as TSV files into DIR",
    )
    pf.add_argument(
        "--losses",
        default="0,0.1,0.25,0.5",
        metavar="L1,L2,...",
        help="comma-separated message-loss ladder to sweep",
    )
    pf.add_argument(
        "--loss",
        type=float,
        default=None,
        metavar="P",
        help="single-point shorthand: sweep exactly this one loss level "
        "(overrides --losses)",
    )
    pf.add_argument(
        "--churn",
        default="0",
        metavar="R1,R2,...",
        help="comma-separated churn rates (abrupt restarts per peer per "
        "day) to sweep; a single value reproduces the historical "
        "one-rate sweep",
    )
    pf.add_argument(
        "--engine",
        default="bartercast",
        metavar="E1,E2,...",
        help="comma-separated reputation mechanisms to compare on "
        "identical seeded schedules: bartercast, gossip, ratio "
        "(DESIGN.md §15)",
    )
    pf.add_argument(
        "--dup",
        type=float,
        default=0.0,
        metavar="P",
        help="per-copy duplication probability, applied at every sweep point",
    )
    pf.add_argument(
        "--delay",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="maximum random delivery delay, applied at every sweep point",
    )
    pf.add_argument(
        "--delta",
        type=float,
        default=-0.5,
        help="ban threshold used for the false-ban measure",
    )
    pf.add_argument(
        "--top-k",
        type=int,
        default=0,
        metavar="K",
        help="report the K worst rank inversions per sweep point with "
        "reputation/contribution digests (0 = off; implies per-point "
        "provenance recording)",
    )
    add_provenance(pf)
    add_obs(pf)
    pd = sub.add_parser(
        "dissemination",
        help="trace per-claim gossip dissemination under faults "
        "(propagation DAGs, coverage, fault attribution)",
    )
    add_common(pd)
    pd.add_argument(
        "--attributions",
        type=int,
        default=5,
        metavar="K",
        help="how many undelivered claims to attribute to exact "
        "drop/wipe events (0 = all)",
    )
    pe = sub.add_parser(
        "explain",
        help="decompose one subjective reputation into paths and claim lineage",
    )
    pe.add_argument(
        "--peer", type=int, required=True, metavar="I",
        help="the evaluating peer i (whose subjective view is explained)",
    )
    pe.add_argument(
        "--subject", type=int, default=None, metavar="J",
        help="the evaluated peer j; omitted: the --top-k peers with the "
        "largest |R_i(j)|",
    )
    pe.add_argument(
        "--top-k", type=int, default=3, metavar="K",
        help="how many subjects to explain when --subject is omitted",
    )
    pe.add_argument(
        "--policy",
        choices=("rank", "ban", "none"),
        default="rank",
        help="reputation policy active during the replayed run",
    )
    pe.add_argument(
        "--delta", type=float, default=-0.5,
        help="ban threshold (only with --policy ban)",
    )
    pe.add_argument(
        "--engine",
        default="bartercast",
        metavar="E1,E2,...",
        help="reputation mechanism(s) to explain under: bartercast, "
        "gossip, ratio.  More than one adds a side-by-side comparison "
        "(why did mechanism A ban this peer when B didn't); the first "
        "named engine drives the replayed run",
    )
    pe.add_argument(
        "--profile",
        choices=("tiny", "fast", "paper"),
        default="fast",
        help="scenario scale: 'fast' (seconds) or 'paper' (full scale, minutes)",
    )
    pe.add_argument("--seed", type=int, default=42, help="root random seed")
    pe.add_argument(
        "--export",
        metavar="PATH",
        default=None,
        help="also write the explanation(s) as a JSON document to PATH",
    )
    add_faults(pe)
    add_obs(pe)
    pall = sub.add_parser("all", help="regenerate every figure")
    add_common(pall)
    pall.add_argument(
        "--fig4-peers",
        type=int,
        default=None,
        help="fig4 population size (default: 1000, or 5000 for --profile paper)",
    )
    pr = sub.add_parser(
        "report", help="re-render the summary of a stored run manifest"
    )
    pr.add_argument(
        "path",
        metavar="PATH",
        help="an export directory or a run_manifest.json path",
    )
    pm = sub.add_parser(
        "monitor", help="watch a running --jobs sweep from another terminal"
    )
    pm.add_argument(
        "dir",
        nargs="?",
        default=None,
        metavar="DIR",
        help="sweep spool directory (default: REPRO_MONITOR_DIR or the "
        "per-user temp spool)",
    )
    pm.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh interval",
    )
    pm.add_argument(
        "--once",
        action="store_true",
        help="print the current status once and exit",
    )
    pm.add_argument(
        "--stall-after",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="flag a worker as stalled after this long without a heartbeat",
    )
    pc = sub.add_parser(
        "chrome-trace",
        help="convert a JSONL trace to Chrome trace-event JSON (Perfetto)",
    )
    pc.add_argument("trace", metavar="TRACE", help="JSONL trace written by --trace")
    pc.add_argument(
        "-o",
        "--out",
        default=None,
        metavar="PATH",
        help="output path (default: TRACE with a .chrome.json suffix)",
    )
    return parser


def _maybe_export(tables, export_dir) -> None:
    if export_dir is None:
        return
    from repro.analysis.export import write_series

    paths = write_series(tables, export_dir)
    for path in paths:
        print(f"[wrote {path}]")


def _fig1(
    scenario: ScenarioConfig,
    export_dir=None,
    obs: Optional[Observability] = None,
    manifest: Optional[ManifestBuilder] = None,
    runner=None,
) -> None:
    with manifest.phase("fig1"):
        # Inline runs take the same task path as --jobs N so per-run
        # telemetry labels (timeseries/dissemination exports) match
        # across job levels.
        from repro.parallel import fig1_task, run_sweep

        result = run_sweep([fig1_task(scenario)], runner=runner, obs=obs)[0]
    print(report.report_fig1(result))
    from repro.analysis.export import export_fig1

    with manifest.phase("export"):
        _maybe_export(export_fig1(result), export_dir)


def _fig2(
    scenario: ScenarioConfig,
    export_dir=None,
    obs: Optional[Observability] = None,
    manifest: Optional[ManifestBuilder] = None,
    runner=None,
) -> None:
    with manifest.phase("fig2"):
        result = run_fig2(scenario, obs=obs, runner=runner)
    print(report.report_fig2(result))
    from repro.analysis.export import export_fig2

    with manifest.phase("export"):
        _maybe_export(export_fig2(result), export_dir)


def _fig3(
    scenario: ScenarioConfig,
    kind: str,
    export_dir=None,
    obs: Optional[Observability] = None,
    manifest: Optional[ManifestBuilder] = None,
    runner=None,
) -> None:
    from repro.analysis.export import export_fig3

    kinds = ("ignore", "lie") if kind == "both" else (kind,)
    for k in kinds:
        with manifest.phase(f"fig3-{k}"):
            result = run_fig3(scenario, kind=k, obs=obs, runner=runner)
        print(report.report_fig3(result))
        print()
        with manifest.phase("export"):
            _maybe_export(export_fig3(result), export_dir)


def _fig4(
    peers: int,
    seed: int,
    export_dir=None,
    obs: Optional[Observability] = None,
    manifest: Optional[ManifestBuilder] = None,
    runner=None,
) -> None:
    with manifest.phase("fig4"):
        # Same task path inline as under --jobs N (see _fig1).
        from repro.parallel import fig4_task, run_sweep

        result = run_sweep([fig4_task(peers, seed)], runner=runner, obs=obs)[0]
    print(report.report_fig4(result))
    from repro.analysis.export import export_fig4

    with manifest.phase("export"):
        _maybe_export(export_fig4(result), export_dir)


def _faults(
    scenario: ScenarioConfig,
    args: argparse.Namespace,
    export_dir=None,
    obs: Optional[Observability] = None,
    manifest: Optional[ManifestBuilder] = None,
    runner=None,
) -> None:
    from repro.analysis.export import export_faults
    from repro.experiments.faults import run_faults

    if getattr(args, "loss", None) is not None:
        losses = (float(args.loss),)
    else:
        losses = tuple(float(x) for x in args.losses.split(",") if x.strip())
    churns = tuple(
        float(x) for x in str(args.churn).split(",") if x.strip()
    ) or (0.0,)
    engines = tuple(
        x.strip() for x in getattr(args, "engine", "bartercast").split(",")
        if x.strip()
    ) or ("bartercast",)
    if manifest is not None:
        manifest.set_faults(
            {
                "losses": list(losses),
                "churn": churns[0] if len(churns) == 1 else list(churns),
                "dup": args.dup,
                "delay": args.delay,
                **({"engines": list(engines)} if engines != ("bartercast",) else {}),
            }
        )
    with manifest.phase("faults"):
        result = run_faults(
            scenario,
            losses=losses,
            churn=churns[0] if len(churns) == 1 else churns,
            dup=args.dup,
            delay=args.delay,
            delta=args.delta,
            top_k=getattr(args, "top_k", 0),
            obs=obs,
            runner=runner,
            engines=engines,
        )
    print(report.report_faults(result))
    with manifest.phase("export"):
        _maybe_export(export_faults(result), export_dir)


def _explain(
    scenario: ScenarioConfig,
    args: argparse.Namespace,
    obs: Optional[Observability] = None,
    manifest: Optional[ManifestBuilder] = None,
) -> int:
    """``repro explain``: replay a scenario with provenance on, then
    decompose ``R_peer(subject)`` into flow paths and claim lineage.
    With ``--engine`` naming several mechanisms, adds the side-by-side
    verdict comparison (why did mechanism A ban this peer when B
    didn't); the first named engine drives the replayed run."""
    import json

    from repro.core.engines import ENGINE_NAMES
    from repro.core.policies import BanPolicy, NoPolicy, RankPolicy
    from repro.experiments.scenario import build_simulation
    from repro.obs.explain import (
        explain_engines,
        explain_reputation,
        render_engine_comparison,
        render_explanation,
        top_subjects,
    )

    engines = tuple(
        x.strip()
        for x in getattr(args, "engine", "bartercast").split(",")
        if x.strip()
    ) or ("bartercast",)
    unknown = [e for e in engines if e not in ENGINE_NAMES]
    if unknown:
        print(
            f"error: unknown engine(s) {', '.join(unknown)} "
            f"(known: {', '.join(ENGINE_NAMES)})",
            file=sys.stderr,
        )
        return 2

    if args.policy == "rank":
        policy = RankPolicy()
    elif args.policy == "ban":
        policy = BanPolicy(delta=args.delta)
    else:
        policy = NoPolicy()

    run_scenario = scenario.with_provenance()
    if engines[0] != run_scenario.engine:
        run_scenario = run_scenario.with_engine(engines[0])
    with manifest.phase("simulate"):
        sim = build_simulation(run_scenario, policy=policy, obs=obs)
        sim.run()
    if args.peer not in sim.nodes:
        print(f"error: peer {args.peer} is not in the population", file=sys.stderr)
        return 2
    node = sim.nodes[args.peer]

    if args.subject is not None:
        if args.subject not in sim.nodes:
            print(
                f"error: subject {args.subject} is not in the population",
                file=sys.stderr,
            )
            return 2
        subjects = [args.subject]
    else:
        candidates = [p for p in sim.nodes if p != args.peer]
        subjects = top_subjects(node, candidates, args.top_k)

    compare = len(engines) > 1 or engines != ("bartercast",)
    explanations = []
    with manifest.phase("explain"):
        for subject in subjects:
            expl = explain_reputation(node, subject)
            print(render_explanation(expl))
            print()
            verdicts = []
            if compare:
                verdicts = explain_engines(node, subject, engines, args.delta)
                print(render_engine_comparison(verdicts))
                print()
            explanations.append((expl, verdicts))
    if sim.provenance is not None:
        manifest.note("provenance_recorder", sim.provenance.summary())
    if sim.dissemination is not None:
        # Why is an evidence edge missing from this peer's subjective
        # view?  Attribute every claim that never reached --peer to the
        # exact drop/wipe events that cut its candidate paths.
        from repro.obs.dissemination import render_attribution

        missing = sim.dissemination.explain_missing(receiver=args.peer)
        if missing:
            print(f"-- missing evidence at peer {args.peer} --")
            for entry in missing:
                print(render_attribution(entry))
            print()
    if args.export is not None:

        def _doc(expl, verdicts):
            d = expl.to_json()
            if verdicts:
                d["engines"] = [v.to_json() for v in verdicts]
            return d

        doc = (
            _doc(*explanations[0])
            if len(explanations) == 1
            else [_doc(e, v) for e, v in explanations]
        )
        path = Path(args.export)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"[wrote {path}]")
    return 0


def _dissemination(
    scenario: ScenarioConfig,
    args: argparse.Namespace,
    export_dir=None,
    obs: Optional[Observability] = None,
    manifest: Optional[ManifestBuilder] = None,
) -> int:
    """``repro dissemination``: run one (typically faulted) scenario with
    dissemination recording forced on, print propagation analytics, and
    attribute undelivered claims to the exact drop/wipe events that cut
    their candidate paths."""
    from repro.analysis.ascii_plot import render_table
    from repro.experiments.scenario import build_simulation
    from repro.obs.dissemination import render_attribution
    from repro.obs.report import render_dissemination

    # Stable single-run label (exports become e.g. dissemination_run.csv).
    if obs.timeseries.enabled:
        obs.timeseries.begin_task("run")
    if obs.dissemination.enabled:
        obs.dissemination.begin_task("run")
    with manifest.phase("simulate"):
        sim = build_simulation(scenario, obs=obs)
        sim.run()
    rec = sim.dissemination
    if rec is None:
        print("error: dissemination recorder was not attached", file=sys.stderr)
        return 2
    print(render_dissemination(obs.dissemination.summary()))
    print()
    stats = rec.claim_stats()
    if stats:
        fracs = rec.config.coverage_fractions
        frac_cols = [f"t{int(round(f * 100))}%" for f in fracs]
        rows = []
        for entry in stats[:12]:
            row = [
                f"{entry['claim'][0]}->{entry['claim'][1]}",
                f"{entry['reached']}/{entry['eligible']}",
                entry["copies"],
                f"{entry['redundancy']:.2f}",
            ]
            for frac in fracs:
                t = entry.get(f"t{int(round(frac * 100))}")
                row.append("-" if t is None else f"{t:.0f}")
            rows.append(tuple(row))
        print("-- per-claim propagation (first 12 claims) --")
        print(
            render_table(
                ["claim", "reached", "copies", "redund"] + frac_cols,
                rows,
                "{}",
            )
        )
        if len(stats) > 12:
            print(f"({len(stats) - 12} more claims in the exported CSV/JSON)")
        print()
    missing = rec.explain_missing()
    if missing:
        limit = args.attributions if args.attributions > 0 else len(missing)
        print("-- fault attribution (undelivered claims) --")
        for entry in missing[:limit]:
            print(render_attribution(entry))
        if len(missing) > limit:
            print(f"({len(missing) - limit} more in the exported JSON)")
    else:
        print("every gossiped claim reached every eligible peer")
    return 0


def _fault_config_from_args(args: argparse.Namespace):
    """The figure commands' ``--loss/--dup/--delay/--churn`` flags as a
    :class:`~repro.faults.FaultConfig`; ``None`` when all are off (so the
    scenario stays byte-identical to a flagless invocation)."""
    from repro.faults import FaultConfig

    cfg = FaultConfig(
        loss=float(getattr(args, "loss", 0.0) or 0.0),
        duplicate=float(getattr(args, "dup", 0.0) or 0.0),
        delay_max=float(getattr(args, "delay", 0.0) or 0.0),
        churn_rate=float(getattr(args, "churn", 0.0) or 0.0),
    )
    if cfg.is_null:
        return None
    cfg.validate()
    return cfg


def _whitewash(seed: int, manifest: ManifestBuilder, runner=None) -> None:
    from repro.analysis.ascii_plot import render_table
    from repro.parallel import run_sweep, whitewash_tasks

    kinds = ("trusted", "static", "adaptive")
    with manifest.phase("whitewash"):
        results = run_sweep(whitewash_tasks(seed, kinds), runner=runner)
    rows = [
        (kind, r.service["newcomer"], r.service["washer"],
         r.washer_advantage, r.identities_burned, r.prior_trajectory[-1])
        for kind, r in zip(kinds, results)
    ]
    print("== Whitewashing defenses (paper 3.5 / future work) ==")
    print(render_table(
        ["stranger policy", "newcomer units", "washer units",
         "washer/newcomer", "ids burned", "final prior"],
        rows, "{:.2f}",
    ))


def _scalability(
    peers: int, seed: int, manifest: ManifestBuilder, runner=None,
    backend: str = "columnar",
) -> None:
    from repro.analysis.ascii_plot import render_table
    from repro.experiments import run_scalability

    sizes = [s for s in (1_000, 10_000, 50_000, 100_000) if s <= peers]
    if not sizes or sizes[-1] != peers:
        sizes.append(peers)
    with manifest.phase("scalability"):
        if runner is not None:
            # Internally sequential (the view grows incrementally), so this
            # is one task — pooled only for crash isolation, not speedup.
            from repro.parallel import run_sweep, scalability_task

            result = run_sweep(
                [scalability_task(tuple(sizes), seed, backend)], runner=runner
            )[0]
        else:
            result = run_scalability(sizes=tuple(sizes), seed=seed, backend=backend)
    print(f"== Scalability of the subjective view ({backend} backend) ==")
    print(render_table(
        ["known peers", "edges", "query us", "batch us", "warm us", "ingest us/record"],
        [
            (p.num_peers, p.num_edges, p.query_us, p.batch_query_us,
             p.warm_query_us, p.ingest_us)
            for p in result.points
        ],
        "{:.1f}",
    ))
    print(f"query growth factor across sizes: {result.query_growth_factor():.2f}")
    if not math.isnan(result.cache_hit_rate):
        print(f"reputation cache hit rate: {result.cache_hit_rate:.1%}")


def _all_parallel(
    scenario: ScenarioConfig,
    fig4_peers: int,
    seed: int,
    export_dir=None,
    manifest: Optional[ManifestBuilder] = None,
    runner=None,
) -> None:
    """``all`` under ``--jobs N``: one fused task pool across every figure.

    Pooling all figures' sweep points together keeps workers busy across
    figure boundaries (a lone fig1/fig4 task would otherwise serialize the
    sweep).  Reports and exports replay in the exact serial order.
    """
    from repro.analysis.export import export_fig1, export_fig2, export_fig3, export_fig4
    from repro.experiments.fig2 import assemble_fig2, fig2_tasks
    from repro.experiments.fig3 import assemble_fig3, fig3_tasks
    from repro.parallel import fig1_task, fig4_task, run_sweep

    t2 = fig2_tasks(scenario)
    t3a = fig3_tasks(scenario, "ignore")
    t3b = fig3_tasks(scenario, "lie")
    tasks = [fig1_task(scenario)] + t2 + t3a + t3b + [fig4_task(fig4_peers, seed)]
    with manifest.phase("figures"):
        payloads = run_sweep(tasks, runner=runner)
    pos = 1
    fig2_res = assemble_fig2(payloads[pos:pos + len(t2)])
    pos += len(t2)
    fig3_ignore = assemble_fig3(payloads[pos:pos + len(t3a)], "ignore")
    pos += len(t3a)
    fig3_lie = assemble_fig3(payloads[pos:pos + len(t3b)], "lie")
    pos += len(t3b)

    print(report.report_fig1(payloads[0]))
    with manifest.phase("export"):
        _maybe_export(export_fig1(payloads[0]), export_dir)
    print()
    print(report.report_fig2(fig2_res))
    with manifest.phase("export"):
        _maybe_export(export_fig2(fig2_res), export_dir)
    print()
    for fig3_res in (fig3_ignore, fig3_lie):
        print(report.report_fig3(fig3_res))
        print()
        with manifest.phase("export"):
            _maybe_export(export_fig3(fig3_res), export_dir)
    print()
    print(report.report_fig4(payloads[pos]))
    with manifest.phase("export"):
        _maybe_export(export_fig4(payloads[pos]), export_dir)


def _manifest_destination(args: argparse.Namespace) -> Optional[Path]:
    """Where the run manifest should land: next to the export output, or
    next to the trace file; ``None`` when there is no output to annotate."""
    export_dir = getattr(args, "export", None)
    if export_dir is not None:
        if args.command == "explain":
            # explain's --export is a JSON file, not a directory; the
            # manifest lands next to it rather than clobbering it.
            return Path(export_dir).parent / "run_manifest.json"
        return Path(export_dir)
    trace = getattr(args, "trace", None)
    if trace is not None:
        return Path(trace).parent / "run_manifest.json"
    return None


def _cmd_report(args: argparse.Namespace) -> int:
    """``repro report``: re-render the summary of a stored manifest.

    Accepts either an export directory or a bare ``run_manifest.json``
    path; a missing file or a schema-version mismatch produces a
    readable error and exit code 2, not a traceback.
    """
    from repro.obs.manifest import MANIFEST_FILENAME, read_manifest
    from repro.obs.report import render_manifest_report

    path = Path(args.path)
    if path.is_dir():
        path = path / MANIFEST_FILENAME
    try:
        doc = read_manifest(path)
    except FileNotFoundError:
        print(f"error: no run manifest at {path}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_manifest_report(doc))
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    """``repro monitor``: live view of a running ``--jobs`` sweep."""
    from repro.obs.monitor import resolve_monitor_dir, watch

    return watch(
        resolve_monitor_dir(args.dir),
        interval=args.interval,
        once=args.once,
        stall_after=args.stall_after,
    )


def _cmd_chrome_trace(args: argparse.Namespace) -> int:
    """``repro chrome-trace``: JSONL trace -> Perfetto-loadable JSON."""
    from repro.obs.chrome_trace import write_chrome_trace

    trace = Path(args.trace)
    out = Path(args.out) if args.out else trace.with_suffix(".chrome.json")
    try:
        path = write_chrome_trace(out, trace_path=trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"[wrote {path}]")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    # Utility subcommands read stored artifacts; no run, no observability.
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "monitor":
        return _cmd_monitor(args)
    if args.command == "chrome-trace":
        return _cmd_chrome_trace(args)
    t0 = time.time()
    obs = make_observability(
        metrics=getattr(args, "metrics", False),
        trace_path=getattr(args, "trace", None),
        trace_sample=getattr(args, "trace_sample", None),
        seed=getattr(args, "seed", 0),
        profile=getattr(args, "prof", False),
        timeseries=getattr(args, "timeseries", None),
        # The dissemination subcommand IS the recording run; force it on.
        dissemination=getattr(args, "dissemination", False)
        or args.command == "dissemination",
    )
    manifest = ManifestBuilder(
        command=args.command,
        args={k: v for k, v in vars(args).items() if k != "command"},
        profile=getattr(args, "profile", None),
        seed=getattr(args, "seed", None),
    )
    export_dir = getattr(args, "export", None)
    jobs = int(getattr(args, "jobs", 1) or 1)
    if jobs > 1 and obs.tracer.enabled:
        print(
            "[parallel] --trace writes a single event stream; forcing --jobs 1",
            file=sys.stderr,
        )
        jobs = 1
    runner = None
    if jobs > 1:
        from repro.parallel import ParallelRunner

        runner = ParallelRunner(
            jobs=jobs, obs=obs, monitor_dir=getattr(args, "monitor_dir", None)
        )
    from repro.obs import provenance_totals_delta, snapshot_provenance_totals
    from repro.obs.profile import activate as _activate_profiler

    prov_base = snapshot_provenance_totals()
    exit_code = 0
    try:
        # Scope the profiler as the process-wide kernel hook for the whole
        # command (a disabled profiler makes this a no-op guard).
        with _activate_profiler(obs.profiler):
            if args.command == "fig4":
                _fig4(args.peers, args.seed, export_dir, obs, manifest, runner)
            elif args.command == "whitewash":
                _whitewash(args.seed, manifest, runner)
            elif args.command == "scalability":
                _scalability(args.peers, args.seed, manifest, runner, args.backend)
            else:
                scenario = ScenarioConfig.named(args.profile, seed=args.seed)
                if getattr(args, "provenance", False):
                    scenario = scenario.with_provenance()
                manifest.config = (
                    None if scenario is None else _describe_scenario(scenario)
                )
                if args.command != "faults":
                    # The faults sweep builds its own per-point FaultConfig;
                    # figure commands take theirs from the shared flags.
                    fault_cfg = _fault_config_from_args(args)
                    if fault_cfg is not None:
                        scenario = scenario.with_faults(fault_cfg)
                        manifest.set_faults(fault_cfg)
                if args.command == "explain":
                    exit_code = _explain(scenario, args, obs, manifest)
                elif args.command == "dissemination":
                    exit_code = _dissemination(
                        scenario, args, export_dir, obs, manifest
                    )
                elif args.command == "faults":
                    _faults(scenario, args, export_dir, obs, manifest, runner)
                elif args.command == "fig1":
                    _fig1(scenario, export_dir, obs, manifest, runner)
                elif args.command == "fig2":
                    _fig2(scenario, export_dir, obs, manifest, runner)
                elif args.command == "fig3":
                    _fig3(scenario, args.kind, export_dir, obs, manifest, runner)
                elif args.command == "all":
                    fig4_peers = args.fig4_peers
                    if fig4_peers is None:
                        fig4_peers = 1000 if args.profile != "paper" else 5000
                    if runner is not None:
                        _all_parallel(
                            scenario, fig4_peers, args.seed, export_dir,
                            manifest, runner,
                        )
                    else:
                        _fig1(scenario, export_dir, obs, manifest)
                        print()
                        _fig2(scenario, export_dir, obs, manifest)
                        print()
                        _fig3(scenario, "both", export_dir, obs, manifest)
                        print()
                        _fig4(fig4_peers, args.seed, export_dir, obs, manifest)
    finally:
        obs.close()
    prov_delta = provenance_totals_delta(prov_base)
    if prov_delta:
        manifest.note("provenance", prov_delta)
    if runner is not None and runner.run_history:
        manifest.note(
            "parallel",
            runner.run_history[0]
            if len(runner.run_history) == 1
            else runner.run_history,
        )
    if obs.timeseries.enabled:
        manifest.note("timeseries", obs.timeseries.summary())
    if obs.dissemination.enabled:
        manifest.note("dissemination", obs.dissemination.summary())
    if obs.profiler.enabled:
        manifest.note("profile", obs.profiler.summary())
    if obs.metrics.enabled:
        print()
        print(render_report(obs.metrics, wall_seconds=time.time() - t0))
    if obs.profiler.enabled:
        from repro.obs.report import render_profile

        print()
        print(render_profile(obs.profiler.summary()))
    destination = _manifest_destination(args)
    if destination is not None:
        path = manifest.write(destination, metrics=obs.metrics, tracer=obs.tracer)
        print(f"[wrote {path}]")
        out_dir = path.parent
        for ts_path in obs.timeseries.export(out_dir):
            print(f"[wrote {ts_path}]")
        for d_path in obs.dissemination.export(out_dir):
            print(f"[wrote {d_path}]")
        if obs.profiler.enabled and obs.profiler.spans:
            from repro.obs.chrome_trace import write_chrome_trace

            chrome = write_chrome_trace(
                out_dir / "profile_chrome.json",
                profile_spans=obs.profiler.spans,
            )
            print(f"[wrote {chrome}]")
    print(f"\n[done in {time.time() - t0:.1f}s]", file=sys.stderr)
    return exit_code


def _describe_scenario(scenario: ScenarioConfig):
    from repro.obs import describe

    return describe(scenario)


if __name__ == "__main__":
    raise SystemExit(main())
