"""Fault sweep: reputation quality vs. gossip-plane fault level, per mechanism.

The paper's BarterCast ran over a network that lost, duplicated, and
reordered messages, with a minority of connectable peers and heavy
churn — none of which the reliable simulator exercises.  This experiment
turns the :mod:`repro.faults` layer into measurements: for a grid of
reputation mechanisms (DESIGN.md §15) × loss levels × churn rates
(optionally with duplication and delay layered on top) it runs the
community simulation and reports

* **reputation coverage** — the mean fraction of ground-truth transfer
  edges (between third parties) present in a peer's subjective graph;
  the gossip plane's effectiveness measure.  Falls monotonically with
  loss: with a shared channel RNG the delivered-message sets are nested
  across loss levels.  Coverage is a property of the subjective *graph*,
  not of any scoring function, so it is directly comparable across
  engines (and identical across them — see the engine note below).
* **false-ban rate** — the fraction of (evaluator, sharer) pairs whose
  subjective reputation falls below the engine's *effective* ban
  threshold (``engine.effective_delta(δ)``: the sweep δ itself for the
  arctan-scaled engines, the configured share-ratio floor for ratio
  credit); honest sharers a ban policy would starve because gossip could
  not carry their contribution evidence.
* **rank-inversion rate** — the fraction of (sharer, freerider) pairs
  with higher ground-truth contribution that an evaluator nevertheless
  ranks *below* the freerider.
* **convergence time** — the earliest sampled sim-time from which both
  coverage and the inversion rate stay within
  :data:`CONVERGENCE_TOL` of their end-of-run values (the trace horizon
  when they never settle).  Sampled on the scenario's existing stats
  cadence; sampling only reads state through the normal cache paths, so
  it never changes a measure or an RNG draw.

Engine note: runs use :class:`~repro.core.policies.NoPolicy`, so
reputations are measured but never acted on — the byte flow is identical
across fault levels *and across engines*.  Mechanisms therefore score
the exact same realized history on identical seeded schedules, which is
what makes their false-ban / inversion / convergence numbers an
apples-to-apples comparison (and is why per-engine coverage is equal by
construction: the subjective graphs are the same).

With ``top_k > 0`` each sweep point additionally runs with provenance
recording on and carries :class:`InversionDigest` entries for the K
worst inversions (largest subjective rank gap): who mis-ranked whom,
the ground-truth contributions, the evaluator's maxflow evidence toward
the sharer, and how many gossip claims back that evidence — enough to
see *why* the inversion happened (usually: the sharer's contribution
evidence was lost or never gossiped).  Recording never changes the
measures; the sweep stays bit-identical with ``top_k = 0``.

Runs use :class:`~repro.core.policies.NoPolicy` so the byte flow is
identical across fault levels (reputations are measured, never acted
on) — differences in the three measures isolate the gossip plane.
Every run is audited against the ground-truth envelope
(:func:`~repro.faults.audit.audit_simulation`); violations are carried
in the result and asserted empty by the tests.

All points are independent simulations, so the sweep parallelizes under
``--jobs`` through the standard task machinery (:func:`fault_tasks` /
:func:`assemble_faults`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.experiments.scenario import ScenarioConfig, build_simulation
from repro.faults import FaultConfig, audit_simulation
from repro.obs import Observability

__all__ = [
    "FaultPoint",
    "FaultsResult",
    "InversionDigest",
    "run_fault_point",
    "fault_tasks",
    "assemble_faults",
    "run_faults",
    "DEFAULT_LOSSES",
    "DEFAULT_ENGINES",
    "CONVERGENCE_TOL",
]

#: Default loss ladder of the sweep (0 first: the fault-free baseline).
DEFAULT_LOSSES: Tuple[float, ...] = (0.0, 0.1, 0.25, 0.5)

#: Default ban threshold used for the false-ban measure (the paper's
#: middle δ of Figure 2(c)).  Engines translate it into their own score
#: space via ``effective_delta``.
DEFAULT_DELTA = -0.5

#: Default mechanism axis: the paper's engine only.
DEFAULT_ENGINES: Tuple[str, ...] = ("bartercast",)

#: Convergence-time tolerance: a sample counts as converged when both
#: coverage and inversion are within this absolute distance of their
#: end-of-run values.
CONVERGENCE_TOL = 0.01


@dataclass
class InversionDigest:
    """Why one rank inversion happened (the ``top_k`` explain digest).

    ``severity`` is the subjective rank gap ``R_i(freerider) −
    R_i(sharer)`` (how wrong the evaluator's order is);
    ``sharer_inflow/outflow`` are the evaluator's evidence totals toward
    the mis-ranked sharer *under the run's engine*
    (``engine.evidence_flows``: maxflow values for BarterCast, weighted
    / raw volume sums for the aggregation engines), and
    ``sharer_claims`` counts the live gossip claims backing the
    sharer-incident edges of the evaluator's subjective graph (0 ⇒ the
    evidence never arrived).
    """

    evaluator: int
    sharer: int
    freerider: int
    sharer_rep: float
    freerider_rep: float
    sharer_contribution: float
    freerider_contribution: float
    severity: float
    sharer_inflow: float
    sharer_outflow: float
    sharer_claims: int


@dataclass
class FaultPoint:
    """Measurements of one fault level (picklable sweep payload)."""

    loss: float
    churn: float
    duplicate: float
    delay_max: float
    coverage: float
    false_ban_rate: float
    rank_inversion_rate: float
    messages_delivered: int
    messages_dropped: int
    messages_duplicated: int
    messages_delayed: int
    crashes: int
    wipes: int
    audit_violations: int
    #: The ``top_k`` worst inversions of this point (empty when off).
    digests: List[InversionDigest] = field(default_factory=list)
    #: The reputation mechanism this point was measured under.
    engine: str = "bartercast"
    #: Earliest sampled sim-time (seconds) from which coverage and the
    #: inversion rate stay within :data:`CONVERGENCE_TOL` of their final
    #: values; the trace horizon when they never settle (or when the run
    #: produced no samples).
    convergence_time: float = 0.0


@dataclass
class FaultsResult:
    """The assembled sweep: one :class:`FaultPoint` per grid point
    (engine × churn × loss, in :func:`fault_tasks` order)."""

    points: List[FaultPoint]
    delta: float
    profile: str

    def coverage_curve(self) -> List[float]:
        """Reputation coverage per sweep point (degrades with loss)."""
        return [p.coverage for p in self.points]

    @property
    def engines(self) -> Tuple[str, ...]:
        """Mechanisms present, in first-appearance (sweep) order."""
        return tuple(dict.fromkeys(p.engine for p in self.points))

    def points_for(self, engine: str) -> List[FaultPoint]:
        """The sweep points measured under ``engine``, in sweep order."""
        return [p for p in self.points if p.engine == engine]

    @property
    def total_violations(self) -> int:
        """Audit violations across the whole sweep (must be 0)."""
        return sum(p.audit_violations for p in self.points)


# ----------------------------------------------------------------------
# Measures
# ----------------------------------------------------------------------
def _ground_truth(sim) -> Tuple[Set[Tuple[int, int]], Dict[int, float]]:
    """Realized transfer edges and per-peer net contribution.

    Transfer accounting writes both private histories, so the union of
    the nodes' own upload records *is* the realized ground truth — no
    separate bookkeeping needed, and it stays valid under churn (history
    survives a restart; only gossip state is wiped).
    """
    edges: Set[Tuple[int, int]] = set()
    contribution: Dict[int, float] = {}
    for pid, node in sim.nodes.items():
        up_total = 0.0
        down_total = 0.0
        for peer, totals in node.history.items():
            if totals.uploaded > 0:
                edges.add((pid, peer))
            up_total += totals.uploaded
            down_total += totals.downloaded
        contribution[pid] = up_total - down_total
    return edges, contribution


def _coverage(sim, gt_edges: Set[Tuple[int, int]]) -> float:
    """Mean fraction of third-party ground-truth edges a peer knows."""
    fractions: List[float] = []
    for pid in sorted(sim.nodes):
        node = sim.nodes[pid]
        relevant = [e for e in gt_edges if pid not in e]
        if not relevant:
            continue
        known = sum(1 for src, dst in relevant if node.graph.capacity(src, dst) > 0)
        fractions.append(known / len(relevant))
    return sum(fractions) / len(fractions) if fractions else 0.0


def _effective_delta(sim, delta: float) -> float:
    """The sweep δ translated into the run engine's score space.

    All nodes of one simulation run the same engine, so any node's
    :meth:`~repro.core.engines.ReputationEngine.effective_delta`
    answers for the population.  The default engine's mapping is the
    identity, so bartercast measures are bit-identical to pre-zoo runs.
    """
    for node in sim.nodes.values():
        return node.active_engine().effective_delta(delta)
    return delta


def _reputation_measures(
    sim, contribution: Dict[int, float], delta: float
) -> Tuple[float, float]:
    """(false-ban rate, rank-inversion rate) over the subject population.

    ``delta`` is the sweep's threshold; the comparison uses the engine's
    effective threshold so the false-ban measure is well-defined for
    mechanisms with their own banning convention (not silently wrong for
    non-maxflow engines).
    """
    delta = _effective_delta(sim, delta)
    sharers = list(sim.roles.sharers)
    freeriders = list(sim.roles.freeriders)
    subjects = sorted(set(sharers) | set(freeriders))
    ban_pairs = 0
    ban_hits = 0
    inv_pairs = 0
    inv_hits = 0
    for evaluator in subjects:
        node = sim.nodes[evaluator]
        reps = node.reputations_of(p for p in subjects if p != evaluator)
        for s in sharers:
            if s == evaluator:
                continue
            ban_pairs += 1
            if reps[s] < delta:
                ban_hits += 1
        for s in sharers:
            if s == evaluator:
                continue
            for f in freeriders:
                if f == evaluator or contribution[s] <= contribution[f]:
                    continue
                inv_pairs += 1
                if reps[s] < reps[f]:
                    inv_hits += 1
    false_ban = ban_hits / ban_pairs if ban_pairs else 0.0
    inversion = inv_hits / inv_pairs if inv_pairs else 0.0
    return false_ban, inversion


def _inversion_digests(
    sim, contribution: Dict[int, float], top_k: int
) -> List[InversionDigest]:
    """The ``top_k`` worst inversions, each with its maxflow/claim evidence.

    Re-walks the same pair loop as :func:`_reputation_measures`; the
    reputation lookups are cache hits by then, so the second pass is
    cheap.  Digest order: descending rank gap, then (evaluator, sharer,
    freerider) for determinism.
    """
    sharers = list(sim.roles.sharers)
    freeriders = list(sim.roles.freeriders)
    subjects = sorted(set(sharers) | set(freeriders))
    inversions: List[Tuple[float, int, int, int, float, float]] = []
    for evaluator in subjects:
        node = sim.nodes[evaluator]
        reps = node.reputations_of(p for p in subjects if p != evaluator)
        for s in sharers:
            if s == evaluator:
                continue
            for f in freeriders:
                if f == evaluator or contribution[s] <= contribution[f]:
                    continue
                if reps[s] < reps[f]:
                    inversions.append(
                        (reps[f] - reps[s], evaluator, s, f, reps[s], reps[f])
                    )
    inversions.sort(key=lambda t: (-t[0], t[1], t[2], t[3]))
    digests: List[InversionDigest] = []
    for severity, evaluator, s, f, rep_s, rep_f in inversions[: max(0, top_k)]:
        node = sim.nodes[evaluator]
        # Evidence under the run's engine: maxflow for bartercast
        # (unchanged from the pre-zoo digests), volume sums for the
        # aggregation engines.
        inflow, outflow = node.active_engine().evidence_flows(s)
        claims = 0
        if node.graph.has_node(s):
            for v in sorted(node.graph.successors(s), key=repr):
                claims += len(node.shared.lineage_of(s, v))
            for v in sorted(node.graph.predecessors(s), key=repr):
                claims += len(node.shared.lineage_of(v, s))
        digests.append(
            InversionDigest(
                evaluator=evaluator,
                sharer=s,
                freerider=f,
                sharer_rep=rep_s,
                freerider_rep=rep_f,
                sharer_contribution=contribution[s],
                freerider_contribution=contribution[f],
                severity=severity,
                sharer_inflow=inflow,
                sharer_outflow=outflow,
                sharer_claims=claims,
            )
        )
    return digests


# ----------------------------------------------------------------------
# One sweep point
# ----------------------------------------------------------------------
def _convergence_time(
    samples: List[Tuple[float, float, float]],
    final_coverage: float,
    final_inversion: float,
    horizon: float,
) -> float:
    """Earliest sampled time from which both measures stay converged.

    Walks the sample trail backwards: the convergence time is the start
    of the longest suffix whose every sample has coverage *and*
    inversion within :data:`CONVERGENCE_TOL` of the final values.  No
    samples, or a last sample still outside tolerance, means the run
    never demonstrably settled — the horizon is reported.
    """
    t = horizon
    for now, cov, inv in reversed(samples):
        if (
            abs(cov - final_coverage) <= CONVERGENCE_TOL
            and abs(inv - final_inversion) <= CONVERGENCE_TOL
        ):
            t = now
        else:
            break
    return t


def run_fault_point(
    scenario: ScenarioConfig,
    faults: FaultConfig,
    delta: float = DEFAULT_DELTA,
    top_k: int = 0,
    obs: Optional[Observability] = None,
    engine: Optional[str] = None,
) -> FaultPoint:
    """Run one (engine, fault level) grid point and compute its measures.

    ``engine`` overrides the scenario's mechanism for this point (sweep
    tasks carry one shared scenario and vary the engine here, keeping
    pickled payloads small).  ``top_k > 0`` turns on provenance
    recording for the point and attaches digests of the K worst rank
    inversions (see module docstring); the measures themselves are
    unaffected.

    Convergence sampling rides the scenario's existing stats sampler —
    no extra events, no RNG use — so measured values (and the default
    engine's whole output) are bit-identical to a run without it.
    """
    point_scenario = scenario.with_faults(faults)
    if engine is not None and engine != point_scenario.engine:
        point_scenario = point_scenario.with_engine(engine)
    if top_k > 0:
        point_scenario = point_scenario.with_provenance()
    sim = build_simulation(point_scenario, obs=obs)

    trail: List[Tuple[float, float, float]] = []

    def _sample_convergence(now: float) -> None:
        edges, contrib = _ground_truth(sim)
        cov = _coverage(sim, edges)
        _, inv = _reputation_measures(sim, contrib, delta)
        trail.append((now, cov, inv))

    sim.add_sampler(_sample_convergence)
    sim.run()
    gt_edges, contribution = _ground_truth(sim)
    coverage = _coverage(sim, gt_edges)
    false_ban, inversion = _reputation_measures(sim, contribution, delta)
    digests = (
        _inversion_digests(sim, contribution, top_k) if top_k > 0 else []
    )
    violations = audit_simulation(sim, max_rep_targets=5)
    channel = sim.channel
    churn = sim.churn
    return FaultPoint(
        loss=faults.loss,
        churn=faults.churn_rate,
        duplicate=faults.duplicate,
        delay_max=faults.delay_max,
        coverage=coverage,
        false_ban_rate=false_ban,
        rank_inversion_rate=inversion,
        messages_delivered=0 if channel is None else channel.delivered,
        messages_dropped=0 if channel is None else channel.dropped,
        messages_duplicated=0 if channel is None else channel.duplicated,
        messages_delayed=0 if channel is None else channel.delayed,
        crashes=0 if churn is None else churn.crashes,
        wipes=0 if churn is None else churn.wipes,
        audit_violations=len(violations),
        digests=digests,
        engine=point_scenario.engine,
        convergence_time=_convergence_time(
            trail, coverage, inversion, sim.trace.duration
        ),
    )


# ----------------------------------------------------------------------
# Sweep plumbing (serial and --jobs N, bit-identical)
# ----------------------------------------------------------------------
def _sweep_configs(
    losses: Sequence[float], churn: float, dup: float, delay: float
) -> List[FaultConfig]:
    return [
        FaultConfig(
            loss=float(loss), duplicate=float(dup),
            delay_max=float(delay), churn_rate=float(churn),
        )
        for loss in losses
    ]


def _churn_ladder(churn) -> Tuple[float, ...]:
    """Normalize the churn axis: a scalar stays a one-point axis."""
    if isinstance(churn, (int, float)):
        return (float(churn),)
    return tuple(float(c) for c in churn)


def fault_tasks(
    scenario: ScenarioConfig,
    losses: Sequence[float] = DEFAULT_LOSSES,
    churn=0.0,
    dup: float = 0.0,
    delay: float = 0.0,
    delta: float = DEFAULT_DELTA,
    top_k: int = 0,
    engines: Sequence[str] = DEFAULT_ENGINES,
) -> List[Any]:
    """The independent sweep tasks over the engine × churn × loss grid.

    Order: engines outermost, then churn, then the loss ladder — so the
    historical single-engine single-churn call produces exactly the old
    task list.  Every task shares one scenario object (small pickles)
    and carries its engine as a parameter; default-engine task ids keep
    the pre-zoo ``faults/loss..._churn...`` format (manifest and series
    labels stay byte-identical), rival engines are prefixed
    ``faults/<engine>/``.
    """
    from repro.parallel import SweepTask

    params_extra = {"top_k": top_k} if top_k > 0 else {}
    tasks: List[Any] = []
    for engine in engines:
        prefix = "faults/" if engine == "bartercast" else f"faults/{engine}/"
        engine_extra = {} if engine == "bartercast" else {"engine": engine}
        for churn_rate in _churn_ladder(churn):
            for cfg in _sweep_configs(losses, churn_rate, dup, delay):
                tasks.append(
                    SweepTask(
                        task_id=(
                            f"{prefix}loss{cfg.loss:g}_churn{cfg.churn_rate:g}"
                        ),
                        experiment="fault_point",
                        params={
                            "scenario": scenario, "faults": cfg, "delta": delta,
                            **engine_extra, **params_extra,
                        },
                        seed=scenario.seed,
                        profile=scenario.name,
                    )
                )
    return tasks


def assemble_faults(
    payloads: Sequence[FaultPoint],
    delta: float = DEFAULT_DELTA,
    profile: str = "",
) -> FaultsResult:
    """Merge per-task payloads (in :func:`fault_tasks` order)."""
    return FaultsResult(points=list(payloads), delta=delta, profile=profile)


def run_faults(
    scenario: Optional[ScenarioConfig] = None,
    losses: Sequence[float] = DEFAULT_LOSSES,
    churn=0.0,
    dup: float = 0.0,
    delay: float = 0.0,
    delta: float = DEFAULT_DELTA,
    top_k: int = 0,
    obs: Optional[Observability] = None,
    runner=None,
    engines: Sequence[str] = DEFAULT_ENGINES,
) -> FaultsResult:
    """Run the mechanism × churn × loss sweep (serially or via ``runner``).

    ``churn`` may be a scalar (the historical single-rate sweep) or a
    sequence of rates; ``engines`` names the mechanisms to measure
    (every grid point replays the identical seeded schedule — see the
    module docstring's engine note).
    """
    if scenario is None:
        scenario = ScenarioConfig.fast()
    from repro.parallel import run_sweep

    payloads = run_sweep(
        fault_tasks(
            scenario, losses, churn, dup, delay, delta, top_k, engines=engines
        ),
        runner=runner,
        obs=obs,
    )
    return assemble_faults(payloads, delta=delta, profile=scenario.name)
