"""Fault sweep: reputation quality vs. gossip-plane fault level.

The paper's BarterCast ran over a network that lost, duplicated, and
reordered messages, with a minority of connectable peers and heavy
churn — none of which the reliable simulator exercises.  This experiment
turns the :mod:`repro.faults` layer into measurements: for a ladder of
loss levels (optionally with churn, duplication and delay layered on
top) it runs the community simulation and reports

* **reputation coverage** — the mean fraction of ground-truth transfer
  edges (between third parties) present in a peer's subjective graph;
  the gossip plane's effectiveness measure.  Falls monotonically with
  loss: with a shared channel RNG the delivered-message sets are nested
  across loss levels.
* **false-ban rate** — the fraction of (evaluator, sharer) pairs whose
  subjective reputation falls below the ban threshold δ; honest sharers
  a ban policy would starve because gossip could not carry their
  contribution evidence.
* **rank-inversion rate** — the fraction of (sharer, freerider) pairs
  with higher ground-truth contribution that an evaluator nevertheless
  ranks *below* the freerider.

With ``top_k > 0`` each sweep point additionally runs with provenance
recording on and carries :class:`InversionDigest` entries for the K
worst inversions (largest subjective rank gap): who mis-ranked whom,
the ground-truth contributions, the evaluator's maxflow evidence toward
the sharer, and how many gossip claims back that evidence — enough to
see *why* the inversion happened (usually: the sharer's contribution
evidence was lost or never gossiped).  Recording never changes the
measures; the sweep stays bit-identical with ``top_k = 0``.

Runs use :class:`~repro.core.policies.NoPolicy` so the byte flow is
identical across fault levels (reputations are measured, never acted
on) — differences in the three measures isolate the gossip plane.
Every run is audited against the ground-truth envelope
(:func:`~repro.faults.audit.audit_simulation`); violations are carried
in the result and asserted empty by the tests.

All points are independent simulations, so the sweep parallelizes under
``--jobs`` through the standard task machinery (:func:`fault_tasks` /
:func:`assemble_faults`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.experiments.scenario import ScenarioConfig, build_simulation
from repro.faults import FaultConfig, audit_simulation
from repro.obs import Observability

__all__ = [
    "FaultPoint",
    "FaultsResult",
    "InversionDigest",
    "run_fault_point",
    "fault_tasks",
    "assemble_faults",
    "run_faults",
    "DEFAULT_LOSSES",
]

#: Default loss ladder of the sweep (0 first: the fault-free baseline).
DEFAULT_LOSSES: Tuple[float, ...] = (0.0, 0.1, 0.25, 0.5)

#: Default ban threshold used for the false-ban measure (the paper's
#: middle δ of Figure 2(c)).
DEFAULT_DELTA = -0.5


@dataclass
class InversionDigest:
    """Why one rank inversion happened (the ``top_k`` explain digest).

    ``severity`` is the subjective rank gap ``R_i(freerider) −
    R_i(sharer)`` (how wrong the evaluator's order is);
    ``sharer_inflow/outflow`` are the evaluator's maxflow evidence
    toward the mis-ranked sharer, and ``sharer_claims`` counts the live
    gossip claims backing the sharer-incident edges of the evaluator's
    subjective graph (0 ⇒ the evidence never arrived).
    """

    evaluator: int
    sharer: int
    freerider: int
    sharer_rep: float
    freerider_rep: float
    sharer_contribution: float
    freerider_contribution: float
    severity: float
    sharer_inflow: float
    sharer_outflow: float
    sharer_claims: int


@dataclass
class FaultPoint:
    """Measurements of one fault level (picklable sweep payload)."""

    loss: float
    churn: float
    duplicate: float
    delay_max: float
    coverage: float
    false_ban_rate: float
    rank_inversion_rate: float
    messages_delivered: int
    messages_dropped: int
    messages_duplicated: int
    messages_delayed: int
    crashes: int
    wipes: int
    audit_violations: int
    #: The ``top_k`` worst inversions of this point (empty when off).
    digests: List[InversionDigest] = field(default_factory=list)


@dataclass
class FaultsResult:
    """The assembled sweep: one :class:`FaultPoint` per fault level."""

    points: List[FaultPoint]
    delta: float
    profile: str

    def coverage_curve(self) -> List[float]:
        """Reputation coverage per sweep point (degrades with loss)."""
        return [p.coverage for p in self.points]

    @property
    def total_violations(self) -> int:
        """Audit violations across the whole sweep (must be 0)."""
        return sum(p.audit_violations for p in self.points)


# ----------------------------------------------------------------------
# Measures
# ----------------------------------------------------------------------
def _ground_truth(sim) -> Tuple[Set[Tuple[int, int]], Dict[int, float]]:
    """Realized transfer edges and per-peer net contribution.

    Transfer accounting writes both private histories, so the union of
    the nodes' own upload records *is* the realized ground truth — no
    separate bookkeeping needed, and it stays valid under churn (history
    survives a restart; only gossip state is wiped).
    """
    edges: Set[Tuple[int, int]] = set()
    contribution: Dict[int, float] = {}
    for pid, node in sim.nodes.items():
        up_total = 0.0
        down_total = 0.0
        for peer, totals in node.history.items():
            if totals.uploaded > 0:
                edges.add((pid, peer))
            up_total += totals.uploaded
            down_total += totals.downloaded
        contribution[pid] = up_total - down_total
    return edges, contribution


def _coverage(sim, gt_edges: Set[Tuple[int, int]]) -> float:
    """Mean fraction of third-party ground-truth edges a peer knows."""
    fractions: List[float] = []
    for pid in sorted(sim.nodes):
        node = sim.nodes[pid]
        relevant = [e for e in gt_edges if pid not in e]
        if not relevant:
            continue
        known = sum(1 for src, dst in relevant if node.graph.capacity(src, dst) > 0)
        fractions.append(known / len(relevant))
    return sum(fractions) / len(fractions) if fractions else 0.0


def _reputation_measures(
    sim, contribution: Dict[int, float], delta: float
) -> Tuple[float, float]:
    """(false-ban rate, rank-inversion rate) over the subject population."""
    sharers = list(sim.roles.sharers)
    freeriders = list(sim.roles.freeriders)
    subjects = sorted(set(sharers) | set(freeriders))
    ban_pairs = 0
    ban_hits = 0
    inv_pairs = 0
    inv_hits = 0
    for evaluator in subjects:
        node = sim.nodes[evaluator]
        reps = node.reputations_of(p for p in subjects if p != evaluator)
        for s in sharers:
            if s == evaluator:
                continue
            ban_pairs += 1
            if reps[s] < delta:
                ban_hits += 1
        for s in sharers:
            if s == evaluator:
                continue
            for f in freeriders:
                if f == evaluator or contribution[s] <= contribution[f]:
                    continue
                inv_pairs += 1
                if reps[s] < reps[f]:
                    inv_hits += 1
    false_ban = ban_hits / ban_pairs if ban_pairs else 0.0
    inversion = inv_hits / inv_pairs if inv_pairs else 0.0
    return false_ban, inversion


def _inversion_digests(
    sim, contribution: Dict[int, float], top_k: int
) -> List[InversionDigest]:
    """The ``top_k`` worst inversions, each with its maxflow/claim evidence.

    Re-walks the same pair loop as :func:`_reputation_measures`; the
    reputation lookups are cache hits by then, so the second pass is
    cheap.  Digest order: descending rank gap, then (evaluator, sharer,
    freerider) for determinism.
    """
    sharers = list(sim.roles.sharers)
    freeriders = list(sim.roles.freeriders)
    subjects = sorted(set(sharers) | set(freeriders))
    inversions: List[Tuple[float, int, int, int, float, float]] = []
    for evaluator in subjects:
        node = sim.nodes[evaluator]
        reps = node.reputations_of(p for p in subjects if p != evaluator)
        for s in sharers:
            if s == evaluator:
                continue
            for f in freeriders:
                if f == evaluator or contribution[s] <= contribution[f]:
                    continue
                if reps[s] < reps[f]:
                    inversions.append(
                        (reps[f] - reps[s], evaluator, s, f, reps[s], reps[f])
                    )
    inversions.sort(key=lambda t: (-t[0], t[1], t[2], t[3]))
    digests: List[InversionDigest] = []
    for severity, evaluator, s, f, rep_s, rep_f in inversions[: max(0, top_k)]:
        node = sim.nodes[evaluator]
        metric = node.config.metric
        inflow = metric.maxflow(node.graph, s, evaluator)
        outflow = metric.maxflow(node.graph, evaluator, s)
        claims = 0
        if node.graph.has_node(s):
            for v in sorted(node.graph.successors(s), key=repr):
                claims += len(node.shared.lineage_of(s, v))
            for v in sorted(node.graph.predecessors(s), key=repr):
                claims += len(node.shared.lineage_of(v, s))
        digests.append(
            InversionDigest(
                evaluator=evaluator,
                sharer=s,
                freerider=f,
                sharer_rep=rep_s,
                freerider_rep=rep_f,
                sharer_contribution=contribution[s],
                freerider_contribution=contribution[f],
                severity=severity,
                sharer_inflow=inflow,
                sharer_outflow=outflow,
                sharer_claims=claims,
            )
        )
    return digests


# ----------------------------------------------------------------------
# One sweep point
# ----------------------------------------------------------------------
def run_fault_point(
    scenario: ScenarioConfig,
    faults: FaultConfig,
    delta: float = DEFAULT_DELTA,
    top_k: int = 0,
    obs: Optional[Observability] = None,
) -> FaultPoint:
    """Run one fault level end to end and compute its measures.

    ``top_k > 0`` turns on provenance recording for the point and
    attaches digests of the K worst rank inversions (see module
    docstring); the measures themselves are unaffected.
    """
    point_scenario = scenario.with_faults(faults)
    if top_k > 0:
        point_scenario = point_scenario.with_provenance()
    sim = build_simulation(point_scenario, obs=obs)
    sim.run()
    gt_edges, contribution = _ground_truth(sim)
    coverage = _coverage(sim, gt_edges)
    false_ban, inversion = _reputation_measures(sim, contribution, delta)
    digests = (
        _inversion_digests(sim, contribution, top_k) if top_k > 0 else []
    )
    violations = audit_simulation(sim, max_rep_targets=5)
    channel = sim.channel
    churn = sim.churn
    return FaultPoint(
        loss=faults.loss,
        churn=faults.churn_rate,
        duplicate=faults.duplicate,
        delay_max=faults.delay_max,
        coverage=coverage,
        false_ban_rate=false_ban,
        rank_inversion_rate=inversion,
        messages_delivered=0 if channel is None else channel.delivered,
        messages_dropped=0 if channel is None else channel.dropped,
        messages_duplicated=0 if channel is None else channel.duplicated,
        messages_delayed=0 if channel is None else channel.delayed,
        crashes=0 if churn is None else churn.crashes,
        wipes=0 if churn is None else churn.wipes,
        audit_violations=len(violations),
        digests=digests,
    )


# ----------------------------------------------------------------------
# Sweep plumbing (serial and --jobs N, bit-identical)
# ----------------------------------------------------------------------
def _sweep_configs(
    losses: Sequence[float], churn: float, dup: float, delay: float
) -> List[FaultConfig]:
    return [
        FaultConfig(
            loss=float(loss), duplicate=float(dup),
            delay_max=float(delay), churn_rate=float(churn),
        )
        for loss in losses
    ]


def fault_tasks(
    scenario: ScenarioConfig,
    losses: Sequence[float] = DEFAULT_LOSSES,
    churn: float = 0.0,
    dup: float = 0.0,
    delay: float = 0.0,
    delta: float = DEFAULT_DELTA,
    top_k: int = 0,
) -> List[Any]:
    """The independent sweep tasks, one per fault level, in ladder order."""
    from repro.parallel import SweepTask

    params_extra = {"top_k": top_k} if top_k > 0 else {}
    return [
        SweepTask(
            task_id=f"faults/loss{cfg.loss:g}_churn{cfg.churn_rate:g}",
            experiment="fault_point",
            params={
                "scenario": scenario, "faults": cfg, "delta": delta,
                **params_extra,
            },
            seed=scenario.seed,
            profile=scenario.name,
        )
        for cfg in _sweep_configs(losses, churn, dup, delay)
    ]


def assemble_faults(
    payloads: Sequence[FaultPoint],
    delta: float = DEFAULT_DELTA,
    profile: str = "",
) -> FaultsResult:
    """Merge per-task payloads (in :func:`fault_tasks` order)."""
    return FaultsResult(points=list(payloads), delta=delta, profile=profile)


def run_faults(
    scenario: Optional[ScenarioConfig] = None,
    losses: Sequence[float] = DEFAULT_LOSSES,
    churn: float = 0.0,
    dup: float = 0.0,
    delay: float = 0.0,
    delta: float = DEFAULT_DELTA,
    top_k: int = 0,
    obs: Optional[Observability] = None,
    runner=None,
) -> FaultsResult:
    """Run the fault sweep (serially, or fanned out via ``runner``)."""
    if scenario is None:
        scenario = ScenarioConfig.fast()
    from repro.parallel import run_sweep

    payloads = run_sweep(
        fault_tasks(scenario, losses, churn, dup, delay, delta, top_k),
        runner=runner,
        obs=obs,
    )
    return assemble_faults(payloads, delta=delta, profile=scenario.name)
