"""Scalability assessment (the paper's future work).

"We plan to perform simulations with up to 100,000 peers and assess the
scalability of our mechanism."  The online costs of BarterCast at a peer
are (a) ingesting gossip records into the subjective graph and (b)
answering reputation queries against it.  This experiment grows a
synthetic subjective view from thousands to a hundred thousand known
peers — with the constant per-node degree that bounded-size messages
produce — and measures both costs plus the state footprint.

The headline property: the 2-hop closed form makes the query cost depend
on the *degree* of the two endpoints, not on the graph size, so
reputation evaluation stays microsecond-scale at 100k peers; gossip
ingestion is O(records) per message.  That is the quantitative backing
for the paper's "lightweight / practically feasible" claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.messages import BarterCastMessage, HistoryRecord
from repro.core.node import BarterCastNode
from repro.core.reputation import MB
from repro.sim.rng import RngRegistry

__all__ = ["ScalabilityPoint", "ScalabilityResult", "run_scalability"]


@dataclass
class ScalabilityPoint:
    """Measurements at one graph size.

    Attributes
    ----------
    num_peers:
        Known peers in the subjective view.
    num_edges:
        Directed edges stored.
    query_us:
        Mean 2-hop reputation query latency (microseconds, cold cache,
        scalar kernel).
    ingest_us:
        Mean per-record gossip ingestion latency (microseconds).
    batch_query_us:
        Mean per-target latency of one cold batched
        :meth:`~repro.core.node.BarterCastNode.reputations_of` pass over
        the same targets (microseconds).
    warm_query_us:
        Mean per-target latency of repeating that pass against the warm
        cache (microseconds).
    """

    num_peers: int
    num_edges: int
    query_us: float
    ingest_us: float
    batch_query_us: float = 0.0
    warm_query_us: float = 0.0
    #: One-time CSR materialization cost at this size (columnar backend
    #: only; 0.0 on the dict backend).  Paid once per graph change burst,
    #: amortized over every following batch.
    csr_build_ms: float = 0.0


@dataclass
class ScalabilityResult:
    """The measured scaling curve."""

    points: List[ScalabilityPoint] = field(default_factory=list)
    #: Aggregate reputation-cache hit rate over the whole measurement run.
    cache_hit_rate: float = float("nan")

    def query_growth_factor(self) -> float:
        """Largest-over-smallest query latency ratio — near 1.0 means the
        query cost is size-independent (degree-bounded)."""
        if len(self.points) < 2:
            return 1.0
        return self.points[-1].query_us / max(self.points[0].query_us, 1e-9)


def _grow_view(
    node: BarterCastNode,
    start_peer: int,
    end_peer: int,
    degree: int,
    rng,
) -> float:
    """Extend the node's view with peers [start, end) via gossip messages;
    returns mean ingestion time per record in microseconds."""
    gen = rng.generator
    t_total = 0.0
    n_records = 0
    batch = []
    for pid in range(start_peer, end_peer):
        # Each new peer reports `degree` counterparties among known ids.
        counterparties = gen.integers(0, max(pid, 1), size=degree)
        records = tuple(
            HistoryRecord(
                counterparty=int(c),
                uploaded=float(gen.uniform(1, 500)) * MB,
                downloaded=float(gen.uniform(1, 500)) * MB,
            )
            for c in counterparties
            if int(c) != pid
        )
        batch.append(BarterCastMessage(sender=pid, created_at=float(pid), records=records))
    t0 = time.perf_counter()
    for message in batch:
        node.receive_message(message)
        n_records += message.num_records
    t_total = time.perf_counter() - t0
    return (t_total / max(n_records, 1)) * 1e6


def run_scalability(
    sizes: Sequence[int] = (1_000, 10_000, 50_000, 100_000),
    degree: int = 10,
    queries: int = 200,
    seed: int = 0,
    backend: str = "dict",
) -> ScalabilityResult:
    """Measure query/ingest cost as the subjective view grows to ``sizes``.

    ``degree`` mirrors the bounded message size (``Nh + Nr`` records per
    gossip message keep per-peer degree roughly constant in deployment).
    ``backend`` selects the subjective-graph storage (``"dict"`` or
    ``"columnar"``); the measured reputations are bit-identical either
    way, only the costs differ.
    """
    if not sizes or list(sizes) != sorted(sizes):
        raise ValueError("sizes must be a non-empty increasing sequence")
    rng = RngRegistry(seed).stream("scalability")
    gen = rng.generator
    node = BarterCastNode(-1, graph_backend=backend)
    # Give the evaluator a realistic own history (its direct partners).
    for pid in range(min(50, sizes[0])):
        node.record_download(pid, float(gen.uniform(10, 1000)) * MB, now=float(pid))
        node.record_upload(pid, float(gen.uniform(10, 1000)) * MB, now=float(pid))

    result = ScalabilityResult()
    grown = 0
    for size in sizes:
        ingest_us = _grow_view(node, grown, size, degree, rng)
        grown = size
        # Cold-cache reputation queries against random known peers.  The
        # per-query cache invalidation (which is O(cache size), not part
        # of query cost) happens outside the timer.
        targets = [int(t) for t in gen.integers(0, size, size=queries)]
        t_scalar = 0.0
        for target in targets:
            node.invalidate_cache()
            t0 = time.perf_counter()
            node.reputation_of(target)
            t_scalar += time.perf_counter() - t0
        query_us = t_scalar / queries * 1e6
        # The same targets through the batched kernel (cold), then again
        # against the warm cache (the choke-round steady state).  On the
        # columnar backend the CSR snapshot is materialized first — timed
        # separately — so the cold batch takes the array-kernel path.
        csr_build_ms = 0.0
        build = getattr(node.graph, "build_csr", None)
        if build is not None:
            t0 = time.perf_counter()
            build()
            csr_build_ms = (time.perf_counter() - t0) * 1e3
        node.invalidate_cache()
        t0 = time.perf_counter()
        node.reputations_of(targets)
        batch_query_us = (time.perf_counter() - t0) / queries * 1e6
        t0 = time.perf_counter()
        node.reputations_of(targets)
        warm_query_us = (time.perf_counter() - t0) / queries * 1e6
        result.points.append(
            ScalabilityPoint(
                num_peers=size,
                num_edges=node.graph.num_edges,
                query_us=query_us,
                ingest_us=ingest_us,
                batch_query_us=batch_query_us,
                warm_query_us=warm_query_us,
                csr_build_ms=csr_build_ms,
            )
        )
    lookups = node.rep_cache_hits + node.rep_cache_misses
    if lookups:
        result.cache_hit_rate = node.rep_cache_hits / lookups
    return result
