"""Whitewashing assessment (the paper's §3.5 / future work).

The deployed BarterCast assumes permanent identities; Section 3.5 notes
that without them the only defence is a (static or adaptive) newcomer
penalty.  This experiment measures that trade-off on a service-level
abstraction of the network:

* **sharers** grant fixed-size service units to requesters whose
  *effective* reputation clears the ban threshold δ, account the transfer
  in their private histories, and gossip BarterCast messages to each
  other (so debts propagate);
* **honest newcomers** reciprocate every unit they receive by serving a
  random sharer — they earn their way to a positive reputation;
* **whitewashers** never reciprocate and, once the majority of sharers
  refuses them, discard their identity and re-enter as a fresh stranger.

Measured: service obtained per group and the adaptive prior trajectory,
under each stranger policy.  The expected shape — permanent identities
make whitewashing free; a static penalty taxes honest newcomers exactly
as much as washers; the adaptive penalty converges to locking washers out
while the tax on honest newcomers depends on the population mix — is what
the paper's future-work discussion predicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.node import BarterCastConfig, BarterCastNode
from repro.core.policies import BanPolicy
from repro.core.reputation import MB, ReputationMetric
from repro.core.whitewashing import (
    AdaptiveStrangerPenalty,
    StaticStrangerPenalty,
    StrangerPolicy,
    TrustedIdentities,
)
from repro.sim.rng import RngRegistry

__all__ = ["WhitewashParams", "WhitewashResult", "run_whitewash", "make_stranger_policy"]


@dataclass
class WhitewashParams:
    """Knobs of the whitewashing experiment.

    Attributes
    ----------
    num_sharers / num_newcomers / num_washers:
        Population mix.
    rounds:
        Simulation rounds; each consumer requests one unit per round.
    service_unit:
        Bytes per granted request.
    delta:
        Ban threshold applied by sharers.
    refusal_reset:
        A whitewasher resets its identity after this many consecutive
        refusals.
    gossip_fanout:
        Sharers gossip each served transfer to this many other sharers.
    maturation:
        Rounds after first service before a consumer's earned reputation
        is fed back to the adaptive prior.
    """

    num_sharers: int = 12
    num_newcomers: int = 8
    num_washers: int = 8
    rounds: int = 150
    service_unit: float = 50 * MB
    delta: float = -0.5
    refusal_reset: int = 3
    gossip_fanout: int = 3
    maturation: int = 10


@dataclass
class WhitewashResult:
    """Outcome of one whitewashing run.

    ``service``: units obtained per group. ``identities_burned``: how many
    fresh identities the washers consumed. ``prior_trajectory``: adaptive
    prior per round (constant for non-adaptive policies).
    """

    policy: str
    service: Dict[str, float]
    identities_burned: int
    prior_trajectory: List[float] = field(default_factory=list)

    @property
    def washer_advantage(self) -> float:
        """Service per washer relative to service per honest newcomer
        (> 1: whitewashing pays; < 1: the policy deters it)."""
        washers = self.service.get("washer", 0.0)
        honest = self.service.get("newcomer", 0.0)
        if honest == 0:
            return float("inf") if washers > 0 else 1.0
        return washers / honest


def make_stranger_policy(kind: str) -> Optional[StrangerPolicy]:
    """Factory for the three §3.5 variants."""
    if kind == "trusted":
        return TrustedIdentities()
    if kind == "static":
        return StaticStrangerPenalty(penalty=-0.6)
    if kind == "adaptive":
        return AdaptiveStrangerPenalty(alpha=0.15, floor=-0.8)
    raise ValueError(f"unknown stranger policy kind {kind!r}")


def run_whitewash(
    kind: str = "adaptive",
    params: Optional[WhitewashParams] = None,
    seed: int = 0,
) -> WhitewashResult:
    """Run the experiment under one stranger policy."""
    p = params if params is not None else WhitewashParams()
    rng = RngRegistry(seed).stream("whitewash")
    stranger_policy = make_stranger_policy(kind)
    ban = BanPolicy(delta=p.delta, stranger_policy=stranger_policy)
    metric = ReputationMetric(unit_bytes=p.service_unit)
    config = BarterCastConfig(metric=metric)

    sharers = [BarterCastNode(f"sharer{i}", config) for i in range(p.num_sharers)]
    consumers: Dict[str, dict] = {}

    def add_consumer(group: str, tag: int) -> str:
        cid = f"{group}{tag}"
        consumers[cid] = {
            "group": group,
            "node": BarterCastNode(cid, config),
            "refusals": 0,
            "first_served": None,
            "matured": False,
        }
        return cid

    for i in range(p.num_newcomers):
        add_consumer("newcomer", i)
    for i in range(p.num_washers):
        add_consumer("washer", i)

    service = {"newcomer": 0.0, "washer": 0.0}
    burned = 0
    washer_counter = p.num_washers
    prior_trajectory: List[float] = []

    def gossip(sharer: BarterCastNode, now: float) -> None:
        message = sharer.create_message(now)
        if message is None:
            return
        for other in rng.sample(sharers, p.gossip_fanout):
            if other.peer_id != sharer.peer_id:
                other.receive_message(message)

    for round_idx in range(p.rounds):
        now = float(round_idx)
        for cid in list(consumers):
            state = consumers[cid]
            node = state["node"]
            sharer = rng.choice(sharers)
            if ban.allows(sharer, cid):
                sharer.record_upload(cid, p.service_unit, now)
                node.record_download(sharer.peer_id, p.service_unit, now)
                service[state["group"]] += 1.0
                state["refusals"] = 0
                if state["first_served"] is None:
                    state["first_served"] = round_idx
                gossip(sharer, now)
                if state["group"] == "newcomer":
                    # Honest newcomers reciprocate: serve a random sharer.
                    target = rng.choice(sharers)
                    node.record_upload(target.peer_id, p.service_unit, now)
                    target.record_download(cid, p.service_unit, now)
                    gossip(target, now)
            else:
                state["refusals"] += 1
                if state["group"] == "newcomer":
                    # Honest newcomers bootstrap by volunteering service:
                    # upload-first earns the credit a penalty regime demands.
                    target = rng.choice(sharers)
                    node.record_upload(target.peer_id, p.service_unit, now)
                    target.record_download(cid, p.service_unit, now)
                    gossip(target, now)
                elif state["refusals"] >= p.refusal_reset:
                    # Whitewash: drop the identity, re-enter fresh.  The
                    # abandoned identity's earned reputation is exactly the
                    # signal the adaptive prior learns from.
                    if stranger_policy is not None:
                        reps = [
                            s.reputation_of(cid)
                            for s in sharers
                            if s.graph.has_node(cid)
                        ]
                        if reps:
                            # The most-informed evaluator (the sharer that
                            # actually served this identity) carries the
                            # signal; averages dilute it across sharers
                            # that barely met the peer.
                            stranger_policy.observe(min(reps))
                    del consumers[cid]
                    add_consumer("washer", washer_counter)
                    washer_counter += 1
                    burned += 1
        # Feed matured once-strangers back into the adaptive prior.
        for state in consumers.values():
            if (
                not state["matured"]
                and state["first_served"] is not None
                and round_idx - state["first_served"] >= p.maturation
            ):
                state["matured"] = True
                reps = [
                    s.reputation_of(state["node"].peer_id)
                    for s in sharers
                    if s.graph.has_node(state["node"].peer_id)
                ]
                if reps and stranger_policy is not None:
                    stranger_policy.observe(min(reps))
        if isinstance(stranger_policy, AdaptiveStrangerPenalty):
            prior_trajectory.append(stranger_policy.prior)
        else:
            prior_trajectory.append(0.0 if kind == "trusted" else -0.6)

    # Normalize to service per peer.
    service["newcomer"] /= max(1, p.num_newcomers)
    service["washer"] /= max(1, p.num_washers)
    return WhitewashResult(
        policy=kind,
        service=service,
        identities_burned=burned,
        prior_trajectory=prior_trajectory,
    )
