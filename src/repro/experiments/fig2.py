"""Figure 2: effectiveness of the rank and ban policies.

(a) Average download speed of sharers vs freeriders under the **rank**
policy; (b) the same under the **ban** policy with δ = −0.5; (c) the
freerider speed under the ban policy for δ ∈ {−0.3, −0.5, −0.7}.

The paper's qualitative findings, which the reproduction tracks:

* freeriders are *faster* during the first day(s) — they spend no uplink
  on seeding, so all of it feeds their tit-for-tat;
* both policies eventually invert the order; at the end of the week
  freeriders reach ~75 % of sharer speed under rank and ~50 % under ban
  (δ = −0.5) — ban is clearly superior;
* the δ = −0.3 vs −0.5 gap is smaller than the −0.5 vs −0.7 gap.

All runs share one trace and one role split (same scenario seed), so
policy comparisons are paired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.timeseries import bin_series
from repro.core.policies import BanPolicy, RankPolicy
from repro.experiments.scenario import ScenarioConfig, build_simulation
from repro.obs import Observability

__all__ = [
    "Fig2Result",
    "run_fig2",
    "run_fig2_policy",
    "fig2_tasks",
    "assemble_fig2",
    "speed_series_kbps",
]

DAY = 86400.0
KB = 1024.0


def speed_series_kbps(
    stats, peers: Sequence[int], cumulative: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Average download speed (KBps) of a peer group, per day.

    With ``cumulative=True`` (default) each day's value is the running
    average up to that day — total bytes downloaded so far over total
    leech time so far — which is how the paper's smooth Figure 2 curves
    behave.  ``cumulative=False`` gives the noisier per-day-bucket mean.
    """
    rows = [stats.index[p] for p in peers]
    if not rows:
        n_days = int(np.ceil(stats.duration / DAY))
        nan = np.full(n_days, np.nan)
        return np.arange(n_days) + 0.5, nan
    if cumulative:
        down = stats.downloaded[rows].sum(axis=0).cumsum()
        time = stats.leech_time[rows].sum(axis=0).cumsum()
        with np.errstate(invalid="ignore", divide="ignore"):
            speed = np.where(time > 0, down / np.maximum(time, 1e-12), np.nan)
        days, means = bin_series(
            stats.bucket_times(), speed, DAY, t_max=stats.duration
        )
        return days / DAY, means / KB
    per_bucket = stats.group_speed_series(peers)
    days, means = bin_series(stats.bucket_times(), per_bucket, DAY, t_max=stats.duration)
    return days / DAY, means / KB


@dataclass
class Fig2Result:
    """Series for all three panels of Figure 2.

    ``rank`` and ``ban`` map group name ("sharers"/"freeriders") to a
    day-binned KBps series; ``delta_sweep`` maps each δ to the freerider
    series under ``BanPolicy(δ)``.
    """

    days: np.ndarray
    rank: Dict[str, np.ndarray]
    ban: Dict[str, np.ndarray]
    ban_delta: float
    delta_sweep: Dict[float, np.ndarray]

    def final_ratio(self, policy: str) -> float:
        """Final-day freerider/sharer speed ratio for ``"rank"`` or
        ``"ban"`` (the paper: ~0.75 for rank, ~0.5 for ban)."""
        series = self.rank if policy == "rank" else self.ban
        sharer = series["sharers"]
        freerider = series["freeriders"]
        valid = ~(np.isnan(sharer) | np.isnan(freerider))
        if not valid.any():
            return float("nan")
        idx = np.flatnonzero(valid)[-1]
        if sharer[idx] == 0:
            return float("nan")
        return float(freerider[idx] / sharer[idx])


def run_fig2_policy(
    scenario: ScenarioConfig,
    policy: str,
    delta: Optional[float] = None,
    obs: Optional[Observability] = None,
) -> Dict[str, np.ndarray]:
    """One Figure 2 condition: a single policy run on the shared population.

    ``policy`` is ``"rank"`` or ``"ban"`` (the latter takes ``delta``).
    Returns the day-binned speed series ``{"days", "sharers",
    "freeriders"}`` — the picklable unit payload of the parallel sweep.
    """
    if policy == "rank":
        policy_obj = RankPolicy()
    elif policy == "ban":
        if delta is None:
            raise ValueError("ban policy requires a delta")
        policy_obj = BanPolicy(delta)
    else:
        raise ValueError(f"unknown fig2 policy {policy!r}")
    sim = build_simulation(scenario, policy=policy_obj, obs=obs)
    stats = sim.run()
    days, sharer = speed_series_kbps(stats, sim.roles.sharers)
    _, freerider = speed_series_kbps(stats, sim.roles.freeriders)
    return {"days": days, "sharers": sharer, "freeriders": freerider}


def _sweep_deltas(
    deltas: Sequence[float], ban_delta: float
) -> Tuple[float, ...]:
    if ban_delta not in deltas:
        return tuple(deltas) + (ban_delta,)
    return tuple(deltas)


def fig2_tasks(
    scenario: ScenarioConfig,
    deltas: Sequence[float] = (-0.3, -0.5, -0.7),
    ban_delta: float = -0.5,
) -> List[Any]:
    """The independent sweep tasks of Figure 2, in canonical order.

    One task per policy run: rank first, then one ban run per δ.  Feed
    the resulting payload list (any execution order, merged back into
    task order) to :func:`assemble_fig2`.
    """
    from repro.parallel import SweepTask

    tasks = [
        SweepTask(
            task_id="fig2/rank",
            experiment="fig2_policy",
            params={"scenario": scenario, "policy": "rank"},
            seed=scenario.seed,
            profile=scenario.name,
        )
    ]
    for delta in _sweep_deltas(deltas, ban_delta):
        tasks.append(
            SweepTask(
                task_id=f"fig2/ban{delta:g}",
                experiment="fig2_policy",
                params={"scenario": scenario, "policy": "ban", "delta": delta},
                seed=scenario.seed,
                profile=scenario.name,
            )
        )
    return tasks


def assemble_fig2(
    payloads: Sequence[Dict[str, np.ndarray]],
    deltas: Sequence[float] = (-0.3, -0.5, -0.7),
    ban_delta: float = -0.5,
) -> Fig2Result:
    """Merge per-task payloads (in :func:`fig2_tasks` order) into the result."""
    sweep = _sweep_deltas(deltas, ban_delta)
    if len(payloads) != 1 + len(sweep):
        raise ValueError(
            f"expected {1 + len(sweep)} fig2 payloads, got {len(payloads)}"
        )
    rank = payloads[0]
    delta_sweep: Dict[float, np.ndarray] = {}
    ban: Dict[str, np.ndarray] = {}
    for delta, payload in zip(sweep, payloads[1:]):
        delta_sweep[delta] = payload["freeriders"]
        if delta == ban_delta:
            ban = {"sharers": payload["sharers"], "freeriders": payload["freeriders"]}
    return Fig2Result(
        days=rank["days"],
        rank={"sharers": rank["sharers"], "freeriders": rank["freeriders"]},
        ban=ban,
        ban_delta=ban_delta,
        delta_sweep=delta_sweep,
    )


def run_fig2(
    scenario: ScenarioConfig = None,
    deltas: Sequence[float] = (-0.3, -0.5, -0.7),
    ban_delta: float = -0.5,
    obs: Optional[Observability] = None,
    runner=None,
) -> Fig2Result:
    """Run all Figure 2 conditions (rank, ban, δ sweep) on one population.

    With ``runner`` (a :class:`repro.parallel.ParallelRunner`) the policy
    runs fan out across worker processes; the default executes them
    serially in-process.  Both paths produce bit-identical results: each
    condition is an independently seeded simulation.
    """
    if scenario is None:
        scenario = ScenarioConfig.fast()
    from repro.parallel import run_sweep

    payloads = run_sweep(fig2_tasks(scenario, deltas, ban_delta), runner=runner, obs=obs)
    return assemble_fig2(payloads, deltas, ban_delta)
