"""Figure 2: effectiveness of the rank and ban policies.

(a) Average download speed of sharers vs freeriders under the **rank**
policy; (b) the same under the **ban** policy with δ = −0.5; (c) the
freerider speed under the ban policy for δ ∈ {−0.3, −0.5, −0.7}.

The paper's qualitative findings, which the reproduction tracks:

* freeriders are *faster* during the first day(s) — they spend no uplink
  on seeding, so all of it feeds their tit-for-tat;
* both policies eventually invert the order; at the end of the week
  freeriders reach ~75 % of sharer speed under rank and ~50 % under ban
  (δ = −0.5) — ban is clearly superior;
* the δ = −0.3 vs −0.5 gap is smaller than the −0.5 vs −0.7 gap.

All runs share one trace and one role split (same scenario seed), so
policy comparisons are paired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.timeseries import bin_series
from repro.core.policies import BanPolicy, RankPolicy
from repro.experiments.scenario import ScenarioConfig, build_simulation
from repro.obs import Observability

__all__ = ["Fig2Result", "run_fig2", "speed_series_kbps"]

DAY = 86400.0
KB = 1024.0


def speed_series_kbps(
    stats, peers: Sequence[int], cumulative: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Average download speed (KBps) of a peer group, per day.

    With ``cumulative=True`` (default) each day's value is the running
    average up to that day — total bytes downloaded so far over total
    leech time so far — which is how the paper's smooth Figure 2 curves
    behave.  ``cumulative=False`` gives the noisier per-day-bucket mean.
    """
    rows = [stats.index[p] for p in peers]
    if not rows:
        n_days = int(np.ceil(stats.duration / DAY))
        nan = np.full(n_days, np.nan)
        return np.arange(n_days) + 0.5, nan
    if cumulative:
        down = stats.downloaded[rows].sum(axis=0).cumsum()
        time = stats.leech_time[rows].sum(axis=0).cumsum()
        with np.errstate(invalid="ignore", divide="ignore"):
            speed = np.where(time > 0, down / np.maximum(time, 1e-12), np.nan)
        days, means = bin_series(
            stats.bucket_times(), speed, DAY, t_max=stats.duration
        )
        return days / DAY, means / KB
    per_bucket = stats.group_speed_series(peers)
    days, means = bin_series(stats.bucket_times(), per_bucket, DAY, t_max=stats.duration)
    return days / DAY, means / KB


@dataclass
class Fig2Result:
    """Series for all three panels of Figure 2.

    ``rank`` and ``ban`` map group name ("sharers"/"freeriders") to a
    day-binned KBps series; ``delta_sweep`` maps each δ to the freerider
    series under ``BanPolicy(δ)``.
    """

    days: np.ndarray
    rank: Dict[str, np.ndarray]
    ban: Dict[str, np.ndarray]
    ban_delta: float
    delta_sweep: Dict[float, np.ndarray]

    def final_ratio(self, policy: str) -> float:
        """Final-day freerider/sharer speed ratio for ``"rank"`` or
        ``"ban"`` (the paper: ~0.75 for rank, ~0.5 for ban)."""
        series = self.rank if policy == "rank" else self.ban
        sharer = series["sharers"]
        freerider = series["freeriders"]
        valid = ~(np.isnan(sharer) | np.isnan(freerider))
        if not valid.any():
            return float("nan")
        idx = np.flatnonzero(valid)[-1]
        if sharer[idx] == 0:
            return float("nan")
        return float(freerider[idx] / sharer[idx])


def run_fig2(
    scenario: ScenarioConfig = None,
    deltas: Sequence[float] = (-0.3, -0.5, -0.7),
    ban_delta: float = -0.5,
    obs: Optional[Observability] = None,
) -> Fig2Result:
    """Run all Figure 2 conditions (rank, ban, δ sweep) on one population."""
    if scenario is None:
        scenario = ScenarioConfig.fast()
    if ban_delta not in deltas:
        deltas = tuple(deltas) + (ban_delta,)

    results: Dict[str, Dict[str, np.ndarray]] = {}
    days_axis: np.ndarray = np.empty(0)
    delta_sweep: Dict[float, np.ndarray] = {}

    # Rank policy run.
    sim = build_simulation(scenario, policy=RankPolicy(), obs=obs)
    stats = sim.run()
    days_axis, sharer = speed_series_kbps(stats, sim.roles.sharers)
    _, freerider = speed_series_kbps(stats, sim.roles.freeriders)
    results["rank"] = {"sharers": sharer, "freeriders": freerider}

    # Ban policy runs (one per delta; δ = ban_delta doubles as panel b).
    for delta in deltas:
        sim = build_simulation(scenario, policy=BanPolicy(delta), obs=obs)
        stats = sim.run()
        _, sharer = speed_series_kbps(stats, sim.roles.sharers)
        _, freerider = speed_series_kbps(stats, sim.roles.freeriders)
        delta_sweep[delta] = freerider
        if delta == ban_delta:
            results["ban"] = {"sharers": sharer, "freeriders": freerider}

    return Fig2Result(
        days=days_axis,
        rank=results["rank"],
        ban=results["ban"],
        ban_delta=ban_delta,
        delta_sweep=delta_sweep,
    )
