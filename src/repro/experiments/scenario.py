"""Scenario profiles shared by the figure drivers.

A :class:`ScenarioConfig` bundles everything that defines an experimental
condition except the policy and adversary knobs the individual figures
vary: the trace parameters, the BitTorrent/engine configuration, the
BarterCast configuration, the freerider fraction, and the seed.

Two named profiles:

``paper``
    The paper's setup (§5.1): 100 peers in 10 swarms for one week, file
    sizes from tens of MB to 2 GB, ADSL links, 50 % lazy freeriders,
    sharers seed 10 h, ``Nh = Nr = 10``.  Minutes of wall time per run.

``fast``
    A scaled-down profile with the same qualitative dynamics: 40 peers in
    5 swarms for 3 days, files 0.6–2 GB, 60 s rounds.  Seconds per run;
    used by the test and benchmark suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.bittorrent.config import BitTorrentConfig
from repro.bittorrent.roles import RoleAssignment
from repro.bittorrent.simulator import CommunitySimulator
from repro.core.node import BarterCastConfig
from repro.core.policies import ReputationPolicy
from repro.core.reputation import ReputationMetric
from repro.faults import FaultConfig
from repro.obs import Observability
from repro.traces.models import CommunityTrace, DAY, HOUR
from repro.traces.synthetic import SyntheticTraceGenerator, TraceParams

__all__ = ["ScenarioConfig", "build_simulation"]

KB = 1024.0
MB = 1024.0 * KB

#: Arctan unit used by the simulation scenarios (bytes).
#:
#: The metric's library default (100 MiB) matches the paper's "0 vs 100 MB"
#: motivation, which presumes the per-pair transfer volumes of a 100-peer /
#: 10-swarm community where each download is spread over 20-30 sources.
#: Our synthetic traces produce heavier per-pair volumes (fewer concurrent
#: sources per swarm), so the scenarios calibrate the unit to 512 MiB to
#: keep the ban thresholds at the same *relative* operating point: sharers'
#: residual imbalances (hundreds of MB against their heaviest seeders) stay
#: above delta = -0.5 while freeriders' GB-scale one-sided consumption
#: falls below it.  The metric-unit ablation bench sweeps this choice.
SCENARIO_UNIT_BYTES = 512 * MB


@dataclass
class ScenarioConfig:
    """One experimental condition (minus policy/adversary knobs).

    Attributes
    ----------
    name:
        Profile tag carried into reports.
    trace_params:
        Synthetic-trace knobs.
    bt_config:
        BitTorrent/engine knobs.
    bc_config:
        BarterCast knobs (``Nh``, ``Nr``, metric).
    freerider_fraction:
        Population split (paper: 0.5).
    seed:
        Root seed for trace generation, role assignment and simulation.
    faults:
        Optional gossip-plane fault injection
        (:class:`~repro.faults.FaultConfig`); ``None`` (default) and
        null configs leave the simulation byte-identical to a faultless
        build.
    provenance:
        When True the simulation records claim lineage (message ids,
        receipt times, supersede counts) for post-run explanation via
        ``repro explain``.  Off by default; recording never feeds back
        into behaviour, so results are bit-identical either way.
    engine:
        Reputation mechanism every node runs (DESIGN.md §15):
        ``"bartercast"`` (default, the paper's maxflow metric on the
        byte-identical native path), ``"gossip"``, or ``"ratio"``.  A
        name, not an instance, so scenarios stay picklable for sweep
        tasks.  Under :class:`~repro.core.policies.NoPolicy` the engine
        is never consulted during the run, so fault sweeps across
        engines replay identical seeded schedules.
    """

    name: str
    trace_params: TraceParams
    bt_config: BitTorrentConfig
    bc_config: BarterCastConfig = field(default_factory=lambda: BarterCastConfig(
        metric=ReputationMetric(unit_bytes=SCENARIO_UNIT_BYTES)
    ))
    freerider_fraction: float = 0.5
    seed: int = 42
    faults: Optional[FaultConfig] = None
    provenance: bool = False
    engine: str = "bartercast"

    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, seed: int = 42) -> "ScenarioConfig":
        """The paper's full-scale setup (§5.1)."""
        return cls(
            name="paper",
            trace_params=TraceParams(
                num_peers=100,
                num_swarms=10,
                duration=7 * DAY,
                uplink_bps=512 * KB,
                downlink_bps=3 * MB,
                min_file_size=30 * MB,
                max_file_size=2048 * MB,
                target_pieces=512,
            ),
            bt_config=BitTorrentConfig(
                round_interval=10.0,
                optimistic_interval=30.0,
                gossip_interval=60.0,
                seed_time=10 * HOUR,
                sample_interval=6 * HOUR,
            ),
            seed=seed,
        )

    @classmethod
    def fast(cls, seed: int = 42) -> "ScenarioConfig":
        """Scaled-down profile for tests and benchmarks (seconds per run)."""
        return cls(
            name="fast",
            trace_params=TraceParams(
                num_peers=40,
                num_swarms=5,
                duration=3 * DAY,
                uplink_bps=512 * KB,
                downlink_bps=3 * MB,
                min_file_size=600 * MB,
                max_file_size=2048 * MB,
                target_pieces=128,
                swarms_per_peer_mean=4.0,
            ),
            bt_config=BitTorrentConfig(
                round_interval=60.0,
                optimistic_interval=60.0,
                gossip_interval=120.0,
                seed_time=10 * HOUR,
                sample_interval=4 * HOUR,
            ),
            seed=seed,
        )

    @classmethod
    def tiny(cls, seed: int = 42) -> "ScenarioConfig":
        """Minimal smoke-test profile (sub-second runs, CI-friendly).

        Small enough that quantitative claims are noisy; tests use it for
        plumbing checks and direction-of-effect assertions only.
        """
        return cls(
            name="tiny",
            trace_params=TraceParams(
                num_peers=14,
                num_swarms=2,
                duration=1.0 * DAY,
                min_file_size=20 * MB,
                max_file_size=60 * MB,
                target_pieces=48,
                swarms_per_peer_mean=1.6,
                prime_time_hour=2.0,
                day_active_prob=1.0,
                mean_session_hours=8.0,
            ),
            bt_config=BitTorrentConfig(
                round_interval=60.0,
                optimistic_interval=60.0,
                gossip_interval=120.0,
                seed_time=10 * HOUR,
                sample_interval=2 * HOUR,
            ),
            # The arctan unit tracks the profile's transfer volumes (see
            # SCENARIO_UNIT_BYTES): tiny files are 20-60 MB, so the unit
            # drops accordingly or no reputation would ever leave ~0.
            bc_config=BarterCastConfig(
                metric=ReputationMetric(unit_bytes=24 * MB)
            ),
            seed=seed,
        )

    @classmethod
    def named(cls, profile: str, seed: int = 42) -> "ScenarioConfig":
        """Look up a profile by name (``"paper"``, ``"fast"`` or ``"tiny"``)."""
        if profile == "paper":
            return cls.paper(seed)
        if profile == "fast":
            return cls.fast(seed)
        if profile == "tiny":
            return cls.tiny(seed)
        raise ValueError(f"unknown scenario profile {profile!r}")

    # ------------------------------------------------------------------
    def make_trace(self) -> CommunityTrace:
        """Generate the (deterministic) trace for this scenario."""
        return SyntheticTraceGenerator(self.trace_params, seed=self.seed).generate()

    def make_roles(
        self,
        trace: CommunityTrace,
        disobey_fraction: float = 0.0,
        disobey_kind: Optional[str] = None,
    ) -> RoleAssignment:
        """Assign roles/behaviours for this scenario's population."""
        return RoleAssignment.split(
            trace,
            freerider_fraction=self.freerider_fraction,
            seed=self.seed,
            disobey_fraction=disobey_fraction,
            disobey_kind=disobey_kind,
        )

    def with_seed(self, seed: int) -> "ScenarioConfig":
        """A copy of this scenario with a different seed."""
        return replace(self, seed=seed)

    def with_faults(self, faults: Optional[FaultConfig]) -> "ScenarioConfig":
        """A copy of this scenario with a different fault schedule."""
        return replace(self, faults=faults)

    def with_provenance(self, provenance: bool = True) -> "ScenarioConfig":
        """A copy of this scenario with lineage recording toggled."""
        return replace(self, provenance=provenance)

    def with_engine(self, engine: str) -> "ScenarioConfig":
        """A copy of this scenario with a different reputation engine."""
        return replace(self, engine=engine)


def build_simulation(
    scenario: ScenarioConfig,
    policy: Optional[ReputationPolicy] = None,
    disobey_fraction: float = 0.0,
    disobey_kind: Optional[str] = None,
    obs: Optional[Observability] = None,
) -> CommunitySimulator:
    """Construct a ready-to-run simulator for a scenario.

    The trace and role split depend only on the scenario seed, so two
    calls with different policies run against identical populations —
    paired comparisons, as the paper's policy figures require.  The
    optional ``obs`` bundle is threaded into the simulator (and from
    there the engine, nodes and choker); it never affects results.
    """
    trace = scenario.make_trace()
    roles = scenario.make_roles(trace, disobey_fraction, disobey_kind)
    return CommunitySimulator(
        trace,
        roles,
        policy=policy,
        config=scenario.bt_config,
        bc_config=scenario.bc_config,
        seed=scenario.seed,
        faults=scenario.faults,
        obs=obs,
        provenance=scenario.provenance,
        engine=scenario.engine,
    )
