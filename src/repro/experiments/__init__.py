"""Experiment drivers: one module per figure of the paper.

Each driver builds its scenario, runs the simulator(s), and returns a
result dataclass carrying exactly the series the paper plots; the
:mod:`repro.experiments.report` helpers render those series as tables and
ASCII charts for terminal inspection and for EXPERIMENTS.md.

Profiles: every driver accepts a :class:`~repro.experiments.scenario
.ScenarioConfig`; ``ScenarioConfig.paper()`` matches the paper's setup
(100 peers, 10 swarms, one week) and ``ScenarioConfig.fast()`` is a
scaled-down profile used by tests and the benchmark harness (the shapes —
who wins, crossover ordering — hold in both; see EXPERIMENTS.md).
"""

from repro.experiments.scenario import ScenarioConfig, build_simulation
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import (
    Fig2Result,
    assemble_fig2,
    fig2_tasks,
    run_fig2,
    run_fig2_policy,
)
from repro.experiments.fig3 import (
    Fig3Result,
    assemble_fig3,
    fig3_tasks,
    run_fig3,
    run_fig3_point,
)
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.faults import (
    FaultPoint,
    FaultsResult,
    assemble_faults,
    fault_tasks,
    run_fault_point,
    run_faults,
)
from repro.experiments.whitewash import (
    WhitewashParams,
    WhitewashResult,
    run_whitewash,
)
from repro.experiments.scalability import (
    ScalabilityPoint,
    ScalabilityResult,
    run_scalability,
)
from repro.experiments import report

__all__ = [
    "ScenarioConfig",
    "build_simulation",
    "Fig1Result",
    "run_fig1",
    "Fig2Result",
    "run_fig2",
    "run_fig2_policy",
    "fig2_tasks",
    "assemble_fig2",
    "Fig3Result",
    "run_fig3",
    "run_fig3_point",
    "fig3_tasks",
    "assemble_fig3",
    "Fig4Result",
    "run_fig4",
    "FaultPoint",
    "FaultsResult",
    "run_fault_point",
    "run_faults",
    "fault_tasks",
    "assemble_faults",
    "WhitewashParams",
    "WhitewashResult",
    "run_whitewash",
    "ScalabilityPoint",
    "ScalabilityResult",
    "run_scalability",
    "report",
]
