"""Figure 3: disobeying the message protocol.

The paper varies the fraction of peers that disobey BarterCast's message
protocol — drawn from the freerider half, at most 50 % of the population —
under the ban policy with δ = −0.5, and plots the average download speed
of sharers and freeriders against that fraction:

(a) **ignorers** (send no messages at all): effectiveness barely changes —
the sharers' banning decisions rest on information from other sharers and
from obeying freeriders;

(b) **selfish liars** (claim huge uploads, zero downloads): effectiveness
degrades as the lying fraction grows, but the protocol remains effective
below roughly 18 % liars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.policies import BanPolicy
from repro.experiments.scenario import ScenarioConfig, build_simulation
from repro.obs import Observability

__all__ = [
    "Fig3Result",
    "run_fig3",
    "run_fig3_point",
    "fig3_tasks",
    "assemble_fig3",
]

KB = 1024.0


@dataclass
class Fig3Result:
    """Speeds as a function of the disobeying-peer percentage.

    Attributes
    ----------
    kind:
        ``"ignore"`` (panel a) or ``"lie"`` (panel b).
    percentages:
        Disobeying-peer percentages swept.
    sharer_speed_kbps / freerider_speed_kbps:
        Whole-run average download speed per group at each percentage.
    """

    kind: str
    percentages: np.ndarray
    sharer_speed_kbps: np.ndarray
    freerider_speed_kbps: np.ndarray

    def relative_freerider_speed(self) -> np.ndarray:
        """Freerider speed as a fraction of sharer speed per percentage —
        the effectiveness measure the paper discusses (lower = policy
        still biting)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return self.freerider_speed_kbps / self.sharer_speed_kbps


def _validate_kind_and_percentages(
    scenario: ScenarioConfig, kind: str, percentages: Sequence[float]
) -> None:
    if kind not in ("ignore", "lie"):
        raise ValueError(f"unknown manipulation kind {kind!r}")
    max_pct = scenario.freerider_fraction * 100.0
    for pct in percentages:
        if pct > max_pct + 1e-9:
            raise ValueError(
                f"{pct}% disobeying exceeds the freerider fraction ({max_pct}%)"
            )


def run_fig3_point(
    scenario: ScenarioConfig,
    kind: str,
    pct: float,
    delta: float = -0.5,
    obs: Optional[Observability] = None,
) -> Tuple[float, float]:
    """One Figure 3 sweep point: one simulation at ``pct`` % disobeyers.

    Returns ``(sharer_speed_kbps, freerider_speed_kbps)`` — the picklable
    unit payload of the parallel sweep.
    """
    sim = build_simulation(
        scenario,
        policy=BanPolicy(delta),
        disobey_fraction=pct / 100.0,
        disobey_kind=kind if pct > 0 else None,
        obs=obs,
    )
    stats = sim.run()
    return (
        stats.group_mean_speed(sim.roles.sharers) / KB,
        stats.group_mean_speed(sim.roles.freeriders) / KB,
    )


def fig3_tasks(
    scenario: ScenarioConfig,
    kind: str = "ignore",
    percentages: Sequence[float] = (0, 10, 20, 30, 40, 50),
    delta: float = -0.5,
) -> List[Any]:
    """The independent sweep tasks of one Figure 3 panel, in sweep order."""
    _validate_kind_and_percentages(
        scenario if scenario is not None else ScenarioConfig.fast(), kind, percentages
    )
    from repro.parallel import SweepTask

    return [
        SweepTask(
            task_id=f"fig3/{kind}/{pct:g}pct",
            experiment="fig3_point",
            params={"scenario": scenario, "kind": kind, "pct": float(pct), "delta": delta},
            seed=scenario.seed,
            profile=scenario.name,
        )
        for pct in percentages
    ]


def assemble_fig3(
    payloads: Sequence[Tuple[float, float]],
    kind: str,
    percentages: Sequence[float] = (0, 10, 20, 30, 40, 50),
) -> Fig3Result:
    """Merge per-point payloads (in sweep order) into the panel result."""
    if len(payloads) != len(percentages):
        raise ValueError(
            f"expected {len(percentages)} fig3 payloads, got {len(payloads)}"
        )
    return Fig3Result(
        kind=kind,
        percentages=np.asarray(percentages, dtype=float),
        sharer_speed_kbps=np.asarray([p[0] for p in payloads]),
        freerider_speed_kbps=np.asarray([p[1] for p in payloads]),
    )


def run_fig3(
    scenario: ScenarioConfig = None,
    kind: str = "ignore",
    percentages: Sequence[float] = (0, 10, 20, 30, 40, 50),
    delta: float = -0.5,
    obs: Optional[Observability] = None,
    runner=None,
) -> Fig3Result:
    """Sweep the disobeying fraction for one manipulation kind.

    With ``runner`` (a :class:`repro.parallel.ParallelRunner`) the sweep
    points fan out across worker processes; the default runs them
    serially in-process.  Both paths are bit-identical: every point is an
    independently seeded simulation.
    """
    if scenario is None:
        scenario = ScenarioConfig.fast()
    from repro.parallel import run_sweep

    payloads = run_sweep(
        fig3_tasks(scenario, kind, percentages, delta), runner=runner, obs=obs
    )
    return assemble_fig3(payloads, kind, percentages)
