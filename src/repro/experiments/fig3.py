"""Figure 3: disobeying the message protocol.

The paper varies the fraction of peers that disobey BarterCast's message
protocol — drawn from the freerider half, at most 50 % of the population —
under the ban policy with δ = −0.5, and plots the average download speed
of sharers and freeriders against that fraction:

(a) **ignorers** (send no messages at all): effectiveness barely changes —
the sharers' banning decisions rest on information from other sharers and
from obeying freeriders;

(b) **selfish liars** (claim huge uploads, zero downloads): effectiveness
degrades as the lying fraction grows, but the protocol remains effective
below roughly 18 % liars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.policies import BanPolicy
from repro.experiments.scenario import ScenarioConfig, build_simulation
from repro.obs import Observability

__all__ = ["Fig3Result", "run_fig3"]

KB = 1024.0


@dataclass
class Fig3Result:
    """Speeds as a function of the disobeying-peer percentage.

    Attributes
    ----------
    kind:
        ``"ignore"`` (panel a) or ``"lie"`` (panel b).
    percentages:
        Disobeying-peer percentages swept.
    sharer_speed_kbps / freerider_speed_kbps:
        Whole-run average download speed per group at each percentage.
    """

    kind: str
    percentages: np.ndarray
    sharer_speed_kbps: np.ndarray
    freerider_speed_kbps: np.ndarray

    def relative_freerider_speed(self) -> np.ndarray:
        """Freerider speed as a fraction of sharer speed per percentage —
        the effectiveness measure the paper discusses (lower = policy
        still biting)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return self.freerider_speed_kbps / self.sharer_speed_kbps


def run_fig3(
    scenario: ScenarioConfig = None,
    kind: str = "ignore",
    percentages: Sequence[float] = (0, 10, 20, 30, 40, 50),
    delta: float = -0.5,
    obs: Optional[Observability] = None,
) -> Fig3Result:
    """Sweep the disobeying fraction for one manipulation kind."""
    if kind not in ("ignore", "lie"):
        raise ValueError(f"unknown manipulation kind {kind!r}")
    if scenario is None:
        scenario = ScenarioConfig.fast()
    max_pct = scenario.freerider_fraction * 100.0
    for pct in percentages:
        if pct > max_pct + 1e-9:
            raise ValueError(
                f"{pct}% disobeying exceeds the freerider fraction ({max_pct}%)"
            )
    sharer_speeds: List[float] = []
    freerider_speeds: List[float] = []
    for pct in percentages:
        sim = build_simulation(
            scenario,
            policy=BanPolicy(delta),
            disobey_fraction=pct / 100.0,
            disobey_kind=kind if pct > 0 else None,
            obs=obs,
        )
        stats = sim.run()
        sharer_speeds.append(stats.group_mean_speed(sim.roles.sharers) / KB)
        freerider_speeds.append(stats.group_mean_speed(sim.roles.freeriders) / KB)
    return Fig3Result(
        kind=kind,
        percentages=np.asarray(percentages, dtype=float),
        sharer_speed_kbps=np.asarray(sharer_speeds),
        freerider_speed_kbps=np.asarray(freerider_speeds),
    )
