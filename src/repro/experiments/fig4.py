"""Figure 4: deployment measurement.

(a) Upload − download of ~5000 peers seen by the instrumented peer during
one month: a majority net-negative, a cluster at exactly zero (fresh
installs), and a few very generous altruists with tens of gigabytes.

(b) CDF of those peers' reputations as computed by the measurement peer:
about 40 % negative, about 10 % positive, the rest ≈ 0.

Runs on the synthetic Tribler-like population of
:mod:`repro.deployment` (substitution documented in DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.stats import cdf
from repro.deployment.crawl import MeasurementCrawl
from repro.deployment.network import DeploymentNetwork, DeploymentParams
from repro.obs import Observability

__all__ = ["Fig4Result", "run_fig4"]

GB = 1024.0**3


@dataclass
class Fig4Result:
    """Observables of the deployment measurement.

    Attributes
    ----------
    net_contribution:
        Ground-truth upload − download (bytes) per seen peer, in peer-id
        order (Figure 4(a) plots these against peer id on a symlog axis).
    reputation_values / reputation_cdf:
        Figure 4(b): sorted reputation sample and its empirical CDF.
    fractions:
        ``{"negative", "zero", "positive"}`` reputation fractions.
    messages_logged / peers_seen:
        Crawl scale indicators.
    """

    net_contribution: np.ndarray
    reputation_values: np.ndarray
    reputation_cdf: np.ndarray
    fractions: Dict[str, float]
    messages_logged: int
    peers_seen: int

    @property
    def fraction_net_negative(self) -> float:
        """Fraction of seen peers that downloaded more than they uploaded."""
        return float((self.net_contribution < 0).mean())

    @property
    def max_altruist_gb(self) -> float:
        """Largest positive net contribution, in GB (the paper: tens of GB)."""
        return float(self.net_contribution.max() / GB)


def run_fig4(
    params: DeploymentParams = None,
    duration_days: float = 30.0,
    seed: int = 42,
    obs: Optional[Observability] = None,
) -> Fig4Result:
    """Generate the population, run the crawl, compute both panels."""
    network = DeploymentNetwork(params if params is not None else DeploymentParams(), seed=seed)
    crawl = MeasurementCrawl(network, duration_days=duration_days, seed=seed, obs=obs)
    result = crawl.run()

    net = np.array([result.net_contribution[p] for p in result.seen_peers])
    reps = np.array([result.reputation[p] for p in result.seen_peers])
    values, fractions_axis = cdf(reps)
    return Fig4Result(
        net_contribution=net,
        reputation_values=values,
        reputation_cdf=fractions_axis,
        fractions=result.reputation_cdf_fractions(),
        messages_logged=result.messages_logged,
        peers_seen=len(result.seen_peers),
    )
