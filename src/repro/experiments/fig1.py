"""Figure 1: contribution versus reputation.

(a) Average system reputation of sharers vs freeriders over the week —
the paper shows the two curves diverging quickly, freeriders clearly
distinguished from sharers.

(b) Scatter of each peer's final system reputation (Equation 2) against
its *real* net contribution (total upload − total download during the
run) — the paper shows a clearly consistent, monotone relationship.

The run uses plain BitTorrent (no enforcement policy): Figure 1 measures
the reputation system's *consistency*, independent of any policy feedback
on the transfers themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.stats import pearson_r, spearman_r
from repro.core.policies import NoPolicy
from repro.experiments.scenario import ScenarioConfig, build_simulation
from repro.obs import Observability

__all__ = ["Fig1Result", "run_fig1"]

DAY = 86400.0
GB = 1024.0**3


@dataclass
class Fig1Result:
    """Series for both panels of Figure 1.

    Attributes
    ----------
    times_days:
        Reputation sample times (days).
    sharer_reputation / freerider_reputation:
        Figure 1(a): group-average system reputation per sample.
    net_contribution_gb / system_reputation:
        Figure 1(b): per-peer final values (aligned lists over subjects).
    spearman / pearson:
        Consistency statistics of panel (b).
    """

    times_days: np.ndarray
    sharer_reputation: np.ndarray
    freerider_reputation: np.ndarray
    peer_ids: List[int]
    net_contribution_gb: np.ndarray
    system_reputation: np.ndarray
    spearman: float
    pearson: float

    @property
    def final_separation(self) -> float:
        """Final-sample gap between sharer and freerider average system
        reputation (positive when sharers rank above freeriders)."""
        return float(self.sharer_reputation[-1] - self.freerider_reputation[-1])


def run_fig1(
    scenario: ScenarioConfig = None, obs: Optional[Observability] = None
) -> Fig1Result:
    """Run the Figure 1 experiment and return both panels' series."""
    if scenario is None:
        scenario = ScenarioConfig.fast()
    sim = build_simulation(scenario, policy=NoPolicy(), obs=obs)
    subjects = sim.roles.subjects

    def sampler(now: float) -> None:
        snapshot = sim.system_reputation_snapshot(subjects)
        sim.stats.record_reputation_sample(now, snapshot)

    sim.add_sampler(sampler)
    stats = sim.run()

    sharers, freeriders = sim.roles.sharers, sim.roles.freeriders
    times, sharer_rep = stats.reputation_series(sharers)
    _, freerider_rep = stats.reputation_series(freeriders)

    final = stats.reputation_samples[-1][1] if stats.reputation_samples else {}
    net = np.array([stats.net_contribution(p) / GB for p in subjects])
    rep = np.array([final.get(p, 0.0) for p in subjects])

    return Fig1Result(
        times_days=times / DAY,
        sharer_reputation=sharer_rep,
        freerider_reputation=freerider_rep,
        peer_ids=list(subjects),
        net_contribution_gb=net,
        system_reputation=rep,
        spearman=spearman_r(net, rep),
        pearson=pearson_r(net, rep),
    )
