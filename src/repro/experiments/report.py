"""Terminal reports: render each figure's series like the paper plots them."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.analysis.ascii_plot import ascii_chart, render_table
from repro.experiments.fig1 import Fig1Result
from repro.experiments.fig2 import Fig2Result
from repro.experiments.fig3 import Fig3Result
from repro.experiments.fig4 import Fig4Result
from repro.experiments.faults import FaultsResult

__all__ = ["report_fig1", "report_fig2", "report_fig3", "report_fig4", "report_faults"]

GB = 1024.0**3


def report_fig1(result: Fig1Result) -> str:
    """Figure 1: reputation divergence + contribution/reputation scatter."""
    lines: List[str] = []
    lines.append("== Figure 1(a): average system reputation over time ==")
    rows = [
        (float(t), float(s), float(f))
        for t, s, f in zip(
            result.times_days, result.sharer_reputation, result.freerider_reputation
        )
    ]
    lines.append(render_table(["day", "sharers", "freeriders"], rows))
    lines.append(
        ascii_chart(
            {
                "sharers": result.sharer_reputation,
                "freeriders": result.freerider_reputation,
            },
            y_label="avg system reputation",
        )
    )
    lines.append(f"final separation (sharers - freeriders): {result.final_separation:.4f}")
    lines.append("")
    lines.append("== Figure 1(b): system reputation vs net contribution ==")
    order = np.argsort(result.net_contribution_gb)
    rows = [
        (float(result.net_contribution_gb[i]), float(result.system_reputation[i]))
        for i in order
    ]
    lines.append(render_table(["net contribution (GB)", "system reputation"], rows))
    lines.append(
        f"consistency: spearman={result.spearman:.3f} pearson={result.pearson:.3f}"
    )
    return "\n".join(lines)


def report_fig2(result: Fig2Result) -> str:
    """Figure 2: policy speed curves and the δ sweep."""
    lines: List[str] = []
    lines.append("== Figure 2(a): avg download speed (KBps), rank policy ==")
    rows = [
        (float(d), float(s), float(f))
        for d, s, f in zip(result.days, result.rank["sharers"], result.rank["freeriders"])
    ]
    lines.append(render_table(["day", "sharers", "freeriders"], rows, "{:.1f}"))
    lines.append(
        f"final freerider/sharer speed ratio: {result.final_ratio('rank'):.2f}"
        "  (paper: ~0.75)"
    )
    lines.append("")
    lines.append(
        f"== Figure 2(b): avg download speed (KBps), ban policy (delta={result.ban_delta}) =="
    )
    rows = [
        (float(d), float(s), float(f))
        for d, s, f in zip(result.days, result.ban["sharers"], result.ban["freeriders"])
    ]
    lines.append(render_table(["day", "sharers", "freeriders"], rows, "{:.1f}"))
    lines.append(
        f"final freerider/sharer speed ratio: {result.final_ratio('ban'):.2f}"
        "  (paper: ~0.50)"
    )
    lines.append("")
    lines.append("== Figure 2(c): freerider speed (KBps) for different delta ==")
    deltas = sorted(result.delta_sweep)
    headers = ["day"] + [f"d={d}" for d in deltas]
    rows = []
    for i, day in enumerate(result.days):
        rows.append(
            [float(day)] + [float(result.delta_sweep[d][i]) for d in deltas]
        )
    lines.append(render_table(headers, rows, "{:.1f}"))
    return "\n".join(lines)


def report_fig3(result: Fig3Result) -> str:
    """Figure 3: speeds vs disobeying-peer percentage."""
    label = "ignoring" if result.kind == "ignore" else "lying"
    lines: List[str] = []
    lines.append(f"== Figure 3({'a' if result.kind == 'ignore' else 'b'}): "
                 f"avg download speed vs % of peers {label} ==")
    rel = result.relative_freerider_speed()
    rows = [
        (float(p), float(s), float(f), float(r))
        for p, s, f, r in zip(
            result.percentages,
            result.sharer_speed_kbps,
            result.freerider_speed_kbps,
            rel,
        )
    ]
    lines.append(
        render_table(
            [f"% {label}", "sharers KBps", "freeriders KBps", "freerider/sharer"],
            rows,
            "{:.2f}",
        )
    )
    return "\n".join(lines)


def report_fig4(result: Fig4Result) -> str:
    """Figure 4: deployment contribution imbalance + reputation CDF."""
    lines: List[str] = []
    lines.append("== Figure 4(a): upload - download of seen peers ==")
    net = result.net_contribution
    rows = [
        ("peers seen", result.peers_seen),
        ("messages logged", result.messages_logged),
        ("fraction net-negative", float((net < 0).mean())),
        ("fraction exactly zero", float((net == 0).mean())),
        ("fraction net-positive", float((net > 0).mean())),
        ("median net (MB)", float(np.median(net) / 1024**2)),
        ("max altruist (GB)", result.max_altruist_gb),
        ("min consumer (GB)", float(net.min() / GB)),
    ]
    lines.append(render_table(["statistic", "value"], rows))
    lines.append("")
    lines.append("== Figure 4(b): reputation CDF at the measurement peer ==")
    grid = np.linspace(-1.0, 1.0, 21)
    cdf_rows = []
    for x in grid:
        frac = float((result.reputation_values <= x).mean()) if result.reputation_values.size else float("nan")
        cdf_rows.append((float(x), frac))
    lines.append(render_table(["reputation", "cdf"], cdf_rows, "{:.3f}"))
    f = result.fractions
    lines.append(
        f"fractions: negative={f['negative']:.2f} zero={f['zero']:.2f} "
        f"positive={f['positive']:.2f}  (paper: ~0.40 / ~0.50 / ~0.10)"
    )
    return "\n".join(lines)


def report_faults(result: FaultsResult) -> str:
    """Fault sweep: reputation quality vs. gossip-plane fault level.

    One quality section per reputation mechanism in the sweep (the
    mechanisms ran on identical seeded schedules, so the fault columns
    line up row for row and the tables read as a direct comparison).
    The channel/churn telemetry is mechanism-independent by
    construction and is printed once.
    """
    lines: List[str] = []
    engines = result.engines or ("bartercast",)
    lines.append(
        "== Fault sweep: reputation quality vs message loss"
        f" (profile={result.profile}, ban delta={result.delta}) =="
    )
    for engine in engines:
        pts = result.points_for(engine)
        if len(engines) > 1:
            lines.append(f"-- mechanism: {engine} --")
        rows = [
            (
                float(p.loss),
                float(p.churn),
                float(p.coverage),
                float(p.false_ban_rate),
                float(p.rank_inversion_rate),
                float(p.convergence_time),
            )
            for p in pts
        ]
        lines.append(
            render_table(
                [
                    "loss", "churn/day", "coverage", "false-ban",
                    "rank-inversion", "converge-s",
                ],
                rows,
                "{:.3f}",
            )
        )
    lines.append("")
    lines.append("== Channel / churn telemetry ==")
    rows = [
        (
            float(p.loss),
            p.messages_delivered,
            p.messages_dropped,
            p.messages_duplicated,
            p.messages_delayed,
            p.crashes,
            p.wipes,
        )
        for p in result.points_for(engines[0])
    ]
    lines.append(
        render_table(
            ["loss", "delivered", "dropped", "duplicated", "delayed", "crashes", "wipes"],
            rows,
        )
    )
    if any(p.digests for p in result.points):
        MB = 1024.0 * 1024.0
        lines.append("")
        lines.append("== Worst rank inversions (--top-k digests) ==")
        for p in result.points:
            if not p.digests:
                continue
            tag = f" [{p.engine}]" if len(engines) > 1 else ""
            lines.append(f"loss={p.loss:g} churn/day={p.churn:g}{tag}:")
            for d in p.digests:
                lines.append(
                    f"  peer {d.evaluator} ranks freerider {d.freerider} "
                    f"(R={d.freerider_rep:+.3f}) above sharer {d.sharer} "
                    f"(R={d.sharer_rep:+.3f}, gap {d.severity:.3f})"
                )
                lines.append(
                    f"    ground truth: sharer contributed "
                    f"{d.sharer_contribution / MB:+.0f} MB vs freerider "
                    f"{d.freerider_contribution / MB:+.0f} MB; evaluator sees "
                    f"inflow {d.sharer_inflow / MB:.0f} MB / outflow "
                    f"{d.sharer_outflow / MB:.0f} MB from the sharer over "
                    f"{d.sharer_claims} gossip claim(s)"
                )
    violations = result.total_violations
    lines.append(
        f"invariant audit: {violations} violation(s) across "
        f"{len(result.points)} fault level(s)"
        + ("" if violations == 0 else "  ** INVARIANT BREACH **")
    )
    return "\n".join(lines)
