"""The unreliable message channel.

The Tribler deployment the paper reports on ran BarterCast over a real
network: only a minority of peers accepted incoming connections, and
messages were lost, duplicated, delayed, and reordered.  The simulators
historically delivered every BarterCast message instantly and exactly
once, which makes that entire regime untestable.  This module provides
the injectable seam: a seeded :class:`ChannelModel` sits between
``create_message`` and ``SubjectiveSharedHistory.ingest`` at every
delivery site and decides, per message, whether (and when, and how many
times) it arrives.

Fault semantics (all independent per message, all driven by the
channel's *own* RNG stream so enabling faults never perturbs the other
simulation streams):

* **connectability** — each peer is connectable with probability
  ``connectable_fraction`` (the paper observed only a minority of peers
  accepted incoming connections).  A message can be carried only if at
  least one endpoint is connectable, mirroring who-can-initiate
  semantics of NAT'd swarms.  Unconnectable-pair messages are dropped.
* **loss** — the message is dropped with probability ``loss``.
* **duplication** — with probability ``duplicate`` a second copy is
  delivered (geometric continuation: each copy spawns another with the
  same probability, capped at :data:`MAX_COPIES`).
* **delay / reordering** — each surviving copy is delayed by an
  independent uniform draw from ``[0, delay_max]`` seconds.  Because
  delays are independent, messages (and duplicate copies) reorder.

Default-off bit-identity: a :class:`FaultConfig` with every knob at its
default is *null* (:attr:`FaultConfig.is_null`), and callers skip
constructing the channel entirely, so the RNG stream is never created,
no events are scheduled, and the simulation is byte-identical to one
without the fault layer (pinned by ``tests/test_faults.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.obs import NULL_OBS, Observability
from repro.sim.rng import RngStream

__all__ = ["FaultConfig", "ChannelModel", "MAX_COPIES"]

PeerId = Hashable

#: Hard cap on delivered copies of one message (loss of generality is
#: nil for any sane ``duplicate`` probability; the cap only guards the
#: geometric continuation against pathological configs like 0.999).
MAX_COPIES = 4


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of the unreliable channel and the churn injector.

    Attributes
    ----------
    loss:
        Per-message drop probability in ``[0, 1]`` (1.0 = blackout).
    duplicate:
        Per-copy probability that one more copy of the message is
        delivered (geometric; capped at :data:`MAX_COPIES` copies).
    delay_max:
        Upper bound (seconds) of the per-copy uniform random delivery
        delay; independent delays reorder messages.  0 delivers inline.
    churn_rate:
        Expected abrupt-restart events per peer per simulated day
        (drives :class:`~repro.faults.churn.ChurnInjector`).
    churn_downtime:
        Mean downtime (seconds, exponential) of one churn outage.
    churn_wipe_prob:
        Probability that a churn restart loses the peer's in-memory
        gossip state (its subjective shared history is wiped through
        ``forget_reporter`` and it re-registers with the PSS on rejoin).
    connectable_fraction:
        Probability that a peer accepts incoming channel connections;
        messages between two unconnectable peers are dropped.  1.0
        (default) disables the matrix.  The paper's deployment observed
        roughly 20 % connectable peers.
    """

    loss: float = 0.0
    duplicate: float = 0.0
    delay_max: float = 0.0
    churn_rate: float = 0.0
    churn_downtime: float = 1800.0
    churn_wipe_prob: float = 0.5
    connectable_fraction: float = 1.0

    def validate(self) -> None:
        """Check parameter sanity; raises ``ValueError``.

        ``loss = 1.0`` (total blackout) and ``duplicate = 1.0`` (every
        copy spawns another, saturating at :data:`MAX_COPIES`) are valid
        extreme points: the blackout regime is exactly what the fault
        sweep's bootstrap measurements drive, and the duplication cap
        bounds the geometric continuation regardless of the probability.
        """
        for name in ("loss", "duplicate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.delay_max < 0:
            raise ValueError("delay_max must be non-negative")
        if self.churn_rate < 0:
            raise ValueError("churn_rate must be non-negative")
        if self.churn_downtime <= 0:
            raise ValueError("churn_downtime must be positive")
        if not 0.0 <= self.churn_wipe_prob <= 1.0:
            raise ValueError("churn_wipe_prob must be a probability")
        if not 0.0 < self.connectable_fraction <= 1.0:
            raise ValueError("connectable_fraction must be in (0, 1]")

    @property
    def is_null(self) -> bool:
        """Whether this config injects no fault at all.

        Null configs make callers skip the fault layer entirely — no RNG
        stream, no scheduled events — which is what keeps default runs
        byte-identical to runs without the layer.
        """
        return (
            self.loss == 0.0
            and self.duplicate == 0.0
            and self.delay_max == 0.0
            and self.churn_rate == 0.0
            and self.connectable_fraction >= 1.0
        )

    @property
    def has_channel_faults(self) -> bool:
        """Whether the message channel itself (not just churn) is faulty."""
        return (
            self.loss > 0.0
            or self.duplicate > 0.0
            or self.delay_max > 0.0
            or self.connectable_fraction < 1.0
        )


class ChannelModel:
    """Seeded per-message fault decisions for one simulated network.

    Parameters
    ----------
    config:
        The fault knobs (validated).
    rng:
        The channel's private random stream (by convention
        ``RngRegistry.stream("faults.channel")``); fault decisions never
        consume any other stream.
    obs:
        Observability bundle.  When metrics are enabled the channel
        counts ``net.dropped`` / ``net.dropped_by_churn`` /
        ``net.duplicated`` / ``net.delayed`` (plus ``net.delivered``),
        and when tracing is enabled it emits sampled ``net.deliver``
        events for every fault decision (delivered events carry per-copy
        delays; offline events carry the cut copy's index and delay).
    """

    def __init__(
        self,
        config: FaultConfig,
        rng: RngStream,
        obs: Optional[Observability] = None,
    ) -> None:
        config.validate()
        self.config = config
        self._rng = rng
        obs = obs if obs is not None else NULL_OBS
        metrics = obs.metrics
        if metrics.enabled:
            self._m_dropped = metrics.counter("net.dropped")
            self._m_dropped_churn = metrics.counter("net.dropped_by_churn")
            self._m_duplicated = metrics.counter("net.duplicated")
            self._m_delayed = metrics.counter("net.delayed")
            self._m_delivered = metrics.counter("net.delivered")
        else:
            self._m_dropped = None
            self._m_dropped_churn = None
            self._m_duplicated = None
            self._m_delayed = None
            self._m_delivered = None
        tracer = obs.tracer
        self._tr_deliver = tracer.category("net.deliver") if tracer.enabled else None
        self._connectable: Dict[PeerId, bool] = {}
        #: Telemetry mirrors of the obs counters (always maintained, so
        #: experiments can read fault activity without a live registry).
        self.dropped = 0
        #: Copies that surfaced while the receiver was churned down —
        #: counted inside ``dropped`` too, but kept distinct so churn
        #: damage is separable from channel loss.
        self.dropped_by_churn = 0
        self.duplicated = 0
        self.delayed = 0
        self.delivered = 0
        #: Verdict of the most recent fault decision (``unconnectable`` /
        #: ``dropped`` / ``delivered`` / ``offline``); lets the host
        #: simulator attribute an empty plan without re-deriving it.
        self.last_verdict: Optional[str] = None

    # ------------------------------------------------------------------
    def is_connectable(self, peer: PeerId) -> bool:
        """Whether ``peer`` accepts incoming channel connections.

        Sampled lazily (one Bernoulli per peer, memoized) so the draw
        order is the peer-first-seen order, which is deterministic under
        the simulator's deterministic event ordering.
        """
        if self.config.connectable_fraction >= 1.0:
            return True
        known = self._connectable.get(peer)
        if known is None:
            known = self._rng.bernoulli(self.config.connectable_fraction)
            self._connectable[peer] = known
        return known

    def can_carry(self, src: PeerId, dst: PeerId) -> bool:
        """Whether a channel between ``src`` and ``dst`` can exist (at
        least one endpoint connectable)."""
        return self.is_connectable(src) or self.is_connectable(dst)

    # ------------------------------------------------------------------
    def plan_delivery(self, src: PeerId, dst: PeerId, now: float) -> List[float]:
        """Fault-adjusted delivery times for one message sent at ``now``.

        Returns the (possibly empty) list of absolute times at which
        copies of the message arrive at ``dst``:

        * ``[]`` — the message was dropped (loss, or unconnectable pair);
        * ``[now]`` — normal immediate delivery;
        * longer / later lists — duplication and random delay.

        The list is *not* sorted: independent delays are how reordering
        (relative to other messages and between copies) happens.
        """
        cfg = self.config
        if not self.can_carry(src, dst):
            self.dropped += 1
            if self._m_dropped is not None:
                self._m_dropped.inc()
            self._trace("unconnectable", src, dst, now, 0)
            return []
        if cfg.loss > 0.0 and self._rng.bernoulli(cfg.loss):
            self.dropped += 1
            if self._m_dropped is not None:
                self._m_dropped.inc()
            self._trace("dropped", src, dst, now, 0)
            return []
        copies = 1
        while (
            cfg.duplicate > 0.0
            and copies < MAX_COPIES
            and self._rng.bernoulli(cfg.duplicate)
        ):
            copies += 1
        if copies > 1:
            self.duplicated += copies - 1
            if self._m_duplicated is not None:
                self._m_duplicated.inc(copies - 1)
        times: List[float] = []
        for _ in range(copies):
            if cfg.delay_max > 0.0:
                delay = self._rng.uniform(0.0, cfg.delay_max)
            else:
                delay = 0.0
            if delay > 0.0:
                self.delayed += 1
                if self._m_delayed is not None:
                    self._m_delayed.inc()
            times.append(now + delay)
        self.delivered += copies
        if self._m_delivered is not None:
            self._m_delivered.inc(copies)
        self._trace("delivered", src, dst, now, copies, times=times)
        return times

    def note_undeliverable(
        self,
        src: PeerId,
        dst: PeerId,
        now: float,
        copy: int = 0,
        delay: float = 0.0,
        by_churn: bool = False,
    ) -> None:
        """Account a copy that arrived while the receiver was offline.

        Called by the host simulator from the terminal delivery seam (a
        delayed copy surfacing after its receiver left); consumes no
        randomness.  ``copy`` and ``delay`` identify which duplicate was
        cut and how far it had been deferred, so DAG reconstruction never
        has to guess; ``by_churn`` marks receivers that are down because
        of a churn outage (counted in ``net.dropped_by_churn``, distinct
        from channel loss).
        """
        self.dropped += 1
        if self._m_dropped is not None:
            self._m_dropped.inc()
        if by_churn:
            self.dropped_by_churn += 1
            if self._m_dropped_churn is not None:
                self._m_dropped_churn.inc()
        self._trace(
            "offline",
            src,
            dst,
            now,
            0,
            extra={"copy": copy, "delay": delay, "by_churn": by_churn},
        )

    # ------------------------------------------------------------------
    def _trace(
        self,
        verdict: str,
        src: PeerId,
        dst: PeerId,
        now: float,
        copies: int,
        times: Optional[List[float]] = None,
        extra: Optional[dict] = None,
    ) -> None:
        self.last_verdict = verdict
        cat = self._tr_deliver
        if cat is not None and cat.sample():
            attrs = {"src": src, "dst": dst, "copies": copies}
            if times is not None:
                # Per-copy delivery delays, indexed by duplication-copy
                # number — the delayed/dropped branches of the delivery
                # seam reference these copies.
                attrs["delays"] = [t - now for t in times]
            if extra:
                attrs.update(extra)
            cat.emit_sampled(verdict, sim_time=now, attrs=attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ChannelModel loss={self.config.loss} dup={self.config.duplicate} "
            f"delay<= {self.config.delay_max}s delivered={self.delivered} "
            f"dropped={self.dropped}>"
        )
