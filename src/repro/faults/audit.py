"""Invariant auditor: the subjective graph under arbitrary fault schedules.

BarterCast's safety argument does not depend on reliable delivery: no
matter which messages are lost, duplicated, delayed, or reordered, and
no matter how peers churn, a peer's subjective view must stay inside the
**ground-truth envelope**:

1. **Third-party edges are bounded by the larger honest claim.**  A
   materialized edge ``x → y`` in an honest network can never exceed
   ``max(uploaded_x(y), downloaded_y(x))`` taken from the parties' real
   private histories — redelivery and reordering may *stale* the view
   (totals only grow, so a late copy carries a smaller-or-equal total)
   but can never inflate it.  This is exactly the property the
   equal-timestamp tie rule in
   :meth:`~repro.core.sharedhistory.SubjectiveSharedHistory._update_claim`
   protects: ties keep the max, so arrival order cannot matter.
2. **Owner-incident edges come only from private history.**  Whatever
   the fault schedule does, an edge touching the view's owner must equal
   the owner's own accounting, byte for byte.
3. **Reputations stay inside the engine's declared codomain** — the
   open interval (−1, 1) for the arctan-scaled engines (BarterCast,
   differential gossip), the closed [−1, 1] for ratio credit — and are
   never NaN.
4. **Recorded lineage reconstructs the view** (only when the run
   recorded provenance): for every materialized third-party edge, the
   max over the live claims' lineage values must equal the edge
   capacity byte for byte, every individual lineage value must itself
   fit the honest envelope, and the delivery metadata must be sane
   (``received_at ≥ reported_at``, gossip hop count 1).  This is the
   cross-check that the explanation ``repro explain`` prints is the
   view the node actually acts on, not a parallel bookkeeping that
   could drift.

The auditor checks all of these for one node or a whole simulation and
returns human-readable violation strings (empty list = invariants hold).
The fault sweep asserts on it after every run, and the property tests in
``tests/test_faults.py`` drive it over random fault schedules.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence

from repro.core.history import PrivateHistory
from repro.core.node import BarterCastNode

__all__ = ["max_honest_claim", "audit_node", "audit_simulation"]

PeerId = Hashable

#: Relative slack for float accumulation differences between the
#: histories' running totals and the graph's materialized capacities.
REL_EPS = 1e-9


def max_honest_claim(
    histories: Mapping[PeerId, PrivateHistory], src: PeerId, dst: PeerId
) -> float:
    """The largest claim honest parties could make about edge ``src → dst``.

    Either endpoint may report the edge: ``src`` as its upload to
    ``dst``, ``dst`` as its download from ``src``.  For honest peers the
    two agree; the envelope takes the max so it is also valid mid-round
    when one side's total is momentarily ahead in gossip.
    """
    up = 0.0
    down = 0.0
    h_src = histories.get(src)
    if h_src is not None:
        up = h_src.get(dst).uploaded
    h_dst = histories.get(dst)
    if h_dst is not None:
        down = h_dst.get(src).downloaded
    return max(up, down)


def audit_node(
    node: BarterCastNode,
    histories: Mapping[PeerId, PrivateHistory],
    rep_targets: Optional[Sequence[PeerId]] = None,
) -> List[str]:
    """Audit one node's subjective view against the ground-truth envelope.

    Parameters
    ----------
    node:
        The node whose subjective graph and reputations are audited.
    histories:
        Ground-truth private histories per peer (in the simulators these
        are the nodes' own histories — transfer accounting writes both
        sides, so they *are* the realized transfer totals).
    rep_targets:
        Peers whose reputation to range-check; defaults to every other
        peer in ``histories``.

    Returns the list of violation descriptions (empty = clean).
    """
    owner = node.peer_id
    violations: List[str] = []
    own = histories.get(owner, node.history)
    for src, dst, capacity in node.graph.edges():
        if capacity <= 0.0:
            continue
        if src == owner or dst == owner:
            expected = own.get(dst).uploaded if src == owner else own.get(src).downloaded
            if abs(capacity - expected) > REL_EPS * max(1.0, expected):
                violations.append(
                    f"owner-incident edge {src!r}->{dst!r} of {owner!r} is "
                    f"{capacity:.1f}, private history says {expected:.1f}"
                )
            continue
        bound = max_honest_claim(histories, src, dst)
        if capacity > bound * (1.0 + REL_EPS) + REL_EPS:
            violations.append(
                f"edge {src!r}->{dst!r} in view of {owner!r} is {capacity:.1f}, "
                f"exceeds the honest envelope {bound:.1f}"
            )
    if rep_targets is None:
        rep_targets = [p for p in histories if p != owner]
    # Invariant 3 is range-checked against the *engine's* declared
    # codomain: the arctan-scaled engines live in the open interval
    # (−1, 1), the ratio engine legitimately reaches ±1 (a pure leecher
    # is exactly −1), which its closed bounds declare.  A NaN fails
    # either comparison, so "never NaN" is enforced for every engine.
    eng = node.active_engine()
    lo, hi = eng.score_bounds
    closed = eng.bounds_closed
    for target in rep_targets:
        if target == owner:
            continue
        rep = node.reputation_of(target)
        ok = (lo <= rep <= hi) if closed else (lo < rep < hi)
        if not ok:
            interval = f"[{lo:g}, {hi:g}]" if closed else f"({lo:g}, {hi:g})"
            violations.append(
                f"reputation R_{owner!r}({target!r}) = {rep} outside "
                f"{interval} ({eng.name} engine)"
            )
    if getattr(node.shared, "provenance_enabled", False):
        violations.extend(_audit_lineage(node, histories))
    return violations


def _audit_lineage(
    node: BarterCastNode, histories: Mapping[PeerId, PrivateHistory]
) -> List[str]:
    """Invariant 4: recorded lineage must reconstruct the subjective view.

    Only called when the node's shared history recorded provenance for
    the whole run, so every live third-party claim carries lineage and
    the max over lineage values must reproduce the materialized edge.
    """
    owner = node.peer_id
    violations: List[str] = []
    for src, dst, capacity in node.graph.edges():
        if capacity <= 0.0 or src == owner or dst == owner:
            continue
        lineage = node.shared.lineage_of(src, dst)
        if not lineage:
            violations.append(
                f"edge {src!r}->{dst!r} in view of {owner!r} is {capacity:.1f} "
                f"but carries no claim lineage"
            )
            continue
        reconstructed = max(entry.value for entry in lineage.values())
        if abs(reconstructed - capacity) > REL_EPS * max(1.0, capacity):
            violations.append(
                f"lineage of edge {src!r}->{dst!r} in view of {owner!r} "
                f"replays to {reconstructed:.1f}, graph says {capacity:.1f}"
            )
        bound = max_honest_claim(histories, src, dst)
        for reporter, entry in lineage.items():
            if entry.value > bound * (1.0 + REL_EPS) + REL_EPS:
                violations.append(
                    f"lineage claim by {reporter!r} on {src!r}->{dst!r} in "
                    f"view of {owner!r} is {entry.value:.1f}, exceeds the "
                    f"honest envelope {bound:.1f}"
                )
            if entry.received_at < entry.reported_at:
                violations.append(
                    f"lineage claim by {reporter!r} on {src!r}->{dst!r} in "
                    f"view of {owner!r} was received at {entry.received_at:.1f} "
                    f"before it was reported at {entry.reported_at:.1f}"
                )
            if entry.hops != 1:
                violations.append(
                    f"lineage claim by {reporter!r} on {src!r}->{dst!r} in "
                    f"view of {owner!r} has hop count {entry.hops}; gossip "
                    f"is never forwarded (expected 1)"
                )
    return violations


def audit_simulation(sim, max_rep_targets: int = 0) -> List[str]:
    """Audit every node of a :class:`~repro.bittorrent.simulator
    .CommunitySimulator` (or anything with ``.nodes: {pid: node}``).

    ``max_rep_targets`` bounds the per-node reputation range checks
    (0 = check every pair; the graph envelope is always checked fully).
    """
    histories: Dict[PeerId, PrivateHistory] = {
        pid: node.history for pid, node in sim.nodes.items()
    }
    violations: List[str] = []
    for pid in sorted(sim.nodes):
        node = sim.nodes[pid]
        targets: Optional[Sequence[PeerId]] = None
        if max_rep_targets > 0:
            targets = [p for p in sorted(histories, key=repr) if p != pid][
                :max_rep_targets
            ]
        violations.extend(audit_node(node, histories, rep_targets=targets))
    return violations
