"""Churn injection: abrupt session crashes with rejoin.

The paper's deployment ran on a network with heavy churn — peers come
and go, restart, and rejoin with (or without) their previous state.  The
synthetic traces model *planned* sessions; the :class:`ChurnInjector`
adds the unplanned part: seeded per-peer crash processes that force a
peer offline mid-session for an exponentially distributed outage and
then rejoin it, exercising exactly the paths a real restart hits:

* while down, the peer is invisible to the choker, the PSS, and gossip
  (the host simulator consults :attr:`ChurnInjector.down` from its
  ``is_online``);
* on rejoin, the peer **re-registers** with the peer-sampling service at
  the rejoin time (a late (re)join must not be bootstrapped as the
  stalest entry everywhere — the BuddyCast freshness bugfix);
* with probability ``churn_wipe_prob`` the restart is *hard*: the
  peer's in-memory gossip state is lost, modeled by wiping its
  subjective shared history (``forget_reporter`` for every reporter) so
  it must re-learn the network from subsequent gossip.

Event accounting runs entirely on the injector's own RNG stream
(``faults.churn``) and its own engine events; with ``churn_rate == 0``
the injector is simply not constructed, so default runs schedule no
extra events and stay byte-identical.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, List, Optional, Set

from repro.faults.channel import FaultConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream

__all__ = ["ChurnInjector"]

PeerId = Hashable

DAY = 86400.0


class ChurnInjector:
    """Seeded per-peer crash/rejoin processes.

    Parameters
    ----------
    config:
        Fault knobs; only the ``churn_*`` fields are consulted.
    engine:
        The discrete-event simulator that owns the clock.
    rng:
        The injector's private random stream (``faults.churn``).
    peers:
        The peer population (iterated in sorted order for deterministic
        initial draws).
    horizon:
        Simulation end time; crash events past it are not scheduled.
    on_down:
        Optional callback ``(peer, now)`` fired when a peer crashes.
    on_rejoin:
        Optional callback ``(peer, now, wiped)`` fired when a peer
        rejoins; ``wiped`` tells the host whether the restart lost the
        peer's gossip state (the host performs the actual wipe and PSS
        re-registration so the injector stays simulator-agnostic).
    """

    def __init__(
        self,
        config: FaultConfig,
        engine: Simulator,
        rng: RngStream,
        peers: Iterable[PeerId],
        horizon: float,
        on_down: Optional[Callable[[PeerId, float], None]] = None,
        on_rejoin: Optional[Callable[[PeerId, float, bool], None]] = None,
    ) -> None:
        config.validate()
        if config.churn_rate <= 0:
            raise ValueError("ChurnInjector requires churn_rate > 0")
        self.config = config
        self._engine = engine
        self._rng = rng
        self._horizon = float(horizon)
        self._on_down = on_down
        self._on_rejoin = on_rejoin
        #: Peers currently forced offline by a churn outage.
        self.down: Set[PeerId] = set()
        #: Telemetry: crash events fired / hard (state-losing) restarts.
        self.crashes = 0
        self.wipes = 0
        self._mean_gap = DAY / config.churn_rate
        for peer in sorted(peers, key=repr):
            self._schedule_next(peer, 0.0)

    # ------------------------------------------------------------------
    def is_down(self, peer: PeerId) -> bool:
        """Whether ``peer`` is currently inside a churn outage."""
        return peer in self.down

    def _schedule_next(self, peer: PeerId, now: float) -> None:
        gap = self._rng.exponential(self._mean_gap)
        t = now + gap
        if t <= self._horizon:
            self._engine.schedule_at(t, lambda p=peer: self._crash(p), label="churn-down")

    def _crash(self, peer: PeerId) -> None:
        now = self._engine.now
        # Draw the outage shape unconditionally so the stream's draw
        # sequence depends only on the event order, not on peer state.
        downtime = self._rng.exponential(self.config.churn_downtime)
        wiped = self._rng.bernoulli(self.config.churn_wipe_prob)
        if peer not in self.down:
            self.crashes += 1
            if wiped:
                self.wipes += 1
            self.down.add(peer)
            if self._on_down is not None:
                self._on_down(peer, now)
            self._engine.schedule_at(
                min(now + downtime, self._horizon),
                lambda p=peer, w=wiped: self._rejoin(p, w),
                label="churn-rejoin",
            )
        self._schedule_next(peer, now)

    def _rejoin(self, peer: PeerId, wiped: bool) -> None:
        now = self._engine.now
        self.down.discard(peer)
        if self._on_rejoin is not None:
            self._on_rejoin(peer, now, wiped)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ChurnInjector rate={self.config.churn_rate}/day "
            f"crashes={self.crashes} wipes={self.wipes} down={len(self.down)}>"
        )
