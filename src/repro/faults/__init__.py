"""Fault injection for the gossip plane.

Three cooperating pieces (see DESIGN.md §9 for the full model):

:mod:`repro.faults.channel`
    :class:`FaultConfig` (the knobs) and :class:`ChannelModel` — seeded
    per-message loss, duplication, bounded random delay/reordering, and
    a connectability matrix, with ``net.*`` observability.
:mod:`repro.faults.churn`
    :class:`ChurnInjector` — abrupt per-peer crash/rejoin processes that
    drive the ``forget_reporter`` / PSS re-registration paths.
:mod:`repro.faults.audit`
    The invariant auditor: under *any* fault schedule the subjective
    graph stays within the ground-truth envelope and reputations stay
    in (−1, 1).

Everything is default-off: a null :class:`FaultConfig` means the layer
is never constructed, keeping fault-free runs byte-identical to builds
without it.
"""

from repro.faults.audit import audit_node, audit_simulation, max_honest_claim
from repro.faults.channel import MAX_COPIES, ChannelModel, FaultConfig
from repro.faults.churn import ChurnInjector

__all__ = [
    "FaultConfig",
    "ChannelModel",
    "ChurnInjector",
    "MAX_COPIES",
    "audit_node",
    "audit_simulation",
    "max_honest_claim",
]
