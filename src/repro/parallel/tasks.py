"""Sweep tasks: the picklable unit of parallel experiment execution.

A :class:`SweepTask` names one independent simulation unit — one
``(experiment, parameter point, seed)`` triple — carrying everything a
worker process needs to execute it from scratch.  Executors live in a
registry keyed by ``experiment`` and import their experiment modules
lazily, so this module stays import-light and cycle-free (experiment
modules import :mod:`repro.parallel` for the task type).

Determinism contract
--------------------
A task's result is a pure function of its spec: the executor rebuilds the
scenario/simulation from the task's parameters and seed, and every random
stream inside derives from that seed via :class:`~repro.sim.rng
.RngRegistry` (per-task derivation: :meth:`~repro.sim.rng.RngRegistry
.task_seed`).  Which worker runs the task, and in what order, therefore
cannot influence the payload — the property the bit-identical merge of
:mod:`repro.parallel.runner` rests on.

Counter truthfulness
--------------------
:func:`execute_task` snapshots the process-wide maxflow kernel counters
around the run and ships the delta in the :class:`TaskResult`, so the
parent process can fold worker-side kernel work back into its own
counters (:func:`repro.graph.maxflow.merge_kernel_invocations`).  When a
live metrics registry is supplied the final snapshot rides along the
same way for :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional

from repro.graph.maxflow import kernel_invocations_delta, snapshot_kernel_invocations
from repro.obs import NULL_OBS, Observability

__all__ = [
    "SweepTask",
    "TaskResult",
    "EXECUTORS",
    "register_executor",
    "execute_task",
    "fig1_task",
    "fig4_task",
    "whitewash_tasks",
    "scalability_task",
]


@dataclass(frozen=True)
class SweepTask:
    """One independent simulation unit of a sweep.

    Attributes
    ----------
    task_id:
        Stable unique id; the merge key.  Results are merged by id/order,
        never by completion time, so merging is order-independent.
    experiment:
        Executor registry key (``"fig2_policy"``, ``"fig3_point"``, ...).
    params:
        Executor-specific knobs.  Must be picklable; may embed a
        :class:`~repro.experiments.scenario.ScenarioConfig`.
    seed:
        The task's root seed (recorded for the manifest; the scenario
        object embedded in ``params`` carries the seed the simulation
        actually consumes).
    profile:
        Scenario profile tag, for manifests and reports.
    attempt:
        Execution attempt (0 = first try); the runner bumps it on retry.
    """

    task_id: str
    experiment: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    profile: Optional[str] = None
    attempt: int = 0

    def with_attempt(self, attempt: int) -> "SweepTask":
        return replace(self, attempt=attempt)


@dataclass
class TaskResult:
    """What one executed task sends home.

    ``kernel_delta`` and ``metrics`` let the parent keep process-wide
    counters and the run manifest truthful under multi-process fan-out;
    ``worker_pid`` / ``elapsed_s`` / ``attempt`` feed the manifest's
    worker-partition record.
    """

    task_id: str
    payload: Any
    kernel_delta: Dict[str, int] = field(default_factory=dict)
    metrics: Optional[Dict[str, dict]] = None
    worker_pid: int = 0
    elapsed_s: float = 0.0
    attempt: int = 0
    #: Convergence time-series snapshots recorded by this task's
    #: simulations (``TimeSeriesRecorder.to_dict`` dicts), when the
    #: worker ran with a timeseries config.
    timeseries: Optional[List[dict]] = None
    #: Worker profiler snapshot (phases/events/kernels), when profiling.
    profile: Optional[Dict[str, Any]] = None
    #: Dissemination snapshots (``DisseminationRecorder.to_dict`` dicts)
    #: recorded by this task's simulations, when the worker ran with a
    #: dissemination config.
    dissemination: Optional[List[dict]] = None


# ----------------------------------------------------------------------
# Executor registry
# ----------------------------------------------------------------------
Executor = Callable[[SweepTask, Observability], Any]

EXECUTORS: Dict[str, Executor] = {}


def register_executor(name: str) -> Callable[[Executor], Executor]:
    """Register an executor under ``name`` (decorator form)."""

    def deco(fn: Executor) -> Executor:
        EXECUTORS[name] = fn
        return fn

    return deco


@register_executor("fig1")
def _exec_fig1(task: SweepTask, obs: Observability) -> Any:
    from repro.experiments.fig1 import run_fig1

    return run_fig1(task.params["scenario"], obs=obs)


@register_executor("fig2_policy")
def _exec_fig2_policy(task: SweepTask, obs: Observability) -> Any:
    from repro.experiments.fig2 import run_fig2_policy

    p = task.params
    return run_fig2_policy(p["scenario"], p["policy"], p.get("delta"), obs=obs)


@register_executor("fig3_point")
def _exec_fig3_point(task: SweepTask, obs: Observability) -> Any:
    from repro.experiments.fig3 import run_fig3_point

    p = task.params
    return run_fig3_point(p["scenario"], p["kind"], p["pct"], p["delta"], obs=obs)


@register_executor("fig4")
def _exec_fig4(task: SweepTask, obs: Observability) -> Any:
    from repro.deployment.network import DeploymentParams
    from repro.experiments.fig4 import run_fig4

    p = task.params
    return run_fig4(
        DeploymentParams(num_peers=p["peers"]), seed=task.seed, obs=obs
    )


@register_executor("fault_point")
def _exec_fault_point(task: SweepTask, obs: Observability) -> Any:
    from repro.experiments.faults import run_fault_point

    p = task.params
    return run_fault_point(
        p["scenario"], p["faults"], delta=p["delta"],
        top_k=p.get("top_k", 0), obs=obs, engine=p.get("engine"),
    )


@register_executor("whitewash")
def _exec_whitewash(task: SweepTask, obs: Observability) -> Any:
    from repro.experiments.whitewash import run_whitewash

    return run_whitewash(task.params["kind"], seed=task.seed)


@register_executor("scalability")
def _exec_scalability(task: SweepTask, obs: Observability) -> Any:
    from repro.experiments.scalability import run_scalability

    p = task.params
    return run_scalability(
        sizes=tuple(p["sizes"]),
        seed=task.seed,
        backend=p.get("backend", "dict"),
    )


# -- test/bench fixtures (cheap, deterministic, crash/hang injectable) --
@register_executor("_echo")
def _exec_echo(task: SweepTask, obs: Observability) -> Any:
    """Return the params verbatim (plumbing and determinism tests)."""
    return dict(task.params)


@register_executor("_crash")
def _exec_crash(task: SweepTask, obs: Observability) -> Any:
    """Die without cleanup on the first attempt (crash-isolation tests).

    ``os._exit`` bypasses Python teardown, simulating a segfaulting or
    OOM-killed worker; the retry (attempt > 0) succeeds.
    """
    if task.attempt < int(task.params.get("crash_attempts", 1)):
        os._exit(17)
    return {"survived": True, "attempt": task.attempt}


@register_executor("_sleep")
def _exec_sleep(task: SweepTask, obs: Observability) -> Any:
    """Sleep (timeout tests); sleeps only on attempts < hang_attempts."""
    if task.attempt < int(task.params.get("hang_attempts", 99)):
        time.sleep(float(task.params["seconds"]))
    return {"slept": True, "attempt": task.attempt}


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute_task(
    task: SweepTask,
    obs: Optional[Observability] = None,
    collect_metrics: bool = False,
    timeseries=None,
    collect_profile: bool = False,
    dissemination=None,
) -> TaskResult:
    """Execute one task in this process and wrap the payload.

    The ``collect_*``/``timeseries``/``dissemination`` knobs form the
    worker path: when any is set, the task runs against a fresh local
    bundle (a new registry / profiler / collector mirroring the parent's
    enabled legs) and ships the snapshots home with the result, to be
    merged in task order.  Otherwise the provided ``obs`` (e.g. the
    parent's own bundle, on the inline path) is threaded straight
    through.  ``timeseries`` is the parent's :class:`~repro.obs
    .timeseries.TimeSeriesConfig` and ``dissemination`` the parent's
    :class:`~repro.obs.dissemination.DisseminationConfig` (``None`` for
    off).
    """
    collect = (
        collect_metrics
        or timeseries is not None
        or collect_profile
        or dissemination is not None
    )
    if collect:
        from repro.obs import (
            NULL_DISSEMINATION,
            NULL_METRICS,
            NULL_PROFILER,
            NULL_TIMESERIES,
            DisseminationCollector,
            MetricsRegistry,
            Profiler,
            TimeSeriesCollector,
        )

        obs = Observability(
            metrics=MetricsRegistry() if collect_metrics else NULL_METRICS,
            timeseries=(
                TimeSeriesCollector(timeseries)
                if timeseries is not None
                else NULL_TIMESERIES
            ),
            profiler=Profiler() if collect_profile else NULL_PROFILER,
            dissemination=(
                DisseminationCollector(dissemination)
                if dissemination is not None
                else NULL_DISSEMINATION
            ),
        )
    elif obs is None:
        obs = NULL_OBS
    if obs.timeseries.enabled:
        obs.timeseries.begin_task(task.task_id)
    if obs.dissemination.enabled:
        obs.dissemination.begin_task(task.task_id)
    executor = EXECUTORS.get(task.experiment)
    if executor is None:
        raise KeyError(f"no executor registered for experiment {task.experiment!r}")
    baseline = snapshot_kernel_invocations()
    t0 = time.perf_counter()
    if obs.profiler.enabled:
        from repro.obs.profile import activate

        with activate(obs.profiler):
            payload = executor(task, obs)
    else:
        payload = executor(task, obs)
    elapsed = time.perf_counter() - t0
    return TaskResult(
        task_id=task.task_id,
        payload=payload,
        kernel_delta=kernel_invocations_delta(baseline),
        # Reservoirs ride along so the parent's merged quantiles are real
        # (exact in the complete-reservoir regime; see Histogram).
        metrics=obs.metrics.snapshot(include_reservoir=True)
        if collect_metrics
        else None,
        worker_pid=os.getpid(),
        elapsed_s=elapsed,
        attempt=task.attempt,
        timeseries=obs.timeseries.series() if collect and obs.timeseries.enabled else None,
        profile=obs.profiler.snapshot() if collect and obs.profiler.enabled else None,
        dissemination=(
            obs.dissemination.series()
            if collect and obs.dissemination.enabled
            else None
        ),
    )


# ----------------------------------------------------------------------
# Task builders for single-run experiments (multi-run builders live in
# their experiment modules: fig2_tasks / fig3_tasks).
# ----------------------------------------------------------------------
def fig1_task(scenario) -> SweepTask:
    """Figure 1 as a single sweep task."""
    return SweepTask(
        task_id="fig1",
        experiment="fig1",
        params={"scenario": scenario},
        seed=scenario.seed,
        profile=scenario.name,
    )


def fig4_task(peers: int, seed: int) -> SweepTask:
    """Figure 4 (deployment crawl) as a single sweep task."""
    return SweepTask(
        task_id=f"fig4/{peers}p",
        experiment="fig4",
        params={"peers": int(peers)},
        seed=int(seed),
        profile=None,
    )


def whitewash_tasks(seed: int, kinds=("trusted", "static", "adaptive")):
    """One task per stranger policy of the whitewashing assessment."""
    return [
        SweepTask(
            task_id=f"whitewash/{kind}",
            experiment="whitewash",
            params={"kind": kind},
            seed=int(seed),
        )
        for kind in kinds
    ]


def scalability_task(sizes, seed: int, backend: str = "dict") -> SweepTask:
    """The scalability assessment as one task (its sizes grow one view
    incrementally, so the experiment is internally sequential).  ``backend``
    picks the subjective-graph storage; results are bit-identical across
    backends, so it only changes the measured costs."""
    return SweepTask(
        task_id="scalability",
        experiment="scalability",
        params={"sizes": tuple(int(s) for s in sizes), "backend": backend},
        seed=int(seed),
    )
