"""The parallel sweep runner: multi-process fan-out, deterministic merge.

The paper's evaluation grid is embarrassingly parallel — every sweep
point is an independent, fully seeded simulation — so the runner simply
fans :class:`~repro.parallel.tasks.SweepTask` units out to a process pool
and merges the results back **by task order**, never by completion
order.  Because each task's payload is a pure function of its spec (see
:mod:`repro.parallel.tasks`), the merged output is bit-identical to a
serial run at any ``--jobs`` level.

Scheduling and robustness:

* **Inline fast path** — ``jobs <= 1`` executes tasks in-process with
  the parent's own observability bundle: exactly the pre-parallel code
  path, byte for byte.
* **Chunked scheduling** — at most ``2 x jobs`` tasks are in flight at
  once; further tasks are submitted as results drain, bounding queued
  pickled results and keeping per-task timeouts meaningful.
* **Per-task timeout, one retry** — a task that exceeds ``timeout_s``
  (measured from submission) or whose worker dies is retried up to
  ``retries`` times; the pool is rebuilt after a timeout or crash.  A
  dying worker therefore fails (at most) its own task, not the sweep.
* **Truthful counters** — each worker ships home its maxflow kernel
  counter delta and (when the parent collects metrics) its metrics
  snapshot; the parent folds both in, so manifests report the same
  totals a serial run would.  Timeseries recordings and profiler
  snapshots ride the same channel and merge in task order.
* **Live monitoring** — the pool writes best-effort heartbeat files
  into a spool directory (:mod:`repro.obs.monitor`) for ``repro
  monitor``; the spool never feeds back into results.

Tracing cannot cross the process boundary (one JSONL file, one emitter),
so a live tracer forces the inline path; the CLI surfaces a notice.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.graph.maxflow import merge_kernel_invocations
from repro.obs import NULL_OBS, Observability
from repro.obs.monitor import (
    SweepMonitorWriter,
    resolve_monitor_dir,
    write_worker_heartbeat,
)
from repro.parallel.tasks import SweepTask, TaskResult, execute_task

__all__ = ["ParallelRunner", "SweepError", "run_sweep"]

#: Poll interval while waiting with an active per-task timeout.
_POLL_S = 0.25


class SweepError(RuntimeError):
    """A sweep finished with permanently failed tasks.

    Attributes
    ----------
    failures:
        ``[(task, reason), ...]`` for every task that exhausted its
        retries.
    results:
        The :class:`TaskResult` objects of the tasks that did complete,
        keyed by position in the submitted task list.
    """

    def __init__(self, failures: List[Tuple[SweepTask, str]], results: Dict[int, TaskResult]):
        self.failures = failures
        self.results = results
        ids = ", ".join(t.task_id for t, _ in failures)
        super().__init__(
            f"{len(failures)} sweep task(s) failed after retries: {ids}"
        )


def _worker_run(
    task: SweepTask,
    with_metrics: bool,
    ts_config=None,
    with_profile: bool = False,
    heartbeat_dir: Optional[str] = None,
    diss_config=None,
) -> TaskResult:
    """Module-level worker entry point (must be picklable by the pool)."""
    if heartbeat_dir is not None:
        write_worker_heartbeat(heartbeat_dir, task.task_id, "running")
    result = execute_task(
        task,
        collect_metrics=with_metrics,
        timeseries=ts_config,
        collect_profile=with_profile,
        dissemination=diss_config,
    )
    if heartbeat_dir is not None:
        write_worker_heartbeat(heartbeat_dir, task.task_id, "done")
    return result


@dataclass
class _Inflight:
    index: int
    task: SweepTask
    attempt: int
    submitted: float


class ParallelRunner:
    """Fans sweep tasks out to worker processes and merges deterministically.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (the default) is the exact serial
        code path — no pool, no pickling, parent observability threaded
        straight through.
    timeout_s:
        Per-task wall-clock allowance measured from submission; ``None``
        disables the guard.  Should comfortably exceed one task's
        runtime — it is a hang detector, not a scheduler.
    retries:
        How many times a failed (crashed / timed-out / raising) task is
        re-submitted before the sweep fails.
    obs:
        The parent observability bundle.  Live metrics turn on worker
        snapshot collection and merging; a live timeseries collector or
        profiler likewise rides along (workers record against fresh local
        instances, shipped home and merged in task order); a live tracer
        forces inline execution.
    mp_start:
        Multiprocessing start method; ``fork`` where available (cheap,
        inherits the warm interpreter), else the platform default.
    monitor_dir:
        Spool directory for live sweep monitoring (``repro monitor``).
        ``None`` uses the default per-user directory; the writer is
        best-effort and never affects results.
    """

    def __init__(
        self,
        jobs: int = 1,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        obs: Optional[Observability] = None,
        mp_start: Optional[str] = None,
        monitor_dir: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = int(jobs)
        self.timeout_s = timeout_s
        self.retries = int(retries)
        self.obs = obs if obs is not None else NULL_OBS
        self.mp_start = mp_start
        self.monitor_dir = monitor_dir
        #: Partition/bookkeeping record of the most recent :meth:`run`
        #: (feeds the run manifest's ``parallel`` note).
        self.last_run_info: Dict[str, Any] = {}
        #: One info record per completed :meth:`run`, in call order.
        self.run_history: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[SweepTask]) -> List[TaskResult]:
        """Execute every task; returns results in task order.

        Raises :class:`SweepError` if any task fails permanently.
        """
        tasks = list(tasks)
        if not tasks:
            self._set_info({"mode": "inline", "jobs": 1, "tasks": []})
            return []
        forced_inline = self.jobs > 1 and self.obs.tracer.enabled
        if self.jobs <= 1 or forced_inline:
            return self._run_inline(tasks, forced_inline)
        return self._run_pool(tasks)

    # ------------------------------------------------------------------
    def _set_info(self, info: Dict[str, Any]) -> None:
        self.last_run_info = info
        self.run_history.append(info)

    def _run_inline(self, tasks: List[SweepTask], forced: bool) -> List[TaskResult]:
        results = [execute_task(task, obs=self.obs) for task in tasks]
        self._set_info({
            "mode": "inline",
            "jobs": 1,
            "forced_inline_tracing": forced,
            "tasks": [
                {
                    "task_id": r.task_id,
                    "worker_pid": r.worker_pid,
                    "elapsed_s": round(r.elapsed_s, 6),
                    "attempt": r.attempt,
                }
                for r in results
            ],
        })
        return results

    # ------------------------------------------------------------------
    def _make_executor(self) -> ProcessPoolExecutor:
        if self.mp_start is not None:
            ctx = get_context(self.mp_start)
        else:
            try:
                ctx = get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = get_context()
        return ProcessPoolExecutor(max_workers=self.jobs, mp_context=ctx)

    def _run_pool(self, tasks: List[SweepTask]) -> List[TaskResult]:
        with_metrics = self.obs.metrics.enabled
        ts_config = (
            self.obs.timeseries.config if self.obs.timeseries.enabled else None
        )
        with_profile = self.obs.profiler.enabled
        diss_config = (
            self.obs.dissemination.config
            if self.obs.dissemination.enabled
            else None
        )
        heartbeat_dir = str(resolve_monitor_dir(self.monitor_dir))
        monitor = SweepMonitorWriter(heartbeat_dir)
        monitor.start(total=len(tasks), jobs=self.jobs)
        results: Dict[int, TaskResult] = {}
        failures: List[Tuple[SweepTask, str]] = []
        work = deque((i, task, task.attempt) for i, task in enumerate(tasks))
        inflight: Dict[Any, _Inflight] = {}
        executor: Optional[ProcessPoolExecutor] = None
        max_inflight = self.jobs * 2
        n_retries = 0
        n_timeouts = 0
        n_pool_rebuilds = 0

        def fail_or_retry(index: int, task: SweepTask, attempt: int, reason: str) -> None:
            nonlocal n_retries
            if attempt < self.retries:
                n_retries += 1
                work.append((index, task, attempt + 1))
            else:
                failures.append((task, reason))

        try:
            while work or inflight:
                while work and len(inflight) < max_inflight:
                    index, task, attempt = work.popleft()
                    if executor is None:
                        executor = self._make_executor()
                    fut = executor.submit(
                        _worker_run,
                        task.with_attempt(attempt),
                        with_metrics,
                        ts_config,
                        with_profile,
                        heartbeat_dir,
                        diss_config,
                    )
                    inflight[fut] = _Inflight(index, task, attempt, time.monotonic())
                wait_timeout = None if self.timeout_s is None else _POLL_S
                done, _ = futures_wait(
                    set(inflight), timeout=wait_timeout, return_when=FIRST_COMPLETED
                )
                rebuild = False
                for fut in done:
                    item = inflight.pop(fut)
                    try:
                        results[item.index] = fut.result()
                        monitor.task_done(item.task.task_id, len(results))
                    except BrokenExecutor:
                        rebuild = True
                        fail_or_retry(
                            item.index, item.task, item.attempt,
                            "worker process died (pool broken)",
                        )
                    except Exception as exc:  # noqa: BLE001 - task-level failure
                        fail_or_retry(
                            item.index, item.task, item.attempt,
                            f"{type(exc).__name__}: {exc}",
                        )
                if self.timeout_s is not None:
                    now = time.monotonic()
                    for fut, item in list(inflight.items()):
                        if now - item.submitted > self.timeout_s:
                            # The worker may still be running; stop waiting
                            # for it, rebuild the pool, retry elsewhere.
                            del inflight[fut]
                            fut.cancel()
                            n_timeouts += 1
                            rebuild = True
                            fail_or_retry(
                                item.index, item.task, item.attempt,
                                f"timeout after {self.timeout_s}s",
                            )
                if rebuild and executor is not None:
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = None
                    n_pool_rebuilds += 1
                    # Futures cancelled before starting surface as
                    # CancelledError in the next done-set and are retried.
        finally:
            if executor is not None:
                # Normal teardown waits for workers to exit cleanly; the
                # no-wait shutdown is reserved for rebuilds after a hang.
                executor.shutdown(wait=True, cancel_futures=True)

        if failures:
            monitor.finish("failed")
            raise SweepError(failures, results)

        ordered = [results[i] for i in range(len(tasks))]
        # Deterministic merge: fold worker-side counters/metrics home in
        # task order (not completion order), so repeated runs agree.
        for result in ordered:
            if result.kernel_delta:
                merge_kernel_invocations(result.kernel_delta)
            if with_metrics and result.metrics:
                self.obs.metrics.merge_snapshot(result.metrics)
            if ts_config is not None and result.timeseries:
                self.obs.timeseries.merge(result.timeseries)
            if with_profile and result.profile:
                self.obs.profiler.merge_snapshot(result.profile)
            if diss_config is not None and result.dissemination:
                self.obs.dissemination.merge(result.dissemination)
        monitor.finish("done")
        self._set_info({
            "mode": "pool",
            "jobs": self.jobs,
            "retries": n_retries,
            "timeouts": n_timeouts,
            "pool_rebuilds": n_pool_rebuilds,
            "tasks": [
                {
                    "task_id": r.task_id,
                    "worker_pid": r.worker_pid,
                    "elapsed_s": round(r.elapsed_s, 6),
                    "attempt": r.attempt,
                }
                for r in ordered
            ],
        })
        return ordered


def run_sweep(
    tasks: Sequence[SweepTask],
    runner: Optional[ParallelRunner] = None,
    obs: Optional[Observability] = None,
) -> List[Any]:
    """Execute tasks and return their payloads in task order.

    Without a runner this is the plain serial path: each task executes
    in-process against ``obs`` (the parent bundle), exactly as the
    experiment loops did before the runner existed.  With a runner, the
    runner's configuration (including its ``obs``) governs execution.
    """
    if runner is None:
        return [execute_task(task, obs=obs).payload for task in tasks]
    return [result.payload for result in runner.run(tasks)]
