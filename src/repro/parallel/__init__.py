"""Parallel sweep execution: process-pool fan-out with bit-identical merge.

The evaluation grid of the paper — policy conditions, disobedience
percentages, deployment sizes — decomposes into independent
``(experiment, parameter point, seed)`` units.  This package runs those
units across worker processes and merges the results deterministically:

:mod:`repro.parallel.tasks`
    :class:`SweepTask` (the picklable unit spec), :class:`TaskResult`,
    the executor registry, and task builders for single-run experiments.
:mod:`repro.parallel.runner`
    :class:`ParallelRunner` (``--jobs N``; ``1`` = the exact serial code
    path), chunked scheduling, per-task timeout with retry, crash
    isolation, and the task-order merge of payloads, kernel counters,
    and metrics snapshots.

See ``DESIGN.md`` §8 for the determinism contract and its limits.
"""

from repro.parallel.runner import ParallelRunner, SweepError, run_sweep
from repro.parallel.tasks import (
    EXECUTORS,
    SweepTask,
    TaskResult,
    execute_task,
    fig1_task,
    fig4_task,
    register_executor,
    scalability_task,
    whitewash_tasks,
)

__all__ = [
    "ParallelRunner",
    "SweepError",
    "run_sweep",
    "SweepTask",
    "TaskResult",
    "EXECUTORS",
    "register_executor",
    "execute_task",
    "fig1_task",
    "fig4_task",
    "whitewash_tasks",
    "scalability_task",
]
