"""Live sweep monitoring over a file-based spool (no IPC).

A ``--jobs N`` sweep can run for hours with nothing on the terminal.
This module makes its progress observable *without touching the result
path*: the parent runner and each worker write tiny JSON heartbeat files
into a spool directory, and ``repro monitor`` renders them from any
other terminal.  Everything is best-effort — every write is wrapped in
``try/except OSError`` and no simulation state ever depends on the spool
— so the runner's bit-identity and crash-recovery guarantees are
untouched.

Spool layout (one directory per concurrently-monitored sweep)::

    sweep.json          parent: totals, done count, jobs, last task
    worker-<pid>.json   per worker process: current task, state, time

The default spool is a fixed per-user directory under the system temp
dir, so ``repro monitor`` with no argument finds the most recent sweep;
point ``--monitor-dir`` (or ``REPRO_MONITOR_DIR``) somewhere else to
keep concurrent sweeps apart.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Union

__all__ = [
    "MONITOR_SCHEMA",
    "SweepMonitorWriter",
    "default_monitor_dir",
    "read_status",
    "render_status",
    "watch",
    "write_worker_heartbeat",
]

MONITOR_SCHEMA = "bartercast-monitor/v1"
SWEEP_FILENAME = "sweep.json"

#: Seconds without a heartbeat before a running worker is flagged stalled.
DEFAULT_STALL_AFTER = 120.0


def default_monitor_dir() -> Path:
    """Fixed per-user spool directory under the system temp dir."""
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / f"repro-monitor-{uid}"


def resolve_monitor_dir(explicit: Optional[Union[str, Path]] = None) -> Path:
    """``explicit`` flag > ``REPRO_MONITOR_DIR`` env > per-user default."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get("REPRO_MONITOR_DIR")
    if env:
        return Path(env)
    return default_monitor_dir()


def _write_json(path: Path, doc: dict) -> None:
    """Atomic best-effort JSON write (tmp + rename); failures are silent."""
    try:
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(doc), encoding="utf-8")
        os.replace(tmp, path)
    except OSError:
        pass


class SweepMonitorWriter:
    """Parent-side spool writer for one :class:`ParallelRunner` pool run."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self._started = time.time()
        self._doc: dict = {}

    def start(self, total: int, jobs: int, command: str = "sweep") -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            # A fresh sweep owns the spool: drop stale worker heartbeats.
            for stale in self.directory.glob("worker-*.json"):
                stale.unlink(missing_ok=True)
        except OSError:
            pass
        self._started = time.time()
        self._doc = {
            "schema": MONITOR_SCHEMA,
            "pid": os.getpid(),
            "command": command,
            "total": total,
            "done": 0,
            "jobs": jobs,
            "status": "running",
            "started_unix": self._started,
            "updated_unix": self._started,
            "last_task": None,
        }
        _write_json(self.directory / SWEEP_FILENAME, self._doc)

    def task_done(self, task_id: str, done: int) -> None:
        self._doc.update(done=done, last_task=task_id, updated_unix=time.time())
        _write_json(self.directory / SWEEP_FILENAME, self._doc)

    def finish(self, status: str = "done") -> None:
        self._doc.update(status=status, updated_unix=time.time())
        _write_json(self.directory / SWEEP_FILENAME, self._doc)


#: Per-worker-process completed-task count (workers are single-threaded).
_WORKER_TASKS_DONE = 0


def write_worker_heartbeat(
    directory: Union[str, Path], task_id: str, state: str
) -> None:
    """Worker-side heartbeat: ``state`` is ``"running"`` or ``"done"``."""
    global _WORKER_TASKS_DONE
    if state == "done":
        _WORKER_TASKS_DONE += 1
    pid = os.getpid()
    _write_json(
        Path(directory) / f"worker-{pid}.json",
        {
            "schema": MONITOR_SCHEMA,
            "pid": pid,
            "task_id": task_id,
            "state": state,
            "tasks_done": _WORKER_TASKS_DONE,
            "time_unix": time.time(),
        },
    )


def read_status(directory: Union[str, Path]) -> Optional[dict]:
    """Load ``{"sweep": ..., "workers": [...]}``; ``None`` if no sweep."""
    directory = Path(directory)
    try:
        sweep = json.loads((directory / SWEEP_FILENAME).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    workers: List[dict] = []
    for path in sorted(directory.glob("worker-*.json")):
        try:
            workers.append(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, ValueError):
            continue
    return {"sweep": sweep, "workers": workers}


def _fmt_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def render_status(
    status: dict,
    now: Optional[float] = None,
    stall_after: float = DEFAULT_STALL_AFTER,
) -> str:
    """Human-readable one-screen rendering of :func:`read_status`."""
    now = time.time() if now is None else now
    sweep = status["sweep"]
    total = int(sweep.get("total") or 0)
    done = int(sweep.get("done") or 0)
    elapsed = max(0.0, now - float(sweep.get("started_unix") or now))
    pct = (100.0 * done / total) if total else 0.0
    line = (
        f"sweep {sweep.get('command', '?')}: {done}/{total} tasks ({pct:.0f}%)"
        f" · jobs {sweep.get('jobs', '?')} · {sweep.get('status', '?')}"
        f" · elapsed {_fmt_eta(elapsed)}"
    )
    if sweep.get("status") == "running" and 0 < done < total:
        eta = elapsed / done * (total - done)
        line += f" · ETA {_fmt_eta(eta)}"
    lines = [line]
    if sweep.get("last_task"):
        lines.append(f"  last finished: {sweep['last_task']}")
    for worker in status["workers"]:
        age = max(0.0, now - float(worker.get("time_unix") or now))
        state = worker.get("state", "?")
        entry = (
            f"  worker {worker.get('pid')}: {state} {worker.get('task_id')}"
            f" ({age:.1f}s ago, {worker.get('tasks_done', 0)} done)"
        )
        if state == "running" and age > stall_after:
            entry += "  ** STALLED? no heartbeat **"
        lines.append(entry)
    if not status["workers"]:
        lines.append("  (no worker heartbeats yet)")
    return "\n".join(lines)


def watch(
    directory: Union[str, Path],
    interval: float = 2.0,
    once: bool = False,
    stall_after: float = DEFAULT_STALL_AFTER,
    stream=None,
) -> int:
    """Poll the spool and print status until the sweep finishes.

    Returns a shell exit code (2 when no sweep was found at all).
    """
    stream = sys.stdout if stream is None else stream
    directory = Path(directory)
    seen = False
    while True:
        status = read_status(directory)
        if status is None:
            if once or seen:
                if not seen:
                    print(f"no sweep found in {directory}", file=stream)
                    return 2
                print("sweep spool vanished; stopping", file=stream)
                return 0
            print(f"waiting for a sweep in {directory} ...", file=stream)
        else:
            seen = True
            print(render_status(status, stall_after=stall_after), file=stream)
            if status["sweep"].get("status") != "running":
                return 0
        if once:
            return 0 if seen else 2
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0
