"""Observability: metrics, structured traces, and run manifests.

The subsystem has three legs, all default-off with null-object defaults
so an uninstrumented run pays (and changes) nothing:

:mod:`repro.obs.metrics`
    Counters, gauges, histograms with deterministic reservoir quantiles,
    and re-entrant timer context managers, behind a
    :class:`~repro.obs.metrics.MetricsRegistry`.
:mod:`repro.obs.trace`
    A JSONL span/event emitter with per-category deterministic sampling
    (:class:`~repro.obs.trace.TraceEmitter`).
:mod:`repro.obs.manifest`
    Run manifests capturing config, seed, code revision, per-phase wall
    time, and the final metrics snapshot
    (:class:`~repro.obs.manifest.ManifestBuilder`).
:mod:`repro.obs.provenance`
    Claim-lineage recording for the subjective shared history
    (:class:`~repro.obs.provenance.ProvenanceRecorder`), feeding
    :mod:`repro.obs.explain` and the ``repro explain`` subcommand.

An :class:`Observability` bundle threads both live legs through the
simulator stack; :data:`NULL_OBS` is the shared disabled bundle every
constructor defaults to.  None of the instrumentation consumes the
simulation's RNG streams, so an instrumented run is bit-identical to an
uninstrumented one (pinned by ``tests/test_obs.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    ManifestBuilder,
    describe,
    git_revision,
    read_manifest,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    Timer,
)
from repro.obs.dissemination import (
    DISSEMINATION_SCHEMA,
    NULL_DISSEMINATION,
    DisseminationCollector,
    DisseminationConfig,
    DisseminationRecorder,
    NullDisseminationCollector,
    render_attribution,
)
from repro.obs.provenance import (
    NULL_PROVENANCE,
    ClaimLineage,
    NullProvenanceRecorder,
    ProvenanceRecorder,
    provenance_totals_delta,
    snapshot_provenance_totals,
)
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    activate,
    set_active_profiler,
)
from repro.obs.timeseries import (
    NULL_TIMESERIES,
    TIMESERIES_SCHEMA,
    NullTimeSeriesCollector,
    TimeSeriesCollector,
    TimeSeriesConfig,
    TimeSeriesRecorder,
)
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTraceEmitter,
    TraceCategory,
    TraceEmitter,
    read_trace,
)

__all__ = [
    "Observability",
    "NULL_OBS",
    "make_observability",
    "parse_sample_spec",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "TraceEmitter",
    "TraceCategory",
    "NullTraceEmitter",
    "NULL_TRACER",
    "TRACE_SCHEMA",
    "read_trace",
    "ManifestBuilder",
    "MANIFEST_SCHEMA",
    "read_manifest",
    "describe",
    "git_revision",
    "ClaimLineage",
    "ProvenanceRecorder",
    "NullProvenanceRecorder",
    "NULL_PROVENANCE",
    "snapshot_provenance_totals",
    "provenance_totals_delta",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "activate",
    "set_active_profiler",
    "TimeSeriesCollector",
    "TimeSeriesConfig",
    "TimeSeriesRecorder",
    "NullTimeSeriesCollector",
    "NULL_TIMESERIES",
    "TIMESERIES_SCHEMA",
    "DisseminationCollector",
    "DisseminationConfig",
    "DisseminationRecorder",
    "NullDisseminationCollector",
    "NULL_DISSEMINATION",
    "DISSEMINATION_SCHEMA",
    "render_attribution",
]


@dataclass(frozen=True)
class Observability:
    """The bundle handed down through the simulator stack."""

    metrics: MetricsRegistry = field(default_factory=lambda: NULL_METRICS)
    tracer: TraceEmitter = field(default_factory=lambda: NULL_TRACER)
    timeseries: TimeSeriesCollector = field(default_factory=lambda: NULL_TIMESERIES)
    profiler: Profiler = field(default_factory=lambda: NULL_PROFILER)
    dissemination: DisseminationCollector = field(
        default_factory=lambda: NULL_DISSEMINATION
    )

    @property
    def enabled(self) -> bool:
        """Whether a hot-path leg (metrics or tracing) is live.

        The timeseries and profiler legs have their own attach points
        (periodic sampling events, phase hooks) and are checked via
        their own ``.enabled`` where they plug in.
        """
        return self.metrics.enabled or self.tracer.enabled

    def close(self) -> None:
        """Flush and close the tracer (other legs need no teardown)."""
        self.tracer.close()


#: The shared disabled bundle — the default for every constructor.
NULL_OBS = Observability(
    NULL_METRICS, NULL_TRACER, NULL_TIMESERIES, NULL_PROFILER, NULL_DISSEMINATION
)


def make_observability(
    metrics: bool = False,
    trace_path: Optional[Union[str, Path]] = None,
    trace_sample: Union[float, str, Dict[str, float], None] = 1.0,
    seed: int = 0,
    profile: bool = False,
    timeseries: Union[TimeSeriesConfig, float, None] = None,
    dissemination: Union[DisseminationConfig, bool, None] = None,
) -> Observability:
    """Construct the bundle the CLI flags describe.

    Parameters
    ----------
    metrics:
        Enable the metrics registry (``--metrics``).
    trace_path:
        Enable JSONL tracing to this path (``--trace PATH``).
    trace_sample:
        Either a global keep-rate, a ``{category: rate}`` dict, or a CLI
        spec string accepted by :func:`parse_sample_spec`
        (``--trace-sample``).
    seed:
        Seed of the deterministic trace-sampling streams.
    profile:
        Enable phase/kernel profiling (``--prof``).
    timeseries:
        Enable convergence time-series recording (``--timeseries``):
        a :class:`TimeSeriesConfig`, or a sim-time cadence in seconds
        (values ``<= 0`` mean "use the scenario's sample interval").
    dissemination:
        Enable causal dissemination recording (``--dissemination``):
        a :class:`DisseminationConfig`, or any truthy value for the
        default config.
    """
    if (
        not metrics
        and trace_path is None
        and not profile
        and timeseries is None
        and not dissemination
    ):
        return NULL_OBS
    registry: MetricsRegistry = MetricsRegistry() if metrics else NULL_METRICS
    tracer: TraceEmitter = NULL_TRACER
    if trace_path is not None:
        if isinstance(trace_sample, dict):
            default_rate, rates = 1.0, dict(trace_sample)
        elif isinstance(trace_sample, str):
            default_rate, rates = parse_sample_spec(trace_sample)
        else:
            default_rate, rates = float(trace_sample if trace_sample is not None else 1.0), {}
        tracer = TraceEmitter(
            trace_path, sample_rates=rates, default_rate=default_rate, seed=seed
        )
    if timeseries is None:
        collector: TimeSeriesCollector = NULL_TIMESERIES
    elif isinstance(timeseries, TimeSeriesConfig):
        collector = TimeSeriesCollector(timeseries)
    else:
        interval = float(timeseries)
        collector = TimeSeriesCollector(
            TimeSeriesConfig(interval_s=interval if interval > 0 else None)
        )
    if not dissemination:
        diss: DisseminationCollector = NULL_DISSEMINATION
    elif isinstance(dissemination, DisseminationConfig):
        diss = DisseminationCollector(dissemination)
    else:
        diss = DisseminationCollector()
    return Observability(
        metrics=registry,
        tracer=tracer,
        timeseries=collector,
        profiler=Profiler() if profile else NULL_PROFILER,
        dissemination=diss,
    )


def parse_sample_spec(spec: str) -> Tuple[float, Dict[str, float]]:
    """Parse a ``--trace-sample`` value.

    Accepts a bare rate (``"0.1"``, applied to every category) or a
    comma-separated list of ``category=rate`` pairs with an optional bare
    default (``"0.05,bt.transfer=0.01,sim.event=0"``).  Returns
    ``(default_rate, {category: rate})``.
    """
    default_rate = 1.0
    rates: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part:
            name, _, value = part.partition("=")
            name = name.strip()
            if not name:
                raise ValueError(f"empty category in sample spec {spec!r}")
            rates[name] = _parse_rate(value, spec)
        else:
            default_rate = _parse_rate(part, spec)
    return default_rate, rates


def _parse_rate(text: str, spec: str) -> float:
    try:
        rate = float(text)
    except ValueError:
        raise ValueError(f"bad sample rate {text!r} in spec {spec!r}") from None
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"sample rate {rate} out of [0, 1] in spec {spec!r}")
    return rate
