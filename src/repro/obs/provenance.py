"""Reputation provenance: where every subjective claim came from.

BarterCast reputations are *subjective*: ``R_i(j)`` depends on which
gossip messages reached *i*, from whom, and when.  The rest of the obs
stack can say *what* the score is (metrics) and *when* things happened
(traces); this module records *why a claim holds*: for every live claim
in a :class:`~repro.core.sharedhistory.SubjectiveSharedHistory`, a
compact lineage tuple

``(reporter, msg_id, value, reported_at, received_at, hops, superseded)``

* ``reporter`` — the peer whose message carried the claim;
* ``msg_id`` — the gossip message that delivered the live value (a
  per-sender sequence number stamped by
  :meth:`~repro.core.node.BarterCastNode.create_message` when provenance
  is on; falls back to ``(sender, created_at)`` for foreign messages);
* ``value`` — the claimed byte total (replaying the live lineage of an
  edge — max over reporters — reconstructs the materialized capacity
  exactly; pinned by ``tests/test_provenance.py``);
* ``reported_at`` — the message creation time (supersede key);
* ``received_at`` — the simulated delivery time (differs from
  ``reported_at`` under the :mod:`repro.faults` delay channel);
* ``hops`` — gossip distance of the information: BarterCast never
  forwards messages, so every gossiped claim is firsthand (``hops=1``);
  owner-incident edges come from private history (``hops=0``) and are
  synthesized at explain time, never stored here;
* ``superseded`` — how many earlier claims by the same reporter about
  the same edge this entry replaced (a freshness/stability signal).

Lineage is maintained through every mutation path of the store: newer
messages supersede (``superseded`` increments), equal-timestamp
redeliveries are ignored exactly like the value tie-break ignores them
(the view — and its lineage — stays independent of arrival order),
stale copies are dropped, and ``forget_reporter`` churn wipes remove
the lineage together with the claims.

Null-object discipline (PR 2): provenance is **off by default**.  The
shared :data:`NULL_PROVENANCE` recorder answers ``enabled = False`` and
every hot path guards on a cached boolean, so a provenance-off run
executes no recording code and is byte-identical to the seed behaviour
(pinned by ``tests/test_provenance.py``); the overhead of provenance-on
is measured by ``benchmarks/bench_reputation_cache.py``.

Like the maxflow kernel counters, the module keeps process-wide totals
(:data:`PROVENANCE_TOTALS`) so the CLI can report lineage activity of a
whole run without threading recorder handles out of every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping

__all__ = [
    "ClaimLineage",
    "ProvenanceRecorder",
    "NullProvenanceRecorder",
    "NULL_PROVENANCE",
    "PROVENANCE_TOTALS",
    "snapshot_provenance_totals",
    "provenance_totals_delta",
]

PeerId = Hashable

#: Process-wide lineage-event totals (mirrors the ``KERNEL_INVOCATIONS``
#: pattern of :mod:`repro.graph.maxflow`): every live recorder folds its
#: events in here so the CLI can attribute lineage activity to one run
#: via snapshot/delta without holding recorder references.
PROVENANCE_TOTALS: Dict[str, int] = {
    "claims_recorded": 0,
    "claims_superseded": 0,
    "redeliveries_ignored": 0,
    "stale_dropped": 0,
    "claims_forgotten": 0,
}


def snapshot_provenance_totals() -> Dict[str, int]:
    """A copy of the cumulative totals, for later deltas."""
    return dict(PROVENANCE_TOTALS)


def provenance_totals_delta(baseline: Mapping[str, int]) -> Dict[str, int]:
    """Per-event counts since ``baseline``; only non-zero deltas."""
    return {
        key: count - baseline.get(key, 0)
        for key, count in PROVENANCE_TOTALS.items()
        if count - baseline.get(key, 0)
    }


@dataclass(frozen=True)
class ClaimLineage:
    """Provenance of one live claim (see module docstring for fields)."""

    reporter: PeerId
    msg_id: Hashable
    value: float
    reported_at: float
    received_at: float
    hops: int = 1
    superseded: int = 0

    def to_json(self) -> dict:
        """JSON-safe rendering (peer ids / msg ids stringified as needed)."""
        return {
            "reporter": _json_safe(self.reporter),
            "msg_id": _json_safe(self.msg_id),
            "value": self.value,
            "reported_at": self.reported_at,
            "received_at": self.received_at,
            "hops": self.hops,
            "superseded": self.superseded,
        }


def _json_safe(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


class ProvenanceRecorder:
    """Counts lineage events and publishes them to the obs stack.

    One recorder is shared by every node of a simulation (lineage itself
    is stored per-claim inside each node's shared history; the recorder
    is the aggregation/emission point).  When the obs bundle has live
    metrics the recorder maintains ``prov.*`` counters; when tracing is
    live it emits sampled ``prov.claim`` events.  Neither leg is
    required — a bare ``ProvenanceRecorder()`` still counts locally and
    into :data:`PROVENANCE_TOTALS`.
    """

    enabled = True

    def __init__(self, obs=None) -> None:
        from repro.obs import NULL_OBS

        obs = obs if obs is not None else NULL_OBS
        self.claims_recorded = 0
        self.claims_superseded = 0
        self.redeliveries_ignored = 0
        self.stale_dropped = 0
        self.claims_forgotten = 0
        metrics = obs.metrics
        if metrics.enabled:
            self._m_recorded = metrics.counter("prov.claims_recorded")
            self._m_superseded = metrics.counter("prov.claims_superseded")
            self._m_redelivered = metrics.counter("prov.redeliveries_ignored")
            self._m_stale = metrics.counter("prov.stale_dropped")
            self._m_forgotten = metrics.counter("prov.claims_forgotten")
        else:
            self._m_recorded = None
            self._m_superseded = None
            self._m_redelivered = None
            self._m_stale = None
            self._m_forgotten = None
        tracer = obs.tracer
        self._tr_claim = tracer.category("prov.claim") if tracer.enabled else None

    # ------------------------------------------------------------------
    def record_claim(
        self, owner: PeerId, edge, reporter: PeerId, lineage, superseded: bool
    ) -> None:
        """A claim was applied (``superseded``: it replaced an older one).

        ``lineage`` is the raw ``(msg_id, received_at, superseded_count)``
        tuple the shared history stores on the claim — this method rides
        the gossip hot path, so it takes the cheap representation rather
        than a materialized :class:`ClaimLineage`.
        """
        self.claims_recorded += 1
        PROVENANCE_TOTALS["claims_recorded"] += 1
        if superseded:
            self.claims_superseded += 1
            PROVENANCE_TOTALS["claims_superseded"] += 1
        if self._m_recorded is not None:
            self._m_recorded.inc()
            if superseded:
                self._m_superseded.inc()
        cat = self._tr_claim
        if cat is not None and cat.sample():
            cat.emit_sampled(
                "supersede" if superseded else "record",
                sim_time=lineage[1],
                attrs={
                    "owner": owner,
                    "edge": list(edge),
                    "reporter": reporter,
                    "msg_id": _json_safe(lineage[0]),
                    "superseded": lineage[2],
                },
            )

    def record_redelivery(self, owner: PeerId, edge, reporter: PeerId) -> None:
        """An equal-timestamp redelivered copy was (correctly) ignored."""
        self.redeliveries_ignored += 1
        PROVENANCE_TOTALS["redeliveries_ignored"] += 1
        if self._m_redelivered is not None:
            self._m_redelivered.inc()

    def record_stale(self, owner: PeerId, edge, reporter: PeerId) -> None:
        """An out-of-order older copy was dropped."""
        self.stale_dropped += 1
        PROVENANCE_TOTALS["stale_dropped"] += 1
        if self._m_stale is not None:
            self._m_stale.inc()

    def record_forget(self, owner: PeerId, reporter: PeerId, removed: int) -> None:
        """``removed`` claims by ``reporter`` were wiped (churn path)."""
        if removed <= 0:
            return
        self.claims_forgotten += removed
        PROVENANCE_TOTALS["claims_forgotten"] += removed
        if self._m_forgotten is not None:
            self._m_forgotten.inc(removed)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """The lineage-event totals of this recorder (manifest section)."""
        return {
            "claims_recorded": self.claims_recorded,
            "claims_superseded": self.claims_superseded,
            "redeliveries_ignored": self.redeliveries_ignored,
            "stale_dropped": self.stale_dropped,
            "claims_forgotten": self.claims_forgotten,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ProvenanceRecorder recorded={self.claims_recorded} "
            f"superseded={self.claims_superseded}>"
        )


class NullProvenanceRecorder(ProvenanceRecorder):
    """The disabled recorder: every operation is a no-op."""

    enabled = False

    def __init__(self) -> None:  # pylint: disable=super-init-not-called
        self.claims_recorded = 0
        self.claims_superseded = 0
        self.redeliveries_ignored = 0
        self.stale_dropped = 0
        self.claims_forgotten = 0

    def record_claim(self, owner, edge, reporter, lineage, superseded) -> None:
        pass

    def record_redelivery(self, owner, edge, reporter) -> None:
        pass

    def record_stale(self, owner, edge, reporter) -> None:
        pass

    def record_forget(self, owner, reporter, removed) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullProvenanceRecorder>"


#: Shared disabled recorder — the default everywhere.
NULL_PROVENANCE = NullProvenanceRecorder()
