"""Human-readable summary of a run's metrics and profile.

``render_report`` turns a :class:`~repro.obs.metrics.MetricsRegistry`
snapshot into the terminal summary the CLI prints under ``--metrics``:
the top timers by total wall time, message/transfer counters by name,
a network section for the fault channel's delivery telemetry (hidden
when the run had no channel faults), derived rates (reputation-cache
hit rate, events per second), and the maxflow kernel invocation counts.

The rendering core works off the plain snapshot dict, so the same code
also renders *stored* runs: ``render_manifest_report`` takes a loaded
``run_manifest.json`` document (``repro report``) and replays the
metrics summary plus the profile and timeseries sections, if the run
recorded them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.ascii_plot import render_table
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "render_dissemination",
    "render_manifest_report",
    "render_metrics_snapshot",
    "render_profile",
    "render_report",
]


def _fmt_seconds(seconds) -> str:
    # None (zero-sample histogram) and NaN (quantiles of merged worker
    # snapshots without reservoirs) both render as "-".
    if seconds is None or seconds != seconds:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.2f}ms"


def render_report(
    registry: MetricsRegistry,
    top_timers: int = 10,
    wall_seconds: Optional[float] = None,
) -> str:
    """Render the metrics summary.

    Parameters
    ----------
    registry:
        The run's registry; a disabled registry renders a one-line note.
    top_timers:
        How many timers to show (sorted by total wall time).
    wall_seconds:
        Total run wall time, used for the events/sec derivation when the
        engine's own dispatch timer is absent.
    """
    if not registry.enabled:
        return "== Metrics ==\n(observability disabled; run with --metrics)"
    return render_metrics_snapshot(
        registry.snapshot(), top_timers=top_timers, wall_seconds=wall_seconds
    )


def _value(snap: Dict[str, dict], name: str) -> float:
    entry = snap.get(name)
    if not entry:
        return 0.0
    return float(entry.get("value") or 0.0)


def render_metrics_snapshot(
    snap: Dict[str, dict],
    top_timers: int = 10,
    wall_seconds: Optional[float] = None,
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict (live or stored)."""
    lines: List[str] = ["== Metrics =="]

    timers = {
        name: s
        for name, s in snap.items()
        if s.get("type") in ("timer", "histogram") and s.get("count")
    }
    if timers:
        ranked = sorted(
            timers.items(), key=lambda kv: -(kv[1].get("total") or 0.0)
        )[:top_timers]
        lines.append("-- top timers (by total wall time) --")
        lines.append(
            render_table(
                ["timer", "calls", "total", "mean", "p95", "max"],
                [
                    (
                        name,
                        s["count"],
                        _fmt_seconds(s.get("total")),
                        _fmt_seconds(s.get("mean")),
                        _fmt_seconds(s.get("p95")),
                        _fmt_seconds(s.get("max")),
                    )
                    for name, s in ranked
                ],
                "{}",
            )
        )

    scalars = {
        name: s for name, s in snap.items() if s.get("type") in ("counter", "gauge")
    }
    if scalars:
        lines.append("-- counters --")
        lines.append(
            render_table(
                ["metric", "value"],
                [(name, f"{s['value']:,.0f}") for name, s in sorted(scalars.items())],
                "{}",
            )
        )

    net_rows = [
        (label, _value(snap, f"net.{label}"))
        for label in (
            "delivered",
            "dropped",
            "dropped_by_churn",
            "duplicated",
            "delayed",
        )
    ]
    if any(value for _, value in net_rows):
        lines.append("-- network (fault channel) --")
        lines.append(
            render_table(
                ["outcome", "messages"],
                [(label, f"{value:,.0f}") for label, value in net_rows],
                "{}",
            )
        )
        delivered = net_rows[0][1]
        dropped = net_rows[1][1]
        offered = delivered + dropped
        if offered:
            lines.append(f"delivery rate: {delivered / offered:.1%} of offered gossip")

    derived: List[str] = []
    hits = _value(snap, "rep.cache.hits")
    misses = _value(snap, "rep.cache.misses")
    if hits + misses > 0:
        derived.append(f"reputation cache hit rate: {hits / (hits + misses):.1%}")
    events = _value(snap, "sim.events")
    total_dispatch = (snap.get("sim.dispatch_s") or {}).get("total")
    if events:
        if total_dispatch:
            derived.append(
                f"engine: {events:,.0f} events, "
                f"{events / total_dispatch:,.0f} events/sec dispatch throughput"
            )
        elif wall_seconds:
            derived.append(
                f"engine: {events:,.0f} events, {events / wall_seconds:,.0f} events/sec wall"
            )
    kernel_calls = _value(snap, "rep.kernel.calls")
    kernel_targets = _value(snap, "rep.kernel.targets")
    if kernel_calls:
        derived.append(
            f"maxflow kernel: {kernel_calls:,.0f} invocations, "
            f"{kernel_targets:,.0f} targets evaluated"
        )
    if derived:
        lines.append("-- derived --")
        lines.extend(derived)
    if len(lines) == 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


def render_profile(profile: dict, top: int = 12) -> str:
    """Render a :meth:`~repro.obs.profile.Profiler.summary` dict."""
    lines: List[str] = ["== Profile =="]
    phases = profile.get("phases") or {}
    if phases:
        ranked = sorted(
            phases.items(), key=lambda kv: -(kv[1].get("wall_s") or 0.0)
        )[:top]
        lines.append("-- phases (by total wall time) --")
        lines.append(
            render_table(
                ["phase", "calls", "wall", "self", "cpu", "max"],
                [
                    (
                        path,
                        s.get("count", 0),
                        _fmt_seconds(s.get("wall_s")),
                        _fmt_seconds(s.get("self_wall_s")),
                        _fmt_seconds(s.get("cpu_s")),
                        _fmt_seconds(s.get("max_s")),
                    )
                    for path, s in ranked
                ],
                "{}",
            )
        )
    events = profile.get("events") or {}
    if events:
        ranked = sorted(
            events.items(), key=lambda kv: -(kv[1].get("wall_s") or 0.0)
        )[:top]
        lines.append("-- engine events (by total dispatch time) --")
        lines.append(
            render_table(
                ["event", "fired", "total", "max"],
                [
                    (
                        label,
                        s.get("count", 0),
                        _fmt_seconds(s.get("wall_s")),
                        _fmt_seconds(s.get("max_s")),
                    )
                    for label, s in ranked
                ],
                "{}",
            )
        )
    kernels = profile.get("kernels") or {}
    kernel_rows = [
        (
            name,
            s.get("count", 0),
            _fmt_seconds(s.get("total")),
            _fmt_seconds(s.get("p50")),
            _fmt_seconds(s.get("p95")),
            _fmt_seconds(s.get("max")),
        )
        for name, s in sorted(kernels.items())
        if s.get("count")
    ]
    if kernel_rows:
        lines.append("-- maxflow kernels (per-invocation durations) --")
        lines.append(
            render_table(
                ["kernel", "calls", "total", "p50", "p95", "max"],
                kernel_rows,
                "{}",
            )
        )
    dropped = profile.get("spans_dropped") or 0
    if dropped:
        lines.append(f"(span log full: {dropped:,} spans dropped; aggregates complete)")
    if len(lines) == 1:
        lines.append("(no profile recorded)")
    return "\n".join(lines)


def _render_timeseries_summary(ts: dict) -> str:
    lines = ["== Timeseries =="]
    series = ts.get("series") or []
    rows = []
    for entry in series:
        final = entry.get("final") or {}
        rows.append(
            (
                entry.get("label", "?"),
                entry.get("samples", 0),
                f"{final.get('coverage', float('nan')):.3f}"
                if "coverage" in final
                else "-",
                f"{final.get('rank_inversion_rate', float('nan')):.3f}"
                if "rank_inversion_rate" in final
                else "-",
                f"{final.get('cache_hit_rate', float('nan')):.3f}"
                if "cache_hit_rate" in final
                else "-",
            )
        )
    if rows:
        lines.append(
            render_table(
                ["series", "samples", "final cov", "final inv", "final hit"],
                rows,
                "{}",
            )
        )
    else:
        lines.append("(no series recorded)")
    return "\n".join(lines)


def render_dissemination(summary: dict) -> str:
    """Render a :meth:`~repro.obs.dissemination.DisseminationCollector
    .summary` dict (live or from a stored manifest)."""
    lines = ["== Dissemination =="]
    runs = summary.get("runs") or []
    rows = []
    for run in runs:
        events = run.get("events") or {}
        redundancy = run.get("redundancy_factor")
        rows.append(
            (
                run.get("label", "?"),
                run.get("messages", 0),
                f"{run.get('claims_reached', 0)}/{run.get('claims', 0)}",
                events.get("deliver", 0),
                events.get("drop", 0),
                events.get("wipe", 0),
                f"{redundancy:.2f}" if redundancy is not None else "-",
            )
        )
    if rows:
        lines.append(
            render_table(
                ["run", "msgs", "claims", "delivered", "dropped", "wipes", "redund"],
                rows,
                "{}",
            )
        )
        hops: Dict[str, int] = {}
        for run in runs:
            for hop, count in (run.get("hop_histogram") or {}).items():
                hops[hop] = hops.get(hop, 0) + count
        if hops:
            lines.append(
                "hop counts: "
                + ", ".join(f"{h} hop(s): {n:,}" for h, n in sorted(hops.items()))
            )
    else:
        lines.append("(no dissemination recorded)")
    return "\n".join(lines)


def render_manifest_report(doc: dict) -> str:
    """Render a stored ``run_manifest.json`` document (``repro report``).

    Every section is optional: a manifest from a plain run (no
    ``--metrics``/``--prof``/``--timeseries``) still renders the header
    and phase table; missing provenance totals, an absent network
    section, and zero-sample histograms all degrade to placeholders
    rather than raising.
    """
    lines: List[str] = []
    header = f"== Run: {doc.get('command', '?')} =="
    lines.append(header)
    facts = [
        ("profile", doc.get("profile")),
        ("seed", doc.get("seed")),
        ("package", doc.get("package_version")),
        ("git", doc.get("git_rev")),
        ("wall", _fmt_seconds(doc.get("wall_seconds_total"))),
    ]
    lines.append(
        " · ".join(f"{k} {v}" for k, v in facts if v is not None)
    )
    phases = doc.get("wall_seconds_by_phase") or {}
    if phases:
        lines.append("-- wall time by phase --")
        lines.append(
            render_table(
                ["phase", "wall"],
                [
                    (name, _fmt_seconds(seconds))
                    for name, seconds in sorted(
                        phases.items(), key=lambda kv: -kv[1]
                    )
                ],
                "{}",
            )
        )
    extra = doc.get("extra") or {}
    prov = extra.get("provenance")
    if prov:
        lines.append("-- provenance totals --")
        lines.append(
            render_table(
                ["counter", "value"],
                [(k, f"{v:,}") for k, v in sorted(prov.items())],
                "{}",
            )
        )
    metrics = doc.get("metrics")
    if metrics:
        lines.append("")
        lines.append(render_metrics_snapshot(metrics))
    profile = extra.get("profile")
    if profile:
        lines.append("")
        lines.append(render_profile(profile))
    ts = extra.get("timeseries")
    if ts:
        lines.append("")
        lines.append(_render_timeseries_summary(ts))
    diss = extra.get("dissemination")
    if diss:
        lines.append("")
        lines.append(render_dissemination(diss))
    parallel = extra.get("parallel")
    if parallel and isinstance(parallel, dict):
        lines.append(
            f"parallel: mode {parallel.get('mode')}, jobs {parallel.get('jobs')}, "
            f"{len(parallel.get('tasks') or [])} tasks"
        )
    return "\n".join(lines)
