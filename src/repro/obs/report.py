"""Human-readable summary of a run's metrics.

``render_report`` turns a :class:`~repro.obs.metrics.MetricsRegistry`
snapshot into the terminal summary the CLI prints under ``--metrics``:
the top timers by total wall time, message/transfer counters by name,
a network section for the fault channel's delivery telemetry (hidden
when the run had no channel faults), derived rates (reputation-cache
hit rate, events per second), and the maxflow kernel invocation counts.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.ascii_plot import render_table
from repro.obs.metrics import MetricsRegistry

__all__ = ["render_report"]


def _fmt_seconds(seconds: float) -> str:
    if seconds != seconds:  # NaN: e.g. quantiles of merged worker snapshots
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.2f}ms"


def render_report(
    registry: MetricsRegistry,
    top_timers: int = 10,
    wall_seconds: Optional[float] = None,
) -> str:
    """Render the metrics summary.

    Parameters
    ----------
    registry:
        The run's registry; a disabled registry renders a one-line note.
    top_timers:
        How many timers to show (sorted by total wall time).
    wall_seconds:
        Total run wall time, used for the events/sec derivation when the
        engine's own dispatch timer is absent.
    """
    if not registry.enabled:
        return "== Metrics ==\n(observability disabled; run with --metrics)"
    snap = registry.snapshot()
    lines: List[str] = ["== Metrics =="]

    timers = {
        name: s for name, s in snap.items() if s["type"] in ("timer", "histogram") and s["count"]
    }
    if timers:
        ranked = sorted(timers.items(), key=lambda kv: -kv[1]["total"])[:top_timers]
        lines.append("-- top timers (by total wall time) --")
        lines.append(
            render_table(
                ["timer", "calls", "total", "mean", "p95", "max"],
                [
                    (
                        name,
                        s["count"],
                        _fmt_seconds(s["total"]),
                        _fmt_seconds(s["mean"]),
                        _fmt_seconds(s["p95"]),
                        _fmt_seconds(s["max"]),
                    )
                    for name, s in ranked
                ],
                "{}",
            )
        )

    counters = {name: s for name, s in snap.items() if s["type"] == "counter"}
    gauges = {name: s for name, s in snap.items() if s["type"] == "gauge"}
    scalars = {**counters, **gauges}
    if scalars:
        lines.append("-- counters --")
        lines.append(
            render_table(
                ["metric", "value"],
                [(name, f"{s['value']:,.0f}") for name, s in sorted(scalars.items())],
                "{}",
            )
        )

    net_rows = [
        (label, registry.value(f"net.{label}"))
        for label in ("delivered", "dropped", "duplicated", "delayed")
    ]
    if any(value for _, value in net_rows):
        lines.append("-- network (fault channel) --")
        lines.append(
            render_table(
                ["outcome", "messages"],
                [(label, f"{value:,.0f}") for label, value in net_rows],
                "{}",
            )
        )
        delivered = net_rows[0][1]
        dropped = net_rows[1][1]
        offered = delivered + dropped
        if offered:
            lines.append(f"delivery rate: {delivered / offered:.1%} of offered gossip")

    derived: List[str] = []
    hits = registry.value("rep.cache.hits")
    misses = registry.value("rep.cache.misses")
    if hits + misses > 0:
        derived.append(f"reputation cache hit rate: {hits / (hits + misses):.1%}")
    events = registry.value("sim.events")
    dispatch = registry.get("sim.dispatch_s")
    total_dispatch = (
        dispatch.snapshot().get("total") if dispatch is not None else None
    )
    if events:
        if total_dispatch:
            derived.append(
                f"engine: {events:,.0f} events, "
                f"{events / total_dispatch:,.0f} events/sec dispatch throughput"
            )
        elif wall_seconds:
            derived.append(
                f"engine: {events:,.0f} events, {events / wall_seconds:,.0f} events/sec wall"
            )
    kernel_calls = registry.value("rep.kernel.calls")
    kernel_targets = registry.value("rep.kernel.targets")
    if kernel_calls:
        derived.append(
            f"maxflow kernel: {kernel_calls:,.0f} invocations, "
            f"{kernel_targets:,.0f} targets evaluated"
        )
    if derived:
        lines.append("-- derived --")
        lines.extend(derived)
    if len(lines) == 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
