"""Causal dissemination tracing: per-claim propagation DAGs.

BarterCast's premise is that pairwise gossip disseminates enough of the
transfer graph for subjective reputations to converge.  The metrics and
time-series legs report *that* coverage happened; this module records
*how* — which messages carried a claim where, how many redundant copies
were paid for, and which exact loss/churn event cut a peer off.

A :class:`DisseminationRecorder` collects the causal event log of one
simulation run: every message's envelope (``msg_id``, ``parent_id``,
``hops``, the sane records it carried) plus send / deliver / drop /
duplicate / delay / churn-wipe events in simulation order.  From the log
it derives:

* per-claim propagation DAGs (a *claim* is one ``(reporter,
  counterparty)`` record stream; its DAG is the union of the delivery
  edges of every message that carried it, chained by ``parent_id``),
* time-to-k%-coverage and hop-count distributions per claim,
* the redundancy factor (copies delivered per unique claim delivery),
* fault attribution for undelivered claims ("claim X never reached peer
  P because both candidate paths were cut by loss@t=412 and
  churn-offline@t=509"),
* a lineage replay (:meth:`DisseminationRecorder.replay_claims`) whose
  surviving values must match :class:`~repro.core.sharedhistory
  .SubjectiveSharedHistory` exactly — the auditor cross-check pinned by
  ``tests/test_dissemination.py``.

A :class:`DisseminationCollector` is the :class:`~repro.obs
.Observability` leg, mirroring the time-series collector: the picklable
config crosses process boundaries, recorders are rebuilt inside workers,
snapshots merge home in task order, and export writes CSV + JSON beside
the run manifest byte-identically whether the run was serial or
parallel.

Recording never consumes a simulation RNG stream and the hooks are
append-only, so a recording run is bit-identical to an unrecorded one
(pinned by ``tests/test_dissemination.py``).
"""

from __future__ import annotations

import json
import re
from array import array
from dataclasses import dataclass
from itertools import chain
from operator import attrgetter
from pathlib import Path
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "DISSEMINATION_FILENAME",
    "DISSEMINATION_SCHEMA",
    "DisseminationCollector",
    "DisseminationConfig",
    "DisseminationRecorder",
    "NULL_DISSEMINATION",
    "NullDisseminationCollector",
    "render_attribution",
]

DISSEMINATION_SCHEMA = "bartercast-dissemination/v1"
DISSEMINATION_FILENAME = "dissemination.json"

PeerId = Hashable
#: A claim is the record stream of one (reporter, counterparty) pair; it
#: covers both directed edges the record updates.
ClaimKey = Tuple[PeerId, PeerId]


def _json_safe(value):
    """JSON-safe projection of a peer/message id (provenance convention)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_json_safe(v) for v in value]
    return repr(value)


def _sort_key(value) -> str:
    """Deterministic order for heterogeneous peer ids."""
    return repr(value)


_INF = float("inf")
#: One C-level call extracting (counterparty, uploaded, downloaded) per
#: record; the intermediate tuples die immediately (net-zero effect on
#: the cyclic collector's allocation counter) while the *values* —
#: references to objects the records already own — land in the flat
#: column.  Measured against the alternatives: retaining the per-record
#: tuples instead keeps ~100k freshly-allocated tracked containers
#: alive (10x the collector runs, clearly slower end-to-end).
_GET_RECORD = attrgetter("counterparty", "uploaded", "downloaded")


@dataclass(frozen=True)
class DisseminationConfig:
    """Picklable recording parameters shipped to parallel workers.

    ``coverage_fractions`` are the k-coverage milestones reported per
    claim (time until k% of the eligible population first held it).
    """

    coverage_fractions: Tuple[float, ...] = (0.5, 0.9)


class DisseminationRecorder:
    """Causal event log + DAG analytics for one simulation run.

    The simulator calls the ``record_*`` hooks from the message path and
    the fault injectors; every hook is an O(1) append with no RNG use.
    Events carry a global sequence (their list index), so replay in list
    order is exactly simulation order even for same-timestamp events.
    """

    enabled = True

    def __init__(
        self, label: str = "run", config: Optional[DisseminationConfig] = None
    ) -> None:
        self.label = label
        self.config = config or DisseminationConfig()
        # Storage is columnar on purpose: every hook retains only atoms
        # (ints, floats, strings, ids) and atom-only tuples in persistent
        # lists / ``array``s.  Retaining anything GC-tracked per event —
        # the message, or its records tuple kept for lazy extraction —
        # leaves the cyclic collector's allocation counter in permanent
        # surplus (allocations minus deallocations) and promotes the
        # survivors through the generations, cascading into 10x the
        # collections of an unrecorded run (including full-heap ones)
        # that dwarf the actual bookkeeping cost; both designs measured
        # well over the recording overhead budget on a tiny run.  Record
        # payloads are therefore extracted eagerly, one attrgetter pass
        # per message — the cheapest extraction shape measured.
        #
        # Message registry: msg_id -> row index into the _msg_* columns;
        # message i's records occupy _rec_flat[_rec_off[i]:_rec_off[i+1]]
        # as flattened (counterparty, uploaded, downloaded) runs.  _msg_gdst
        # holds the receiver of a fused-path ("gossip") message — such
        # messages carry their single send+deliver event *in the
        # registry* instead of paying an event row (None for messages
        # whose events are explicit); _msg_gseq is the explicit-row count
        # at registration time, letting _iter_events re-interleave the
        # derived rows in exact hook order.
        self._msg_index: Dict[Hashable, int] = {}
        self._msg_sender: List[PeerId] = []
        self._msg_created = array("d")
        self._msg_parent: List[Hashable] = []
        self._msg_hops: List[int] = []
        self._msg_gdst: List[Optional[PeerId]] = []
        self._msg_gseq = array("l")
        self._rec_flat: List = []
        self._rec_off = array("l", [0])
        self._put_sender = self._msg_sender.append
        self._put_created = self._msg_created.append
        self._put_parent = self._msg_parent.append
        self._put_hops = self._msg_hops.append
        self._put_gdst = self._msg_gdst.append
        self._put_gseq = self._msg_gseq.append
        self._put_off = self._rec_off.append
        #: msg_id -> (sender, created_at, parent_id, hops, records) where
        #: records are the sane (counterparty, uploaded, downloaded)
        #: triples the receivers would apply.  Materialized on demand
        #: from the columns at analytics time.
        self._messages: Dict[Hashable, tuple] = {}
        # Event log: parallel columns of (kind, t, msg_id, src, dst,
        # detail) rows in simulation order.  Kinds: send, deliver, drop,
        # duplicate, delay, wipe, plus the fused "gossip" (= send +
        # same-instant deliver) emitted by the reliable direct path.
        self._ev_kind: List[str] = []
        self._ev_t = array("d")
        self._ev_mid: List[Hashable] = []
        self._ev_src: List[PeerId] = []
        self._ev_dst: List[PeerId] = []
        self._ev_detail: List[Optional[dict]] = []
        # Bound column appends, cached once: the hooks run per message at
        # gossip rates, where six attribute lookups per event are
        # measurable.  (Recorders are never pickled — snapshots cross
        # process boundaries as to_dict() payloads — so caching bound
        # methods is safe.)
        self._put_kind = self._ev_kind.append
        self._put_t = self._ev_t.append
        self._put_mid = self._ev_mid.append
        self._put_src = self._ev_src.append
        self._put_dst = self._ev_dst.append
        self._put_detail = self._ev_detail.append
        self._population: List[PeerId] = []

    # -- wiring --------------------------------------------------------

    def set_population(self, peers: Sequence[PeerId]) -> None:
        """Declare the peer population (for coverage denominators)."""
        self._population = sorted(peers, key=_sort_key)

    @staticmethod
    def _mid(message) -> Hashable:
        mid = message.msg_id
        return mid if mid is not None else (message.sender, message.created_at)

    def _register(self, message) -> Hashable:
        # Inlined _mid: this runs on every hook call, so one less
        # method dispatch matters at gossip rates.
        mid = message.msg_id
        if mid is None:
            mid = (message.sender, message.created_at)
        index = self._msg_index
        if mid not in index:
            index[mid] = len(self._msg_sender)
            self._put_sender(message.sender)
            self._put_created(message.created_at)
            self._put_parent(message.parent_id)
            self._put_hops(message.hops)
            self._put_gdst(None)
            self._put_gseq(0)
            self._extract(message)
        return mid

    def _extract(self, message) -> None:
        flat = self._rec_flat
        off = len(flat)
        try:
            flat.extend(chain.from_iterable(map(_GET_RECORD, message.records)))
        except (TypeError, AttributeError):
            # Defensive parsing (mirrors sane_records): a malformed
            # record object must not crash the hot path.  A failing
            # extend may have appended a prefix — truncate first.
            del flat[off:]
            for r in message.sane_records():
                flat.append(r.counterparty)
                flat.append(r.uploaded)
                flat.append(r.downloaded)
        self._put_off(len(flat))

    def message_ids(self) -> List[Hashable]:
        """Every registered msg_id, in registration order."""
        return list(self._msg_index)

    def _entry(self, mid: Hashable) -> tuple:
        """Materialized (sender, created_at, parent_id, hops, records),
        records being the sane (counterparty, uploaded, downloaded)
        triples a receiver would apply."""
        entry = self._messages.get(mid)
        if entry is None:
            i = self._msg_index[mid]
            sender = self._msg_sender[i]
            triples = []
            it = iter(self._rec_flat[self._rec_off[i] : self._rec_off[i + 1]])
            for c, u, d in zip(it, it, it):
                try:
                    u = float(u)
                    d = float(d)
                except (TypeError, ValueError):
                    # Defensive parsing (mirrors sane_records): malformed
                    # totals are skipped, never raised.
                    continue
                # NaN fails >= 0.0, so this is exactly is_sane plus the
                # self-referential-counterparty filter.
                if c != sender and u >= 0.0 and d >= 0.0 and u != _INF and d != _INF:
                    triples.append((c, u, d))
            entry = (
                sender,
                self._msg_created[i],
                self._msg_parent[i],
                int(self._msg_hops[i]),
                tuple(triples),
            )
            self._messages[mid] = entry
        return entry

    def _materialize(self) -> Dict[Hashable, tuple]:
        """Ensure every registered message has a materialized entry."""
        if len(self._messages) != len(self._msg_index):
            for mid in self._msg_index:
                if mid not in self._messages:
                    self._entry(mid)
        return self._messages

    def _iter_events(self):
        """Event rows (kind, t, msg_id, src, dst, detail) in sim order.

        Merges the explicit event columns with the derived "gossip" rows
        of fused-path messages (those registered with a receiver in
        ``_msg_gdst`` instead of paying an event row): message *i*'s
        derived row is emitted just before explicit row ``_msg_gseq[i]``
        — the explicit-row count when the hook ran — which reproduces
        exactly the order the hooks were called in.
        """
        ev_kind = self._ev_kind
        ev_t = self._ev_t
        ev_mid = self._ev_mid
        ev_src = self._ev_src
        ev_dst = self._ev_dst
        ev_detail = self._ev_detail
        senders = self._msg_sender
        created = self._msg_created
        gdst = self._msg_gdst
        gseq = self._msg_gseq
        j = 0
        for mid, i in self._msg_index.items():
            dst = gdst[i]
            if dst is None:
                continue
            seq = gseq[i]
            while j < seq:
                yield (
                    ev_kind[j],
                    ev_t[j],
                    ev_mid[j],
                    ev_src[j],
                    ev_dst[j],
                    ev_detail[j],
                )
                j += 1
            yield ("gossip", created[i], mid, senders[i], dst, None)
        while j < len(ev_kind):
            yield (
                ev_kind[j],
                ev_t[j],
                ev_mid[j],
                ev_src[j],
                ev_dst[j],
                ev_detail[j],
            )
            j += 1

    def _append_event(self, kind, t, mid, src, dst, detail) -> None:
        self._put_kind(kind)
        self._put_t(t)
        self._put_mid(mid)
        self._put_src(src)
        self._put_dst(dst)
        self._put_detail(detail)

    # -- event hooks (simulation order matters; all O(1) appends) ------

    def record_send(self, message, receiver: PeerId, t: float) -> None:
        """A message left its sender toward ``receiver`` at sim-time ``t``."""
        mid = self._register(message)
        self._append_event("send", t, mid, message.sender, receiver, None)

    def record_gossip(self, message, receiver: PeerId, t: float) -> None:
        """Fused send + same-instant deliver for the reliable direct
        path, semantically identical to calling :meth:`record_send` then
        :meth:`record_deliver` (every analytics scan expands the
        "gossip" kind into both).  This is the hottest hook — every
        fault-free exchange — so the fast path pays *no event row at
        all*: the whole event is derivable from the registry (its time
        is the message's ``created_at``, its source the sender), so
        registering with the receiver in ``_msg_gdst`` is enough and
        :meth:`_iter_events` re-derives the row.  The derivation only
        holds when ``t == created_at`` and the message is new — any
        other call (foreign drivers, re-gossip) takes the explicit-row
        fallback."""
        mid = message.msg_id
        if mid is None:
            mid = (message.sender, message.created_at)
        index = self._msg_index
        if mid not in index and t == message.created_at:
            index[mid] = len(self._msg_sender)
            self._put_sender(message.sender)
            self._put_created(t)
            self._put_parent(message.parent_id)
            self._put_hops(message.hops)
            self._put_gdst(receiver)
            self._put_gseq(len(self._ev_kind))
            self._extract(message)
            return
        self._register(message)
        self._put_kind("gossip")
        self._put_t(t)
        self._put_mid(mid)
        self._put_src(message.sender)
        self._put_dst(receiver)
        self._put_detail(None)

    def record_plan(
        self, message, receiver: PeerId, t: float, times: Sequence[float]
    ) -> None:
        """The channel planned ``len(times)`` copies (duplicate/delay events)."""
        mid = self._register(message)
        if len(times) > 1:
            self._append_event(
                "duplicate", t, mid, message.sender, receiver, {"copies": len(times)}
            )
        for copy, deliver_at in enumerate(times):
            delay = float(deliver_at) - float(t)
            if delay > 0.0:
                self._append_event(
                    "delay",
                    t,
                    mid,
                    message.sender,
                    receiver,
                    {"copy": copy, "delay": delay},
                )

    def record_drop(
        self,
        message,
        receiver: PeerId,
        t: float,
        cause: str,
        copy: int = 0,
        delay: float = 0.0,
    ) -> None:
        """A copy was cut: ``cause`` is loss / unconnectable /
        offline / churn-offline (copy ``copy``, delayed by ``delay``)."""
        mid = self._register(message)
        detail = {"cause": cause}
        if copy:
            detail["copy"] = copy
        if delay:
            detail["delay"] = float(delay)
        self._append_event("drop", t, mid, message.sender, receiver, detail)

    def record_deliver(
        self, message, receiver: PeerId, t: float, copy: int = 0
    ) -> None:
        """Copy ``copy`` of a message was ingested by ``receiver``."""
        mid = self._register(message)
        detail = {"copy": copy} if copy else None
        self._append_event("deliver", t, mid, message.sender, receiver, detail)

    def record_wipe(self, peer: PeerId, t: float) -> None:
        """``peer`` hard-restarted and wiped its gossip-learned claims."""
        self._append_event("wipe", t, None, None, peer, None)

    # -- DAG / claim queries -------------------------------------------

    def message(self, msg_id: Hashable) -> Optional[dict]:
        """Envelope + payload of one registered message."""
        if msg_id not in self._msg_index:
            return None
        sender, created_at, parent_id, hops, records = self._entry(msg_id)
        return {
            "msg_id": msg_id,
            "sender": sender,
            "created_at": created_at,
            "parent_id": parent_id,
            "hops": hops,
            "records": records,
        }

    def claims(self) -> List[ClaimKey]:
        """Every (reporter, counterparty) claim any message carried."""
        seen: Set[ClaimKey] = set()
        for sender, _, _, _, records in self._materialize().values():
            for counterparty, _, _ in records:
                seen.add((sender, counterparty))
        return sorted(seen, key=lambda c: (_sort_key(c[0]), _sort_key(c[1])))

    def _claim_messages(self) -> Dict[ClaimKey, Set[Hashable]]:
        """claim -> msg_ids that carried it."""
        out: Dict[ClaimKey, Set[Hashable]] = {}
        for mid, (sender, _, _, _, records) in self._materialize().items():
            for counterparty, _, _ in records:
                out.setdefault((sender, counterparty), set()).add(mid)
        return out

    def claim_dag(self, claim: ClaimKey) -> dict:
        """The propagation DAG of one claim.

        Nodes are the messages that carried the claim; ``spine`` edges
        chain each message to its causal parent (the sender's previous
        message, when that one also carried the claim), ``delivery``
        edges are the realized sender→receiver deliveries.
        """
        mids = self._claim_messages().get(claim, set())
        nodes = sorted(mids, key=_sort_key)
        spine = [
            (self._entry(m)[2], m)
            for m in nodes
            if self._entry(m)[2] in mids
        ]
        deliveries = [
            (mid, dst, t)
            for kind, t, mid, _, dst, _ in self._iter_events()
            if kind in ("deliver", "gossip") and mid in mids
        ]
        return {"claim": claim, "messages": nodes, "spine": spine, "deliveries": deliveries}

    # -- analytics ------------------------------------------------------

    def _eligible(self, claim: ClaimKey) -> List[PeerId]:
        """Receivers that could hold ``claim``: everyone except the
        reporter (never ingests its own message) and the counterparty
        (records about the owner are rejected)."""
        reporter, counterparty = claim
        return [p for p in self._population if p not in (reporter, counterparty)]

    def claim_stats(self) -> List[dict]:
        """Per-claim coverage/redundancy digest, deterministically ordered."""
        claim_msgs = self._claim_messages()
        first: Dict[ClaimKey, Dict[PeerId, float]] = {}
        copies: Dict[ClaimKey, int] = {}
        mid_claims: Dict[Hashable, List[ClaimKey]] = {}
        for claim, mids in claim_msgs.items():
            for mid in mids:
                mid_claims.setdefault(mid, []).append(claim)
        for kind, t, mid, _, dst, _ in self._iter_events():
            if kind != "deliver" and kind != "gossip":
                continue
            for claim in mid_claims.get(mid, ()):
                # Deliveries to the claim's own parties don't count: the
                # reporter never ingests its own record and records about
                # the receiver are rejected on ingest.
                if dst in (claim[0], claim[1]):
                    continue
                copies[claim] = copies.get(claim, 0) + 1
                per = first.setdefault(claim, {})
                if dst not in per:
                    per[dst] = t
        stats = []
        for claim in self.claims():
            eligible = self._eligible(claim)
            reached = first.get(claim, {})
            times = sorted(reached.values())
            entry = {
                "claim": [_json_safe(claim[0]), _json_safe(claim[1])],
                "eligible": len(eligible),
                "reached": len(reached),
                "copies": copies.get(claim, 0),
                "first_t": times[0] if times else None,
            }
            if reached:
                entry["redundancy"] = copies.get(claim, 0) / len(reached)
            for frac in self.config.coverage_fractions:
                need = max(1, int(round(frac * len(eligible)))) if eligible else 0
                key = f"t{int(round(frac * 100))}"
                entry[key] = (
                    times[need - 1] if need and len(times) >= need else None
                )
            stats.append(entry)
        return stats

    def hop_histogram(self) -> Dict[str, int]:
        """Delivered-message counts by envelope hop count."""
        hist: Dict[str, int] = {}
        for kind, _, mid, _, _, _ in self._iter_events():
            if kind == "deliver" or kind == "gossip":
                key = str(self._entry(mid)[3])
                hist[key] = hist.get(key, 0) + 1
        return dict(sorted(hist.items()))

    def redundancy_factor(self) -> Optional[float]:
        """Copies delivered per unique (claim, receiver) delivery."""
        mid_claims: Dict[Hashable, List[ClaimKey]] = {}
        for claim, mids in self._claim_messages().items():
            for mid in mids:
                mid_claims.setdefault(mid, []).append(claim)
        total = 0
        unique: Set[Tuple[PeerId, PeerId, PeerId]] = set()
        for kind, _, mid, _, dst, _ in self._iter_events():
            if kind != "deliver" and kind != "gossip":
                continue
            for claim in mid_claims.get(mid, ()):
                if dst in (claim[0], claim[1]):
                    continue
                total += 1
                unique.add((claim[0], claim[1], dst))
        if not unique:
            return None
        return total / len(unique)

    # -- lineage replay (the auditor cross-check) ----------------------

    def replay_claims(self, receiver: PeerId) -> Dict[tuple, float]:
        """Replay ``receiver``'s deliveries and wipes in simulation order.

        Returns the surviving ``(reporter, src, dst) -> value`` claims
        under the shared history's supersede semantics (newer
        ``created_at`` wins; equal timestamps keep the max value).  Must
        match ``SubjectiveSharedHistory`` exactly — any divergence means
        the event log is incomplete.
        """
        state: Dict[tuple, Tuple[float, float]] = {}
        for kind, _, mid, _, dst, detail in self._iter_events():
            if dst != receiver:
                continue
            if kind == "wipe":
                state.clear()
                continue
            if kind != "deliver" and kind != "gossip":
                continue
            reporter, created_at, _, _, records = self._entry(mid)
            for counterparty, uploaded, downloaded in records:
                if counterparty == receiver or reporter == receiver:
                    continue
                for src, dsn, value in (
                    (reporter, counterparty, uploaded),
                    (counterparty, reporter, downloaded),
                ):
                    key = (reporter, src, dsn)
                    cur = state.get(key)
                    if (
                        cur is None
                        or created_at > cur[0]
                        or (created_at == cur[0] and value > cur[1])
                    ):
                        state[key] = (created_at, value)
        return {key: ts_value[1] for key, ts_value in state.items()}

    # -- fault attribution ---------------------------------------------

    def explain_missing(
        self,
        receiver: Optional[PeerId] = None,
        claim: Optional[ClaimKey] = None,
    ) -> List[dict]:
        """Attribution entries for claims that were attempted toward a
        receiver but never survived there.

        Each entry names the exact fault events that cut the candidate
        paths (``loss@t=412.0``) or erased a delivered copy
        (``churn-wipe@t=509.0``).  Restricted to (claim, receiver) pairs
        with at least one send attempt — pairs the gossip schedule never
        targeted carry no fault to attribute.
        """
        claim_msgs = self._claim_messages()
        entries: List[dict] = []
        claims = [claim] if claim is not None else self.claims()
        survivors: Dict[PeerId, Set[ClaimKey]] = {}
        for ck in claims:
            mids = claim_msgs.get(ck, set())
            receivers = (
                [receiver] if receiver is not None else self._eligible(ck)
            )
            for p in receivers:
                if p in (ck[0], ck[1]):
                    continue
                if p not in survivors:
                    alive: Set[ClaimKey] = set()
                    for rep, src, dsn in self.replay_claims(p):
                        alive.add((rep, dsn if src == rep else src))
                    survivors[p] = alive
                if ck in survivors[p]:
                    continue
                attempts = 0
                cut: List[str] = []
                delivered: List[float] = []
                wipes: List[float] = []
                for kind, t, mid, _, dst, detail in self._iter_events():
                    if kind == "wipe" and dst == p:
                        wipes.append(t)
                        continue
                    if mid not in mids or dst != p:
                        continue
                    if kind == "send":
                        attempts += 1
                    elif kind == "drop":
                        cut.append(f"{detail['cause']}@t={t:g}")
                    elif kind == "deliver":
                        delivered.append(t)
                    elif kind == "gossip":
                        attempts += 1
                        delivered.append(t)
                if attempts == 0:
                    continue
                wiped_after = [
                    f"churn-wipe@t={w:g}"
                    for w in wipes
                    if delivered and w >= min(delivered)
                ]
                entries.append(
                    {
                        "claim": [_json_safe(ck[0]), _json_safe(ck[1])],
                        "receiver": _json_safe(p),
                        "attempts": attempts,
                        "cut_by": cut,
                        "wiped_by": wiped_after,
                        "delivered_at": delivered,
                    }
                )
        return entries

    # -- snapshots ------------------------------------------------------

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for kind, _, _, _, _, detail in self._iter_events():
            if kind == "gossip":
                counts["send"] = counts.get("send", 0) + 1
                counts["deliver"] = counts.get("deliver", 0) + 1
                continue
            counts[kind] = counts.get(kind, 0) + 1
            if kind == "drop" and detail and detail.get("cause"):
                key = f"drop.{detail['cause']}"
                counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> dict:
        """Small JSON-safe digest for the run manifest."""
        stats = self.claim_stats()
        reached = [s for s in stats if s["reached"]]
        out = {
            "label": self.label,
            "population": len(self._population),
            "messages": len(self._msg_index),
            "claims": len(stats),
            "claims_reached": len(reached),
            "events": self.event_counts(),
            "hop_histogram": self.hop_histogram(),
        }
        rf = self.redundancy_factor()
        if rf is not None:
            out["redundancy_factor"] = rf
        return out

    def to_dict(self) -> dict:
        """JSON-safe snapshot: digest + per-claim stats + attributions.

        This is what crosses the worker boundary and what export
        serializes, so it must be deterministic for a given event log.
        """
        return {
            "schema": DISSEMINATION_SCHEMA,
            "label": self.label,
            "summary": self.summary(),
            "claims": self.claim_stats(),
            "undelivered": self.explain_missing(),
        }


def render_attribution(entry: dict) -> str:
    """One attribution entry as the sentence the report/CLI print."""
    claim = entry["claim"]
    head = f"claim ({claim[0]}->{claim[1]}) never reached peer {entry['receiver']}"
    causes = list(entry.get("cut_by", [])) + list(entry.get("wiped_by", []))
    if entry.get("delivered_at") and entry.get("wiped_by"):
        head = (
            f"claim ({claim[0]}->{claim[1]}) was erased at peer "
            f"{entry['receiver']}"
        )
    if causes:
        paths = entry.get("attempts", len(causes))
        return (
            f"{head}: the {paths} candidate path(s) were cut by "
            + ", ".join(causes)
        )
    return f"{head} ({entry.get('attempts', 0)} attempt(s), cause unrecorded)"


def _series_csv_name(label: str) -> str:
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", label).strip("_") or "run"
    return f"dissemination_{slug}.csv"


_CSV_COLUMNS = ("reporter", "counterparty", "eligible", "reached", "copies", "first_t")


class DisseminationCollector:
    """The Observability leg: config carrier + per-task snapshot store.

    Mirrors :class:`~repro.obs.timeseries.TimeSeriesCollector`: the
    config is picklable, recorders are rebuilt inside workers, worker
    snapshots merge home in task order, and export output is
    byte-identical between ``--jobs N`` and serial runs.
    """

    enabled = True

    def __init__(self, config: Optional[DisseminationConfig] = None) -> None:
        self.config = config or DisseminationConfig()
        self._snapshots: List[dict] = []
        self._recorders: List[DisseminationRecorder] = []
        self._pending_label: Optional[str] = None
        self._counter = 0

    # -- labeling ------------------------------------------------------

    def begin_task(self, label: str) -> None:
        """Name the recorder the simulator attaches next."""
        self._pending_label = label

    def next_label(self) -> str:
        self._counter += 1
        label, self._pending_label = self._pending_label, None
        return label if label is not None else f"run-{self._counter}"

    # -- recorder lifecycle --------------------------------------------

    def attach(self, recorder: DisseminationRecorder) -> None:
        self._recorders.append(recorder)

    def merge(self, snapshots: Optional[Sequence[dict]]) -> None:
        """Fold worker snapshots home (call in task order)."""
        if snapshots:
            self._snapshots.extend(snapshots)

    def series(self) -> List[dict]:
        """All finished snapshots, merge-order then local-order."""
        return list(self._snapshots) + [r.to_dict() for r in self._recorders]

    def recorders(self) -> List[DisseminationRecorder]:
        """Locally attached recorders (live DAG queries, e.g. explain)."""
        return list(self._recorders)

    # -- export --------------------------------------------------------

    def summary(self) -> dict:
        """Manifest digest: one entry per recorded run."""
        return {
            "coverage_fractions": list(self.config.coverage_fractions),
            "runs": [snap["summary"] for snap in self.series()],
        }

    def export(self, directory: Union[str, Path]) -> List[Path]:
        """Write one per-claim CSV per run plus ``dissemination.json``.

        Returns the written paths (empty when nothing was recorded).
        """
        all_series = self.series()
        if not all_series:
            return []
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        frac_cols = [
            f"t{int(round(f * 100))}" for f in self.config.coverage_fractions
        ]
        header = ",".join(_CSV_COLUMNS + tuple(frac_cols))
        for snap in all_series:
            path = directory / _series_csv_name(snap.get("label") or "run")
            with path.open("w", encoding="utf-8") as fh:
                fh.write(header + "\n")
                for entry in snap.get("claims", []):
                    cells = [
                        str(entry["claim"][0]),
                        str(entry["claim"][1]),
                        str(entry["eligible"]),
                        str(entry["reached"]),
                        str(entry["copies"]),
                        "" if entry["first_t"] is None else repr(float(entry["first_t"])),
                    ]
                    for col in frac_cols:
                        value = entry.get(col)
                        cells.append("" if value is None else repr(float(value)))
                    fh.write(",".join(cells) + "\n")
            written.append(path)
        combined = directory / DISSEMINATION_FILENAME
        combined.write_text(
            json.dumps(
                {"schema": DISSEMINATION_SCHEMA, "series": all_series},
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        written.append(combined)
        return written


class NullDisseminationCollector(DisseminationCollector):
    """Disabled collector: simulators skip recorder setup entirely."""

    enabled = False

    def begin_task(self, label: str) -> None:
        pass

    def attach(self, recorder: DisseminationRecorder) -> None:  # pragma: no cover
        raise RuntimeError(
            "NullDisseminationCollector.attach called; guard with collector.enabled"
        )

    def merge(self, snapshots: Optional[Sequence[dict]]) -> None:
        pass

    def export(self, directory: Union[str, Path]) -> List[Path]:
        return []


#: Shared disabled collector (the :data:`repro.obs.NULL_OBS` leg).
NULL_DISSEMINATION = NullDisseminationCollector()
