"""Structured event tracing: JSONL span/event records with sampling.

A :class:`TraceEmitter` appends one JSON object per line to a file.  The
first line is a header record identifying the schema, the sampling
configuration, and the wall-clock origin; every following line is an
event record:

.. code-block:: json

    {"seq": 17, "cat": "bt.transfer", "name": "piece-transfer",
     "wall": 1.0532, "sim": 86400.0, "dur": null,
     "attrs": {"up": 3, "down": 9, "bytes": 262144.0}}

Fields
------
``seq``
    Emission order (monotonic over the whole file, *after* sampling).
``cat`` / ``name``
    Hierarchical category (sampling unit) and the event name within it.
``wall``
    Wall-clock seconds since the emitter was created (monotonic clock).
``sim``
    Simulated time in seconds, or ``null`` for events outside a
    simulation clock (e.g. kernel invocations during post-hoc analysis).
``dur``
    Wall-clock duration in seconds for span records, ``null`` for point
    events.
``attrs``
    Free-form JSON-safe attributes; omitted when empty.

Sampling
--------
Each category carries an independent keep-probability (``sample_rates``
falls back to ``default_rate``).  Sampling decisions are made by a
per-category :class:`random.Random` seeded from ``(seed, category)``, so
which events survive is a deterministic function of the seed and the
emission sequence — two runs of the same simulation produce traces with
identical ``(cat, name, sim, attrs)`` streams.  Span sampling is decided
at span *entry* so the duration cost is only paid for kept spans.

The disabled default is :data:`NULL_TRACER`; hot paths cache
``tracer.category(...) if tracer.enabled else None`` and skip all trace
work on the ``None`` branch.
"""

from __future__ import annotations

import json
import time
import zlib
from contextlib import nullcontext
from pathlib import Path
from random import Random
from typing import Dict, List, Optional, TextIO, Tuple, Union

__all__ = [
    "TRACE_SCHEMA",
    "TraceEmitter",
    "TraceCategory",
    "NullTraceEmitter",
    "NULL_TRACER",
    "read_trace",
]

#: Schema tag written into the header record.
TRACE_SCHEMA = "bartercast-trace/v1"

_NULL_CONTEXT = nullcontext()


class TraceCategory:
    """One category's sampling gate and emission handle."""

    __slots__ = ("emitter", "name", "rate", "_rng")

    def __init__(self, emitter: "TraceEmitter", name: str, rate: float, seed: int) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate for {name!r} must be in [0, 1], got {rate}")
        self.emitter = emitter
        self.name = name
        self.rate = rate
        self._rng = Random((seed << 32) ^ zlib.crc32(name.encode("utf-8")))

    def should_sample(self) -> bool:
        """Advance the deterministic sampling stream by one decision."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        return self._rng.random() < self.rate

    def emit(
        self,
        name: str,
        sim_time: Optional[float] = None,
        attrs: Optional[dict] = None,
        duration_s: Optional[float] = None,
    ) -> bool:
        """Emit one (possibly sampled-out) event; returns whether it was kept."""
        if not self.should_sample():
            self.emitter.records_sampled_out += 1
            return False
        self.emitter._write(self.name, name, sim_time, attrs, duration_s)
        return True

    def sample(self) -> bool:
        """Consume one sampling decision; pair with :meth:`emit_sampled`.

        Hot paths use the split form so the event's attr dict is only
        constructed for kept events::

            if cat is not None and cat.sample():
                cat.emit_sampled("piece_transfer", now, attrs={...})

        The decision stream is the same one :meth:`emit` consumes (one
        draw per decision), so splitting changes neither which events
        survive nor the trace bytes — only who pays for the attrs.
        Rejections are counted as sampled-out here, exactly as
        :meth:`emit` would.
        """
        if self.should_sample():
            return True
        self.emitter.records_sampled_out += 1
        return False

    def emit_sampled(
        self,
        name: str,
        sim_time: Optional[float] = None,
        attrs: Optional[dict] = None,
        duration_s: Optional[float] = None,
    ) -> None:
        """Write one event unconditionally; caller already passed :meth:`sample`."""
        self.emitter._write(self.name, name, sim_time, attrs, duration_s)

    def span(self, name: str, sim_time: Optional[float] = None, attrs: Optional[dict] = None):
        """Context manager emitting one span record with wall duration."""
        if not self.should_sample():
            self.emitter.records_sampled_out += 1
            return _NULL_CONTEXT
        return _Span(self, name, sim_time, attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceCategory {self.name} rate={self.rate}>"


class _Span:
    """A sampled-in span: measures wall duration, emits on exit."""

    __slots__ = ("_category", "_name", "_sim_time", "_attrs", "_t0")

    def __init__(self, category: TraceCategory, name: str, sim_time, attrs) -> None:
        self._category = category
        self._name = name
        self._sim_time = sim_time
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        duration = time.perf_counter() - self._t0
        self._category.emitter._write(
            self._category.name, self._name, self._sim_time, self._attrs, duration
        )


class TraceEmitter:
    """Writes sampled JSONL trace records to a file or file-like object.

    Parameters
    ----------
    target:
        Output path (parent directories are created) or an open text
        file-like object (not closed by :meth:`close`).
    sample_rates:
        Per-category keep probabilities; categories not listed use
        ``default_rate``.
    default_rate:
        Keep probability for unlisted categories (default 1.0).
    seed:
        Root seed of the deterministic sampling streams.
    """

    enabled = True

    def __init__(
        self,
        target: Union[str, Path, TextIO],
        sample_rates: Optional[Dict[str, float]] = None,
        default_rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= default_rate <= 1.0:
            raise ValueError(f"default_rate must be in [0, 1], got {default_rate}")
        self.sample_rates = dict(sample_rates or {})
        self.default_rate = float(default_rate)
        self.seed = int(seed)
        self.records_written = 0
        self.records_sampled_out = 0
        self._categories: Dict[str, TraceCategory] = {}
        self._t0 = time.perf_counter()
        if hasattr(target, "write"):
            self.path: Optional[Path] = None
            self._fh: TextIO = target
            self._owns_fh = False
        else:
            self.path = Path(target)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w")
            self._owns_fh = True
        self._closed = False
        header = {
            "schema": TRACE_SCHEMA,
            "created_unix": time.time(),
            "seed": self.seed,
            "default_rate": self.default_rate,
            "sample_rates": dict(self.sample_rates),
        }
        self._fh.write(json.dumps(header, sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    def category(self, name: str) -> TraceCategory:
        """The (memoized) sampling handle for ``name``."""
        cat = self._categories.get(name)
        if cat is None:
            rate = self.sample_rates.get(name, self.default_rate)
            cat = TraceCategory(self, name, rate, self.seed)
            self._categories[name] = cat
        return cat

    def emit(
        self,
        category: str,
        name: str,
        sim_time: Optional[float] = None,
        attrs: Optional[dict] = None,
        duration_s: Optional[float] = None,
    ) -> bool:
        """Convenience: route one event through ``category``'s sampler."""
        return self.category(category).emit(name, sim_time, attrs, duration_s)

    def span(self, category: str, name: str, sim_time: Optional[float] = None,
             attrs: Optional[dict] = None):
        """Convenience: a sampled span in ``category``."""
        return self.category(category).span(name, sim_time, attrs)

    # ------------------------------------------------------------------
    def _write(self, cat, name, sim_time, attrs, duration_s) -> None:
        if self._closed:
            return
        self.records_written += 1
        record = {
            "seq": self.records_written,
            "cat": cat,
            "name": name,
            "wall": round(time.perf_counter() - self._t0, 6),
            "sim": sim_time,
            "dur": round(duration_s, 6) if duration_s is not None else None,
        }
        if attrs:
            record["attrs"] = attrs
        self._fh.write(json.dumps(record, default=_json_default) + "\n")

    def flush(self) -> None:
        if not self._closed:
            self._fh.flush()

    def close(self) -> None:
        """Flush and close (path-owned handles only); further emits no-op."""
        if self._closed:
            return
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()
        self._closed = True

    def __enter__(self) -> "TraceEmitter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.path) if self.path else "<stream>"
        return f"<TraceEmitter {where} written={self.records_written}>"


class NullTraceEmitter(TraceEmitter):
    """The disabled tracer: every operation is a no-op."""

    enabled = False

    def __init__(self) -> None:  # pylint: disable=super-init-not-called
        self.sample_rates = {}
        self.default_rate = 0.0
        self.seed = 0
        self.records_written = 0
        self.records_sampled_out = 0
        self.path = None
        self._closed = True
        self._category = _NullCategory(self)

    def category(self, name: str) -> TraceCategory:
        return self._category

    def emit(self, category, name, sim_time=None, attrs=None, duration_s=None) -> bool:
        return False

    def span(self, category, name, sim_time=None, attrs=None):
        return _NULL_CONTEXT

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullTraceEmitter>"


class _NullCategory(TraceCategory):
    __slots__ = ()

    def __init__(self, emitter: NullTraceEmitter) -> None:
        super().__init__(emitter, "null", 0.0, 0)

    def should_sample(self) -> bool:
        return False

    def sample(self) -> bool:
        return False

    def emit(self, name, sim_time=None, attrs=None, duration_s=None) -> bool:
        return False

    def emit_sampled(self, name, sim_time=None, attrs=None, duration_s=None) -> None:
        pass

    def span(self, name, sim_time=None, attrs=None):
        return _NULL_CONTEXT


#: Shared disabled tracer — the default everywhere.
NULL_TRACER = NullTraceEmitter()


def _json_default(obj):
    """Last-resort JSON conversion for attribute values."""
    try:
        return float(obj)
    except (TypeError, ValueError):
        return repr(obj)


def read_trace(path: Union[str, Path]) -> Tuple[dict, List[dict]]:
    """Parse a trace file back into ``(header, events)``.

    Raises ``ValueError`` if the header is missing or the schema tag is
    not :data:`TRACE_SCHEMA`.
    """
    path = Path(path)
    with path.open() as fh:
        first = fh.readline()
        if not first:
            raise ValueError(f"{path} is empty, not a trace file")
        header = json.loads(first)
        if header.get("schema") != TRACE_SCHEMA:
            raise ValueError(
                f"{path} has schema {header.get('schema')!r}, expected {TRACE_SCHEMA!r}"
            )
        events = [json.loads(line) for line in fh if line.strip()]
    return header, events
