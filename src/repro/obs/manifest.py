"""Run manifests: every exported figure becomes attributable and diffable.

A manifest is a single JSON document written next to a run's ``--export``
output (or its trace file) that captures everything needed to attribute
and reproduce the figures it accompanies:

* the command, its arguments, profile, and root seed;
* the package version, Python/platform, and the git revision (when the
  working tree is a repository);
* wall-clock seconds per run phase (simulate / report / export / ...);
* the final metrics snapshot and trace bookkeeping, when observability
  was enabled.

Two manifests from "the same" experiment can be diffed field-by-field;
any divergence in config, code revision, or final counters explains a
divergence in the series.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import platform
import subprocess
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Optional, Union

from repro import __version__

__all__ = [
    "MANIFEST_SCHEMA",
    "ManifestBuilder",
    "dependency_versions",
    "describe",
    "git_revision",
    "read_manifest",
]

#: Schema tag written into every manifest.
MANIFEST_SCHEMA = "bartercast-manifest/v1"

#: Default file name used when writing next to an export directory.
MANIFEST_FILENAME = "run_manifest.json"


def describe(obj):
    """Best-effort conversion of config objects into JSON-safe values.

    Dataclasses become dicts (recursively), mappings and sequences recurse,
    scalars pass through, and anything else falls back to ``repr`` — good
    enough to make two configs diffable without every knob class having to
    implement a serializer.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: describe(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): describe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [describe(v) for v in obj]
    return repr(obj)


def dependency_versions() -> dict:
    """Versions of the numeric dependencies that can change results or
    performance (the columnar backend leans on numpy); ``None`` for
    packages absent from the environment."""
    versions = {}
    for name in ("numpy", "scipy", "networkx"):
        try:
            module = importlib.import_module(name)
            versions[name] = getattr(module, "__version__", None)
        except ImportError:
            versions[name] = None
    return versions


def git_revision(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The current git commit hash, or ``None`` outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


class ManifestBuilder:
    """Accumulates one run's provenance and writes the manifest.

    Parameters
    ----------
    command:
        The CLI subcommand (or programmatic entry point) being run.
    args:
        The parsed arguments / knobs of the run (made JSON-safe via
        :func:`describe`).
    profile / seed:
        Scenario profile name and root seed, when applicable.
    config:
        The full scenario/config object for the run, when applicable.
    """

    def __init__(
        self,
        command: str,
        args: Optional[dict] = None,
        profile: Optional[str] = None,
        seed: Optional[int] = None,
        config=None,
    ) -> None:
        self.command = command
        self.args = describe(args or {})
        self.profile = profile
        self.seed = seed
        self.config = describe(config) if config is not None else None
        self.started_unix = time.time()
        self._t0 = time.perf_counter()
        #: Accumulated wall seconds per phase, in first-seen order.
        self.phases: Dict[str, float] = {}
        self.extra: Dict[str, object] = {}
        #: Fault-injection knobs of the run; ``None`` (the default) omits
        #: the section entirely, so fault-free manifests are unchanged.
        self.faults = None

    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Time a run phase; repeated phases accumulate."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.phases[name] = self.phases.get(name, 0.0) + (
                time.perf_counter() - t0
            )

    def note(self, key: str, value) -> None:
        """Attach an arbitrary JSON-safe fact to the manifest."""
        self.extra[key] = describe(value)

    def set_faults(self, faults) -> None:
        """Record the run's fault-injection knobs (``--loss/--dup/--delay/
        --churn`` or a sweep spec).  Pass ``None`` — or never call — for a
        fault-free run: the manifest then carries no ``faults`` section,
        keeping it byte-compatible with pre-fault-layer manifests."""
        self.faults = describe(faults) if faults is not None else None

    # ------------------------------------------------------------------
    def build(self, metrics=None, tracer=None) -> dict:
        """Materialize the manifest document.

        ``metrics`` / ``tracer`` are the run's registry and trace emitter;
        disabled (null) instances contribute ``None`` sections.
        """
        doc = {
            "schema": MANIFEST_SCHEMA,
            "command": self.command,
            "args": self.args,
            "profile": self.profile,
            "seed": self.seed,
            "config": self.config,
            "package_version": __version__,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "dependencies": dependency_versions(),
            "git_rev": git_revision(Path(__file__).resolve().parent),
            "started_unix": self.started_unix,
            "wall_seconds_total": time.perf_counter() - self._t0,
            "wall_seconds_by_phase": {
                name: round(seconds, 6) for name, seconds in self.phases.items()
            },
            "metrics": (
                metrics.snapshot() if metrics is not None and metrics.enabled else None
            ),
            "trace": (
                {
                    "path": str(tracer.path) if tracer.path else None,
                    "records_written": tracer.records_written,
                    "records_sampled_out": tracer.records_sampled_out,
                    "default_rate": tracer.default_rate,
                    "sample_rates": dict(tracer.sample_rates),
                }
                if tracer is not None and tracer.enabled
                else None
            ),
        }
        if self.faults is not None:
            doc["faults"] = self.faults
        if self.extra:
            doc["extra"] = dict(self.extra)
        return doc

    def write(
        self,
        destination: Union[str, Path],
        metrics=None,
        tracer=None,
    ) -> Path:
        """Write the manifest as JSON; returns the written path.

        ``destination`` may be a directory (the manifest lands there as
        ``run_manifest.json``) or a full file path.
        """
        destination = Path(destination)
        if destination.is_dir() or not destination.suffix:
            destination.mkdir(parents=True, exist_ok=True)
            destination = destination / MANIFEST_FILENAME
        else:
            destination.parent.mkdir(parents=True, exist_ok=True)
        doc = self.build(metrics=metrics, tracer=tracer)
        destination.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return destination


def read_manifest(path: Union[str, Path]) -> dict:
    """Load a manifest, validating the schema tag."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path} has schema {doc.get('schema')!r}, expected {MANIFEST_SCHEMA!r}"
        )
    return doc
