"""The metrics registry: counters, gauges, histograms, timers.

A :class:`MetricsRegistry` is a flat namespace of named instruments:

* :class:`Counter` — monotonically increasing totals (messages sent,
  bytes moved, cache hits);
* :class:`Gauge` — last-write-wins scalars (final cache sizes, aggregate
  telemetry set once at the end of a run);
* :class:`Histogram` — value distributions with deterministic reservoir
  sampling for quantiles and optional fixed bucket bounds;
* :class:`Timer` — a histogram of wall-clock seconds with a re-entrant
  context-manager interface (``with registry.timer("bt.round_s"): ...``).

Zero-overhead discipline
------------------------
The disabled default is :data:`NULL_METRICS`, a :class:`NullMetricsRegistry`
whose instruments are shared no-op singletons.  Hot paths additionally
guard instrumentation behind ``registry.enabled`` (or a cached ``None``)
so that a disabled run executes *no* instrumentation calls at all — the
only residue is one attribute check per guarded block.  The benchmark
``benchmarks/bench_reputation_cache.py`` pins this overhead.

Determinism
-----------
Nothing in this module consumes the simulation's RNG streams.  Histogram
reservoirs use a private :class:`random.Random` seeded from the metric
name, so snapshots are reproducible run-to-run for identical observation
sequences.
"""

from __future__ import annotations

import math
import time
import zlib
from random import Random
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
]

#: Default reservoir capacity for histogram quantiles.
DEFAULT_RESERVOIR_SIZE = 1024


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def snapshot(self, include_reservoir: bool = False) -> dict:
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self, include_reservoir: bool = False) -> dict:
        return {"type": "gauge", "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A value distribution.

    Quantiles are estimated from a deterministic reservoir sample
    (`Vitter's algorithm R`), seeded from the metric name so repeated
    runs over the same observation sequence give identical snapshots.
    Optional fixed ``bounds`` additionally maintain cumulative bucket
    counts (``count of values <= bound``), which give exact coarse
    quantiles at paper scale without storing samples.
    """

    __slots__ = (
        "name",
        "count",
        "total",
        "min",
        "max",
        "bounds",
        "bucket_counts",
        "_reservoir",
        "_reservoir_size",
        "_rng",
    )

    def __init__(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
    ) -> None:
        if reservoir_size <= 0:
            raise ValueError("reservoir_size must be positive")
        if bounds is not None:
            bounds = [float(b) for b in bounds]
            if bounds != sorted(bounds):
                raise ValueError("histogram bounds must be sorted ascending")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1) if bounds is not None else None
        self._reservoir: List[float] = []
        self._reservoir_size = int(reservoir_size)
        self._rng = Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.bucket_counts is not None:
            self.bucket_counts[self._bucket_index(value)] += 1
        res = self._reservoir
        if len(res) < self._reservoir_size:
            res.append(value)
        else:
            # Algorithm R: keep each of the first n observations with
            # probability size/n — deterministic via the name-seeded RNG.
            slot = self._rng.randrange(self.count)
            if slot < self._reservoir_size:
                res[slot] = value

    def _bucket_index(self, value: float) -> int:
        bounds = self.bounds
        lo, hi = 0, len(bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def mean(self) -> float:
        """Mean observation (NaN when empty)."""
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Reservoir-estimated ``q``-quantile (NaN when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._reservoir:
            return float("nan")
        ordered = sorted(self._reservoir)
        idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[idx]

    def snapshot(self, include_reservoir: bool = False) -> dict:
        """JSON-safe summary; ``include_reservoir`` additionally ships
        the raw reservoir sample so a receiving registry can merge
        quantiles (the parallel worker ship-home path).  The default
        stays reservoir-free: manifests and reports only need the
        derived quantiles."""
        out = {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean if self.count else None,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.quantile(0.5) if self.count else None,
            "p95": self.quantile(0.95) if self.count else None,
            "p99": self.quantile(0.99) if self.count else None,
        }
        if self.bounds is not None:
            out["bounds"] = list(self.bounds)
            out["bucket_counts"] = list(self.bucket_counts)
        if include_reservoir and self._reservoir:
            out["reservoir"] = list(self._reservoir)
        return out

    def merge_snapshot_dict(self, snap: dict) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        ``count``, ``total``, ``min``, ``max`` and (matching) bucket
        counts merge exactly.  When the snapshot carries its reservoir
        (``snapshot(include_reservoir=True)``), quantiles merge too:
        if both sides' reservoirs are complete samples (every observed
        value present) the reservoirs concatenate — exact, and
        bit-identical to a serial run over the union; otherwise the two
        reservoirs are resampled by weighted sampling without
        replacement (Efraimidis–Spirakis A-Res, each value weighted by
        its side's observations-per-slot) through the name-seeded RNG,
        so the merged estimate is deterministic given merge order.
        Snapshots without a reservoir merge as before: post-merge
        quantiles then reflect only locally observed values.
        """
        merged = int(snap.get("count") or 0)
        if merged <= 0:
            return
        own_count = self.count
        self.count += merged
        self.total += float(snap.get("total") or 0.0)
        if snap.get("min") is not None and snap["min"] < self.min:
            self.min = float(snap["min"])
        if snap.get("max") is not None and snap["max"] > self.max:
            self.max = float(snap["max"])
        if (
            self.bounds is not None
            and snap.get("bounds") == list(self.bounds)
            and snap.get("bucket_counts") is not None
        ):
            for i, c in enumerate(snap["bucket_counts"]):
                self.bucket_counts[i] += int(c)
        reservoir = snap.get("reservoir")
        if reservoir:
            self._merge_reservoir(
                [float(v) for v in reservoir], merged, own_count
            )

    def _merge_reservoir(
        self, incoming: List[float], incoming_count: int, own_count: int
    ) -> None:
        mine = self._reservoir
        size = self._reservoir_size
        if own_count + incoming_count <= size:
            # len(reservoir) == min(count, size), so both sides hold
            # every value they observed: concatenation is the exact
            # union sample.
            mine.extend(incoming)
            return
        # A-Res: key each value by u**(1/w) where w is how many
        # observations each reservoir slot represents, keep the top
        # ``size`` keys.  Deterministic via the name-seeded RNG as long
        # as merges happen in a fixed order (sorted names, task order).
        w_own = own_count / len(mine) if mine else 1.0
        w_in = incoming_count / len(incoming)
        rng = self._rng
        keyed = [(rng.random() ** (1.0 / w_own), v) for v in mine]
        keyed += [(rng.random() ** (1.0 / w_in), v) for v in incoming]
        keyed.sort(key=lambda kv: kv[0], reverse=True)
        self._reservoir = [v for _, v in keyed[:size]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.4g}>"


class Timer:
    """A histogram of elapsed wall-clock seconds with ``with`` support.

    Re-entrant: nested/overlapping uses keep a start-time stack, so a
    timer instance can wrap recursive or interleaved sections safely.
    """

    __slots__ = ("histogram", "_starts")

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self._starts: List[float] = []

    @property
    def name(self) -> str:
        return self.histogram.name

    def observe(self, seconds: float) -> None:
        """Record an externally measured duration."""
        self.histogram.observe(seconds)

    def __enter__(self) -> "Timer":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc) -> None:
        self.histogram.observe(time.perf_counter() - self._starts.pop())

    def snapshot(self, include_reservoir: bool = False) -> dict:
        out = self.histogram.snapshot(include_reservoir=include_reservoir)
        out["type"] = "timer"
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timer {self.name} n={self.histogram.count}>"


class MetricsRegistry:
    """A flat, lazily populated namespace of instruments.

    Instruments are created on first access and memoized; re-requesting a
    name returns the same instance, and requesting an existing name as a
    different instrument type raises ``TypeError``.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _get(self, name: str, cls, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
    ) -> Histogram:
        return self._get(
            name, Histogram, lambda: Histogram(name, bounds, reservoir_size)
        )

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer, lambda: Timer(Histogram(name)))

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Convenience: the scalar value of a counter/gauge (or default)."""
        metric = self._metrics.get(name)
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        return default

    def snapshot(self, include_reservoir: bool = False) -> Dict[str, dict]:
        """JSON-safe dump of every instrument, keyed by name.

        ``include_reservoir`` threads through to histogram/timer
        snapshots (see :meth:`Histogram.snapshot`); the default dump
        stays compact for manifests and reports.
        """
        return {
            name: self._metrics[name].snapshot(include_reservoir=include_reservoir)
            for name in sorted(self._metrics)
        }

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        This is how the parallel sweep runner keeps metrics truthful
        under multi-process fan-out: each worker runs with its own
        registry and ships the snapshot home with its task result.
        Merge semantics per instrument type:

        * counters add — totals equal what a serial run would count;
        * gauges add — run-scoped gauges (e.g. ``rep.kernel.*``) are
          per-run deltas, so summing matches the serial accumulation;
        * histograms/timers merge ``count``/``total``/``min``/``max``
          (and bucket counts when bounds match) exactly; quantiles
          reflect only locally observed values.

        Instruments are created on demand, so merging into a fresh
        registry reconstructs the full namespace.  Names are merged in
        sorted order, making the result independent of worker
        completion order.
        """
        for name in sorted(snapshot):
            snap = snapshot[name]
            kind = snap.get("type")
            if kind == "counter":
                self.counter(name).inc(float(snap.get("value") or 0.0))
            elif kind == "gauge":
                self.gauge(name).inc(float(snap.get("value") or 0.0))
            elif kind == "timer":
                self.timer(name).histogram.merge_snapshot_dict(snap)
            elif kind == "histogram":
                bounds = snap.get("bounds")
                self.histogram(name, bounds=bounds).merge_snapshot_dict(snap)
            # Unknown instrument types are skipped: a newer worker snapshot
            # must not crash an older parent.

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry metrics={len(self._metrics)}>"


# ----------------------------------------------------------------------
# Null objects — the zero-overhead disabled path.
# ----------------------------------------------------------------------
class _NullCounter(Counter):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def observe(self, value: float) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(_NullHistogram())

    def observe(self, seconds: float) -> None:
        pass

    def __enter__(self) -> "Timer":
        return self

    def __exit__(self, *exc) -> None:
        pass


class NullMetricsRegistry(MetricsRegistry):
    """The null object: accepts every call, records nothing.

    All instrument accessors return shared no-op singletons, so client
    code can be written against the registry interface unconditionally;
    perf-critical paths should still guard on :attr:`enabled`.
    """

    enabled = False

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()
    _TIMER = _NullTimer()

    def counter(self, name: str) -> Counter:
        return self._COUNTER

    def gauge(self, name: str) -> Gauge:
        return self._GAUGE

    def histogram(self, name, bounds=None, reservoir_size=DEFAULT_RESERVOIR_SIZE):
        return self._HISTOGRAM

    def timer(self, name: str) -> Timer:
        return self._TIMER

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> None:
        # No-op: merging into the shared null singletons would mutate them.
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullMetricsRegistry>"


#: Shared disabled registry — the default everywhere.
NULL_METRICS = NullMetricsRegistry()
