"""Convergence time-series: ring-buffer sampling of run dynamics.

End-of-run aggregates cannot show *when* subjective reputations converge
toward ground truth; this module records the trajectory.  A
:class:`TimeSeriesRecorder` holds numpy-backed columns in a fixed-size
ring buffer and samples a set of named probe callables at a sim-time
cadence; the community simulator attaches one per run with probes for
reputation coverage, rank-inversion rate vs ground truth, cache hit
rate, and ``net.*`` channel deltas (see
``CommunitySimulator._setup_timeseries``), plus selected metrics-registry
counters when metrics are on.

A :class:`TimeSeriesCollector` is the :class:`~repro.obs.Observability`
leg: it carries the sampling config across process boundaries (the
config is picklable; recorders are rebuilt fresh inside each worker),
collects one series per task, merges worker snapshots home in task
order, and exports CSV + JSON beside the run manifest.

Sampling never consumes a simulation RNG stream and runs on its own
periodic event (or rides the scenario's stats sampler), so enabling it
leaves every simulation result bit-identical (pinned by
``tests/test_timeseries.py``).  The one observable side effect is on
*telemetry itself*: probes that query reputations warm the reputation
cache, so ``rep.cache.*`` hit/miss counters include probe traffic.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

__all__ = [
    "NULL_TIMESERIES",
    "NullTimeSeriesCollector",
    "TIMESERIES_FILENAME",
    "TIMESERIES_SCHEMA",
    "TimeSeriesConfig",
    "TimeSeriesCollector",
    "TimeSeriesRecorder",
]

TIMESERIES_SCHEMA = "bartercast-timeseries/v1"
TIMESERIES_FILENAME = "timeseries.json"

#: Default ring capacity: a paper-profile run (7 days @ 6 h cadence) uses
#: 28 rows; 4096 leaves head-room for second-scale cadences before the
#: ring starts evicting the oldest samples.
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class TimeSeriesConfig:
    """Picklable sampling parameters shipped to parallel workers.

    ``interval_s`` is the sim-time cadence in seconds; ``None`` means
    "ride the scenario's stats sample interval" (one time-series row per
    figure sample).  ``capacity`` bounds the ring buffer; overflow evicts
    the oldest rows and counts them in ``samples_dropped``.
    """

    interval_s: Optional[float] = None
    capacity: int = DEFAULT_CAPACITY


class TimeSeriesRecorder:
    """Fixed-capacity columnar recorder for one simulation run.

    Register probes (``name -> fn(now) -> float``) before the first
    sample; each :meth:`sample` evaluates every probe once and appends a
    row to the ring.  Columns are float64 numpy arrays.
    """

    def __init__(self, label: str = "run", capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.label = label
        self.capacity = capacity
        #: Free-form JSON-safe tags (e.g. the reputation engine the run
        #: used); included in snapshots only when non-empty, so series
        #: from untagged runs serialize exactly as before.
        self.meta: Dict[str, object] = {}
        self._names: List[str] = []
        self._probes: List[Callable[[float], float]] = []
        self._times = np.zeros(capacity, dtype=np.float64)
        self._data: Optional[np.ndarray] = None
        self._total = 0

    def add_probe(self, name: str, fn: Callable[[float], float]) -> None:
        """Register a named probe; must happen before the first sample."""
        if self._data is not None:
            raise RuntimeError("cannot add probes after sampling started")
        if name in self._names:
            raise ValueError(f"duplicate probe {name!r}")
        self._names.append(name)
        self._probes.append(fn)

    @property
    def columns(self) -> Sequence[str]:
        return tuple(self._names)

    @property
    def samples(self) -> int:
        """Rows currently held (≤ capacity)."""
        return min(self._total, self.capacity)

    @property
    def samples_total(self) -> int:
        return self._total

    @property
    def samples_dropped(self) -> int:
        return max(0, self._total - self.capacity)

    @property
    def last_time(self) -> Optional[float]:
        if self._total == 0:
            return None
        return float(self._times[(self._total - 1) % self.capacity])

    def sample(self, now: float) -> None:
        """Evaluate every probe at sim-time ``now`` and append a row."""
        if self._data is None:
            self._data = np.zeros((self.capacity, len(self._probes)), dtype=np.float64)
        idx = self._total % self.capacity
        self._times[idx] = now
        row = self._data[idx]
        for i, fn in enumerate(self._probes):
            row[i] = float(fn(now))
        self._total += 1

    def _order(self) -> np.ndarray:
        """Indices of held rows in chronological order."""
        n = self.samples
        if self._total <= self.capacity:
            return np.arange(n)
        head = self._total % self.capacity
        return np.concatenate([np.arange(head, self.capacity), np.arange(head)])

    def times(self) -> np.ndarray:
        return self._times[self._order()]

    def column(self, name: str) -> np.ndarray:
        """One column, chronological."""
        i = self._names.index(name)
        if self._data is None:
            return np.zeros(0, dtype=np.float64)
        return self._data[self._order(), i]

    def last(self) -> Dict[str, float]:
        """The most recent row as ``{"t": ..., name: value, ...}``."""
        if self._total == 0:
            return {}
        idx = (self._total - 1) % self.capacity
        out = {"t": float(self._times[idx])}
        if self._data is not None:
            for i, name in enumerate(self._names):
                out[name] = float(self._data[idx, i])
        return out

    def to_dict(self) -> dict:
        """JSON-safe snapshot (chronological lists per column)."""
        order = self._order()
        series = {}
        if self._data is not None:
            for i, name in enumerate(self._names):
                series[name] = self._data[order, i].tolist()
        out = {
            "schema": TIMESERIES_SCHEMA,
            "label": self.label,
            "columns": list(self._names),
            "t": self._times[order].tolist(),
            "series": series,
            "samples_total": self._total,
            "samples_dropped": self.samples_dropped,
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        return out

    def write_csv(self, path: Union[str, Path]) -> Path:
        """Write the held rows as ``t,<col>,...`` CSV; returns the path."""
        path = Path(path)
        order = self._order()
        with path.open("w", encoding="utf-8") as fh:
            fh.write(",".join(["t"] + self._names) + "\n")
            for idx in order:
                cells = [repr(float(self._times[idx]))]
                if self._data is not None:
                    cells += [repr(float(v)) for v in self._data[idx]]
                fh.write(",".join(cells) + "\n")
        return path


def _series_csv_name(label: str) -> str:
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", label).strip("_") or "run"
    return f"timeseries_{slug}.csv"


def _snapshot_rows(snap: dict):
    """(header, rows) for a :meth:`TimeSeriesRecorder.to_dict` snapshot."""
    columns = list(snap.get("columns", []))
    times = snap.get("t", [])
    series = snap.get("series", {})
    cols = [series.get(name, []) for name in columns]
    rows = [
        [times[i]] + [col[i] for col in cols] for i in range(len(times))
    ]
    return ["t"] + columns, rows


class TimeSeriesCollector:
    """The Observability leg: config carrier + per-task series store."""

    enabled = True

    def __init__(self, config: Optional[TimeSeriesConfig] = None) -> None:
        self.config = config or TimeSeriesConfig()
        self._series: List[dict] = []
        self._recorders: List[TimeSeriesRecorder] = []
        self._pending_label: Optional[str] = None
        self._counter = 0

    # -- labeling ------------------------------------------------------

    def begin_task(self, label: str) -> None:
        """Name the series the next simulator-created recorder records."""
        self._pending_label = label

    def next_label(self) -> str:
        self._counter += 1
        label, self._pending_label = self._pending_label, None
        return label if label is not None else f"run-{self._counter}"

    # -- recorder lifecycle --------------------------------------------

    def attach(self, recorder: TimeSeriesRecorder) -> None:
        self._recorders.append(recorder)

    def merge(self, series: Optional[Sequence[dict]]) -> None:
        """Fold worker series snapshots home (call in task order)."""
        if series:
            self._series.extend(series)

    def series(self) -> List[dict]:
        """All finished series snapshots, merge-order then local-order."""
        return list(self._series) + [r.to_dict() for r in self._recorders]

    # -- export --------------------------------------------------------

    def summary(self) -> dict:
        """Small JSON-safe digest for the run manifest."""
        entries = []
        for snap in self.series():
            times = snap.get("t", [])
            final = {"t": times[-1]} if times else {}
            for name, values in snap.get("series", {}).items():
                if values:
                    final[name] = values[-1]
            entries.append(
                {
                    "label": snap.get("label"),
                    "samples": len(times),
                    "samples_dropped": snap.get("samples_dropped", 0),
                    "final": final,
                }
            )
        return {"interval_s": self.config.interval_s, "series": entries}

    def export(self, directory: Union[str, Path]) -> List[Path]:
        """Write one CSV per series plus a combined ``timeseries.json``.

        Returns the written paths (empty when nothing was sampled).
        """
        all_series = self.series()
        if not all_series:
            return []
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        for snap in all_series:
            header, rows = _snapshot_rows(snap)
            path = directory / _series_csv_name(snap.get("label") or "run")
            with path.open("w", encoding="utf-8") as fh:
                fh.write(",".join(header) + "\n")
                for row in rows:
                    fh.write(",".join(repr(float(v)) for v in row) + "\n")
            written.append(path)
        combined = directory / TIMESERIES_FILENAME
        combined.write_text(
            json.dumps(
                {"schema": TIMESERIES_SCHEMA, "series": all_series},
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        written.append(combined)
        return written


class NullTimeSeriesCollector(TimeSeriesCollector):
    """Disabled collector: simulators skip recorder setup entirely."""

    enabled = False

    def begin_task(self, label: str) -> None:
        pass

    def attach(self, recorder: TimeSeriesRecorder) -> None:  # pragma: no cover
        raise RuntimeError(
            "NullTimeSeriesCollector.attach called; guard with collector.enabled"
        )

    def merge(self, series: Optional[Sequence[dict]]) -> None:
        pass

    def export(self, directory: Union[str, Path]) -> List[Path]:
        return []


#: Shared disabled collector (the :data:`repro.obs.NULL_OBS` leg).
NULL_TIMESERIES = NullTimeSeriesCollector()
