"""Convert JSONL traces and profile spans to Chrome trace-event JSON.

The output loads directly into Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: a JSON object with a ``traceEvents`` list in the
Trace Event Format.  Two sources feed it:

* a JSONL trace written by :class:`~repro.obs.trace.TraceEmitter`
  (``repro ... --trace run.jsonl``) — spans become ``"X"`` (complete)
  events, instantaneous records become ``"i"`` (instant) events, one
  pseudo-thread per trace category;
* a profiler span log (:attr:`repro.obs.profile.Profiler.spans`) —
  phase activations become ``"X"`` events on their own pseudo-process.

Timestamps are microseconds of wall time since the emitter/profiler
started, which is what the Trace Event Format expects; the original
sim-time of each record is preserved in ``args.sim``.

CLI: ``repro chrome-trace run.jsonl -o run_chrome.json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.trace import read_trace

__all__ = [
    "profile_spans_to_chrome_events",
    "trace_to_chrome_events",
    "write_chrome_trace",
]

#: Pseudo-pids separating the two event sources in the viewer.
TRACE_PID = 1
PROFILE_PID = 2


def trace_to_chrome_events(header: dict, events: Iterable[dict]) -> List[dict]:
    """Map JSONL trace records to Chrome trace events.

    Records with a duration become complete (``"X"``) events whose start
    is ``wall - dur``; the rest become instant (``"i"``) events at
    ``wall``.  Each trace category gets its own thread row, named via
    metadata events.

    ``bc.message`` send/receive records that share a stamped ``msg_id``
    additionally get a flow arrow (``"s"``/``"f"`` pair) linking the
    send to each delivery — the cross-peer dissemination view.  Arrows
    are emitted only for *matched* pairs, so sampling (which can keep a
    send but drop its receive, or vice versa) never produces dangling
    flow ids.
    """
    out: List[dict] = [
        {
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"trace (seed {header.get('seed')})"},
        }
    ]
    tids: Dict[str, int] = {}
    sends: Dict[str, dict] = {}
    receives: Dict[str, List[dict]] = {}
    for event in events:
        cat = str(event.get("cat", "trace"))
        tid = tids.get(cat)
        if tid is None:
            tid = tids[cat] = len(tids) + 1
            out.append(
                {
                    "ph": "M",
                    "pid": TRACE_PID,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": cat},
                }
            )
        args = dict(event.get("attrs") or {})
        if event.get("sim") is not None:
            args["sim"] = event["sim"]
        wall_us = float(event.get("wall", 0.0)) * 1e6
        record = {
            "name": event.get("name", "event"),
            "cat": cat,
            "pid": TRACE_PID,
            "tid": tid,
            "args": args,
        }
        dur = event.get("dur")
        if dur is not None:
            dur_us = float(dur) * 1e6
            record.update(ph="X", ts=wall_us - dur_us, dur=dur_us)
        else:
            record.update(ph="i", ts=wall_us, s="t")
        out.append(record)
        if cat == "bc.message":
            msg_id = args.get("msg_id")
            if msg_id is not None:
                key = json.dumps(msg_id)
                name = record["name"]
                if name == "send":
                    sends.setdefault(key, record)
                elif name == "receive":
                    receives.setdefault(key, []).append(record)
    flow_id = 0
    for key in sorted(sends):
        send = sends[key]
        for recv in receives.get(key, ()):
            flow_id += 1
            start_ts = send["ts"]
            end_ts = max(recv["ts"], start_ts)
            out.append(
                {
                    "ph": "s",
                    "id": flow_id,
                    "name": "bc.msg",
                    "cat": "bc.message",
                    "pid": TRACE_PID,
                    "tid": send["tid"],
                    "ts": start_ts,
                }
            )
            out.append(
                {
                    "ph": "f",
                    "id": flow_id,
                    "bp": "e",
                    "name": "bc.msg",
                    "cat": "bc.message",
                    "pid": TRACE_PID,
                    "tid": recv["tid"],
                    "ts": end_ts,
                }
            )
    return out


def profile_spans_to_chrome_events(spans: Sequence[Sequence]) -> List[dict]:
    """Map profiler ``(path, depth, start_s, dur_s)`` spans to ``"X"``
    events on the profile pseudo-process."""
    out: List[dict] = [
        {
            "ph": "M",
            "pid": PROFILE_PID,
            "tid": 1,
            "name": "process_name",
            "args": {"name": "profile phases"},
        }
    ]
    for span in spans:
        path, depth, start, dur = span[0], span[1], span[2], span[3]
        out.append(
            {
                "name": str(path),
                "cat": "phase",
                "ph": "X",
                "pid": PROFILE_PID,
                "tid": 1,
                "ts": float(start) * 1e6,
                "dur": float(dur) * 1e6,
                "args": {"depth": depth},
            }
        )
    return out


def write_chrome_trace(
    out_path: Union[str, Path],
    trace_path: Optional[Union[str, Path]] = None,
    profile_spans: Optional[Sequence[Sequence]] = None,
) -> Path:
    """Write a Chrome trace JSON from either or both sources.

    Raises :class:`ValueError` if neither source is given, or if the
    JSONL trace has a bad/missing header (propagated from
    :func:`~repro.obs.trace.read_trace`).
    """
    events: List[dict] = []
    if trace_path is not None:
        header, records = read_trace(trace_path)
        events.extend(trace_to_chrome_events(header, records))
    if profile_spans:
        events.extend(profile_spans_to_chrome_events(profile_spans))
    if not events:
        raise ValueError("nothing to convert: no trace path and no profile spans")
    out_path = Path(out_path)
    out_path.write_text(
        json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}) + "\n",
        encoding="utf-8",
    )
    return out_path
