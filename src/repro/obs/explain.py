"""Explain a subjective reputation: flow decomposition + claim lineage.

``R_i(j)`` is an arctan of ``maxflow(j, i) − maxflow(i, j)`` on *i*'s
subjective graph.  This module decomposes the two flows into their
augmenting paths (:func:`~repro.graph.maxflow.maxflow_two_hop` with
``record_paths=True``), attaches the lineage of every gossip-learned
claim backing a path edge (recorded by
:class:`~repro.obs.provenance.ProvenanceRecorder` when the simulation
ran with provenance on), and computes leave-one-out reputation deltas —
what ``R_i(j)`` would be without each intermediary peer — from the
recorded paths, with no re-solve.

For the default ``two_hop`` kernel the decomposition and the
leave-one-out deltas are exact (≤2-hop paths are edge-disjoint per
intermediary; DESIGN.md §12).  For the iterative kernels the path set
depends on augmentation order and the deltas are lower bounds; the
rendered output says so.

The module is deliberately decoupled from :mod:`repro.core`: it duck-
types the node (``peer_id``, ``graph``, ``config.metric``, ``shared``),
so importing it never drags the simulator stack in (and no import cycle
with :mod:`repro.obs` can form).

Entry points: :func:`explain_reputation` builds an :class:`Explanation`,
:func:`render_explanation` renders it as text for the ``repro explain``
subcommand, and :meth:`Explanation.to_json` backs ``--export``.

When the CLI is asked for more than one reputation mechanism
(``repro explain --engine bartercast,ratio``), :func:`explain_engines`
evaluates every requested :class:`~repro.core.engines.base
.ReputationEngine` against the *same* subjective state and
:func:`render_engine_comparison` prints the side-by-side verdicts —
the direct answer to "why did mechanism A ban this peer when B
didn't": each mechanism's score, its own ban threshold (the ratio
engine bans on a share-ratio floor, not the sweep's δ), and the
components behind the score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from repro.graph.maxflow import FlowResult, leave_one_out_values
from repro.obs.provenance import ClaimLineage, _json_safe

__all__ = [
    "EdgeEvidence",
    "EngineExplanation",
    "Explanation",
    "explain_engines",
    "explain_reputation",
    "render_engine_comparison",
    "render_explanation",
    "top_subjects",
]

PeerId = Hashable

MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class EdgeEvidence:
    """Why the evaluator believes one directed edge of a flow path.

    ``origin`` is ``"private"`` for edges incident to the evaluator
    (authoritative, from its own transfer accounting — hop count 0) and
    ``"gossip"`` for third-party edges, whose live claims' lineage is
    listed in ``lineage`` (empty when the run recorded no provenance).
    """

    src: PeerId
    dst: PeerId
    value: float
    origin: str
    lineage: Tuple[ClaimLineage, ...] = ()

    def to_json(self) -> dict:
        return {
            "src": _json_safe(self.src),
            "dst": _json_safe(self.dst),
            "value": self.value,
            "origin": self.origin,
            "lineage": [entry.to_json() for entry in self.lineage],
        }


@dataclass
class Explanation:
    """The full decomposition of one subjective reputation ``R_i(j)``."""

    evaluator: PeerId
    subject: PeerId
    reputation: float
    inflow: float
    outflow: float
    unit_bytes: float
    kernel: str
    exact: bool
    in_result: FlowResult
    out_result: FlowResult
    #: ``{intermediary: R_i(j) recomputed without it}`` from recorded paths.
    leave_one_out: Dict[PeerId, float]
    #: Evidence for every distinct edge appearing on any recorded path.
    evidence: List[EdgeEvidence]

    def to_json(self) -> dict:
        """JSON document for ``repro explain --export``."""
        return {
            "evaluator": _json_safe(self.evaluator),
            "subject": _json_safe(self.subject),
            "reputation": self.reputation,
            "inflow_bytes": self.inflow,
            "outflow_bytes": self.outflow,
            "unit_bytes": self.unit_bytes,
            "kernel": self.kernel,
            "exact": self.exact,
            "in_paths": [p.to_json() for p in self.in_result.paths],
            "out_paths": [p.to_json() for p in self.out_result.paths],
            "leave_one_out": {
                str(_json_safe(v)): rep for v, rep in self.leave_one_out.items()
            },
            "evidence": [e.to_json() for e in self.evidence],
        }


def explain_reputation(node, subject: PeerId) -> Explanation:
    """Decompose ``R_node(subject)`` on the node's subjective graph.

    ``node`` is any object with ``peer_id``, ``graph``, ``shared`` and
    ``config.metric`` (a :class:`~repro.core.node.BarterCastNode` in
    practice).  Claim lineage is attached when the node's shared history
    recorded provenance; the flow decomposition works either way.
    """
    me = node.peer_id
    if subject == me:
        raise ValueError("a peer has no reputation at itself")
    metric = node.config.metric
    in_result = metric.maxflow_result(node.graph, subject, me, record_paths=True)
    out_result = metric.maxflow_result(node.graph, me, subject, record_paths=True)
    inflow, outflow = in_result.value, out_result.value
    reputation = metric.scale(inflow - outflow)

    in_loo = leave_one_out_values(in_result)
    out_loo = leave_one_out_values(out_result)
    leave_one_out = {
        v: metric.scale(in_loo.get(v, inflow) - out_loo.get(v, outflow))
        for v in sorted(set(in_loo) | set(out_loo), key=repr)
    }

    evidence: List[EdgeEvidence] = []
    seen_edges = set()
    for result in (in_result, out_result):
        for path in result.paths:
            for edge in zip(path.nodes, path.nodes[1:]):
                if edge in seen_edges:
                    continue
                seen_edges.add(edge)
                src, dst = edge
                if src == me or dst == me:
                    evidence.append(
                        EdgeEvidence(
                            src=src,
                            dst=dst,
                            value=node.graph.capacity(src, dst),
                            origin="private",
                        )
                    )
                else:
                    lineage = node.shared.lineage_of(src, dst)
                    evidence.append(
                        EdgeEvidence(
                            src=src,
                            dst=dst,
                            value=node.graph.capacity(src, dst),
                            origin="gossip",
                            lineage=tuple(
                                lineage[r] for r in sorted(lineage, key=repr)
                            ),
                        )
                    )
    return Explanation(
        evaluator=me,
        subject=subject,
        reputation=reputation,
        inflow=inflow,
        outflow=outflow,
        unit_bytes=metric.unit_bytes,
        kernel=metric.kernel,
        exact=metric.kernel == "two_hop",
        in_result=in_result,
        out_result=out_result,
        leave_one_out=leave_one_out,
        evidence=evidence,
    )


@dataclass
class EngineExplanation:
    """One mechanism's verdict on one subject, from shared evidence.

    Every engine reads the same subjective graph, so differing verdicts
    come from the mechanisms themselves — which is exactly what the
    comparison is for.  ``threshold`` is the engine's *effective* ban
    threshold (the sweep δ pushed through
    :meth:`~repro.core.engines.base.ReputationEngine.effective_delta`),
    and ``banned`` is the resulting verdict ``score < threshold``.
    """

    engine: str
    evaluator: PeerId
    subject: PeerId
    score: float
    threshold: float
    banned: bool
    inflow: float
    outflow: float
    components: Dict[str, object]

    def to_json(self) -> dict:
        return {
            "engine": self.engine,
            "evaluator": _json_safe(self.evaluator),
            "subject": _json_safe(self.subject),
            "score": self.score,
            "threshold": self.threshold,
            "banned": self.banned,
            "inflow_bytes": self.inflow,
            "outflow_bytes": self.outflow,
            "components": {k: _json_safe(v) for k, v in self.components.items()},
        }


def explain_engines(
    node, subject: PeerId, engine_names, delta: float
) -> List[EngineExplanation]:
    """Evaluate ``subject`` under every named mechanism on ``node``'s state.

    The node's own running engine is reused as-is; other mechanisms are
    built fresh and attached standalone (attachment only binds the node
    and initializes the engine's private memo — it never mutates node
    state), so every engine scores the *same* subjective graph.  ``delta``
    is the sweep-style ban threshold, translated per engine via
    ``effective_delta``.
    """
    from repro.core.engines import make_engine  # lazy: keep module import-light

    out: List[EngineExplanation] = []
    for name in engine_names:
        if name == getattr(node, "engine_name", "bartercast"):
            eng = node.active_engine()
        else:
            eng = make_engine(name).attach(node)
        score = eng.reputation_of(subject)
        threshold = eng.effective_delta(delta)
        inflow, outflow = eng.evidence_flows(subject)
        out.append(
            EngineExplanation(
                engine=eng.name,
                evaluator=node.peer_id,
                subject=subject,
                score=score,
                threshold=threshold,
                banned=score < threshold,
                inflow=inflow,
                outflow=outflow,
                components=eng.explain_components(subject),
            )
        )
    return out


def top_subjects(node, candidates, k: int) -> List[PeerId]:
    """The ``k`` candidates with the largest ``|R_node(j)|``.

    Deterministic: ties break on peer-id representation.  Used by the
    CLI when ``--subject`` is omitted.
    """
    reps = node.reputations_of(candidates)
    scored = sorted(reps.items(), key=lambda it: (-abs(it[1]), repr(it[0])))
    return [j for j, _ in scored[: max(0, k)]]


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
def _mb(nbytes: float) -> str:
    return f"{nbytes / MB:.1f} MB"


def _path_line(path) -> str:
    route = " -> ".join(str(n) for n in path.nodes)
    if len(path.nodes) == 2:
        via = "direct"
    else:
        via = "via " + ", ".join(str(v) for v in path.nodes[1:-1])
    b_src, b_dst = path.bottleneck
    residual = ", ".join(_mb(r) for r in path.residuals)
    return (
        f"  {route:<24} {via:<12} {_mb(path.flow):>12}"
        f"   bottleneck {b_src}->{b_dst}, residuals [{residual}]"
    )


def _lineage_line(entry: ClaimLineage) -> str:
    msg = entry.msg_id
    if isinstance(msg, tuple) and len(msg) == 2:
        msg = f"{msg[0]}#{msg[1]}"
    return (
        f"      claim by {entry.reporter}: {_mb(entry.value)} "
        f"(msg {msg}, reported t={entry.reported_at:.0f}s, "
        f"received t={entry.received_at:.0f}s, hop {entry.hops}, "
        f"superseded {entry.superseded})"
    )


def render_explanation(expl: Explanation) -> str:
    """Human-readable rendering for the ``repro explain`` subcommand."""
    lines: List[str] = []
    i, j = expl.evaluator, expl.subject
    lines.append(f"== R_{i}({j}): {expl.reputation:+.4f} ==")
    lines.append(
        f"kernel {expl.kernel} | unit {_mb(expl.unit_bytes)} | "
        f"inflow {_mb(expl.inflow)} | outflow {_mb(expl.outflow)} | "
        f"diff {_mb(expl.inflow - expl.outflow)}"
    )
    lines.append("")
    for label, result in (
        (f"inflow maxflow({j} -> {i})", expl.in_result),
        (f"outflow maxflow({i} -> {j})", expl.out_result),
    ):
        lines.append(f"{label} = {_mb(result.value)} over {len(result.paths)} path(s):")
        if not result.paths:
            lines.append("  (no flow)")
        for path in result.paths:
            lines.append(_path_line(path))
        lines.append("")
    if expl.leave_one_out:
        tag = "exact" if expl.exact else "lower bound (non-2-hop kernel)"
        lines.append(f"leave-one-out deltas from recorded paths ({tag}):")
        for v, rep in expl.leave_one_out.items():
            delta = rep - expl.reputation
            lines.append(
                f"  without {v}: R = {rep:+.4f} (delta {delta:+.4f})"
            )
        lines.append("")
    lines.append("edge evidence:")
    any_lineage = False
    for ev in expl.evidence:
        lines.append(
            f"  edge {ev.src}->{ev.dst} = {_mb(ev.value)} [{ev.origin}]"
        )
        for entry in ev.lineage:
            any_lineage = True
            lines.append(_lineage_line(entry))
    if not any_lineage and any(ev.origin == "gossip" for ev in expl.evidence):
        lines.append(
            "  (no claim lineage recorded — run the scenario with --provenance)"
        )
    return "\n".join(lines)


def _component_line(key: str, value: object) -> str:
    if key.endswith("_bytes") and isinstance(value, (int, float)):
        return f"    {key}: {_mb(float(value))}"
    if value is None:
        return f"    {key}: n/a"
    if isinstance(value, float):
        return f"    {key}: {value:+.4f}"
    return f"    {key}: {value}"


def render_engine_comparison(verdicts: List[EngineExplanation]) -> str:
    """Side-by-side mechanism verdicts for one (evaluator, subject) pair.

    Leads with the headline disagreement ("ratio bans 7, bartercast
    keeps it"), then one block per engine: score vs its own effective
    threshold, evidence totals, and the score decomposition.
    """
    if not verdicts:
        return ""
    i, j = verdicts[0].evaluator, verdicts[0].subject
    lines: List[str] = []
    banned = [v.engine for v in verdicts if v.banned]
    kept = [v.engine for v in verdicts if not v.banned]
    lines.append(f"-- mechanism verdicts on R_{i}({j}) --")
    if banned and kept:
        lines.append(
            f"  DISAGREEMENT: {', '.join(banned)} ban(s) {j}; "
            f"{', '.join(kept)} do(es) not"
        )
    elif banned:
        lines.append(f"  every mechanism bans {j}")
    else:
        lines.append(f"  no mechanism bans {j}")
    for v in verdicts:
        verdict = "BAN" if v.banned else "keep"
        op = "<" if v.banned else ">="
        lines.append(
            f"  [{v.engine}] {verdict}: score {v.score:+.4f} {op} "
            f"threshold {v.threshold:+.4f} | evidence in {_mb(v.inflow)} / "
            f"out {_mb(v.outflow)}"
        )
        for key, value in v.components.items():
            lines.append(_component_line(key, value))
    return "\n".join(lines)
