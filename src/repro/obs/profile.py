"""Nestable phase/kernel profiling with deterministic overhead.

The profiler answers "where does wall-clock go inside a run?" without
perturbing the run itself: it never touches a simulation RNG stream, and
every hook is guarded by a cached ``None`` check so a disabled profiler
costs one attribute load per instrumented block (the same discipline as
:mod:`repro.obs.metrics`).

Three observation surfaces:

* :meth:`Profiler.phase` — a nestable context manager for coarse phases
  (``bt.round`` / ``choke`` / ``transfer`` / ``gossip``).  Phases
  aggregate per slash-joined path (``bt.round/choke``) with wall + CPU
  time and *self* wall (wall minus time attributed to child phases), and
  feed a bounded span log for Chrome-trace export
  (:mod:`repro.obs.chrome_trace`).
* :meth:`Profiler.observe_event` — allocation-free per-label aggregation
  for the engine's event dispatch loop (thousands of events per run; a
  span each would swamp the log).
* :meth:`Profiler.observe_kernel` — per-kernel invocation duration
  histograms (log-spaced buckets + deterministic reservoir quantiles)
  for the maxflow kernel twins.

The maxflow kernels live far below the :class:`~repro.obs.Observability`
bundle, so they find the profiler through a module-level hook: wrap the
run in :func:`activate` (the CLI and the parallel workers do) and
decorated kernels check ``ACTIVE`` — one module-attribute load plus a
``None`` test per call when profiling is off, the same cost class as the
existing ``KERNEL_INVOCATIONS`` counter increment.

Snapshots are JSON-safe dicts; :meth:`Profiler.merge_snapshot` folds a
worker's snapshot into the parent in task order, so a ``--jobs N`` sweep
reports fleet-wide phase totals and kernel quantiles.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.obs.metrics import Histogram

__all__ = [
    "ACTIVE",
    "KERNEL_BOUNDS",
    "NULL_PROFILER",
    "NullProfiler",
    "Profiler",
    "activate",
    "set_active_profiler",
]

#: Log-spaced bucket bounds (seconds) for kernel invocation histograms:
#: half-decade steps from 1µs to 1s cover a scalar 2-hop lookup through a
#: full-graph Ford–Fulkerson solve.
KERNEL_BOUNDS = tuple(10.0 ** (e / 2.0) for e in range(-12, 1))

#: Span-log cap: at ~4 phases per round a week-long paper run stays well
#: under this; beyond it spans are counted but dropped (aggregates are
#: unaffected).
DEFAULT_MAX_SPANS = 32768


class _Agg:
    """One aggregation cell (a phase path or an event label)."""

    __slots__ = ("count", "wall", "cpu", "self_wall", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.wall = 0.0
        self.cpu = 0.0
        self.self_wall = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, wall: float, cpu: float, self_wall: float) -> None:
        self.count += 1
        self.wall += wall
        self.cpu += cpu
        self.self_wall += self_wall
        if wall < self.min:
            self.min = wall
        if wall > self.max:
            self.max = wall

    def merge(self, snap: dict) -> None:
        count = int(snap.get("count") or 0)
        if count <= 0:
            return
        self.count += count
        self.wall += float(snap.get("wall_s") or 0.0)
        self.cpu += float(snap.get("cpu_s") or 0.0)
        self.self_wall += float(snap.get("self_wall_s") or 0.0)
        lo, hi = snap.get("min_s"), snap.get("max_s")
        if lo is not None and lo < self.min:
            self.min = float(lo)
        if hi is not None and hi > self.max:
            self.max = float(hi)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "wall_s": self.wall,
            "cpu_s": self.cpu,
            "self_wall_s": self.self_wall,
            "min_s": self.min if self.count else None,
            "max_s": self.max if self.count else None,
        }


class _Phase:
    """Stack frame for one :meth:`Profiler.phase` activation."""

    __slots__ = ("_profiler", "name", "path", "depth", "t0", "c0", "child_wall")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self.name = name
        self.path = name
        self.depth = 0
        self.t0 = 0.0
        self.c0 = 0.0
        self.child_wall = 0.0

    def __enter__(self) -> "_Phase":
        prof = self._profiler
        stack = prof._stack
        if stack:
            parent = stack[-1]
            self.path = parent.path + "/" + self.name
            self.depth = parent.depth + 1
        stack.append(self)
        self.t0 = time.perf_counter()
        self.c0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self.t0
        cpu = time.process_time() - self.c0
        prof = self._profiler
        prof._stack.pop()
        if prof._stack:
            prof._stack[-1].child_wall += wall
        agg = prof._phases.get(self.path)
        if agg is None:
            agg = prof._phases[self.path] = _Agg()
        agg.add(wall, cpu, wall - self.child_wall)
        prof._log_span(self.path, self.depth, self.t0, wall)


class Profiler:
    """Phase/event/kernel wall+CPU aggregator with a bounded span log."""

    enabled = True

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self._stack: List[_Phase] = []
        self._phases: Dict[str, _Agg] = {}
        self._events: Dict[str, _Agg] = {}
        self._kernels: Dict[str, Histogram] = {}
        self._t0 = time.perf_counter()
        self._max_spans = max_spans
        #: ``(path, depth, start_offset_s, dur_s)`` per completed phase,
        #: oldest first, capped at ``max_spans``.
        self.spans: List[tuple] = []
        self.spans_dropped = 0

    # -- observation ---------------------------------------------------

    def phase(self, name: str) -> _Phase:
        """A nestable timing context; ``with profiler.phase("choke"): ...``."""
        return _Phase(self, name)

    def observe_event(self, label: str, duration: float) -> None:
        """Aggregate one engine-dispatch callback (no span log entry)."""
        agg = self._events.get(label)
        if agg is None:
            agg = self._events[label] = _Agg()
        agg.add(duration, 0.0, duration)

    def observe_kernel(self, name: str, duration: float) -> None:
        """Record one maxflow kernel invocation duration."""
        hist = self._kernels.get(name)
        if hist is None:
            hist = self._kernels[name] = Histogram(
                f"prof.kernel.{name}", bounds=KERNEL_BOUNDS
            )
        hist.observe(duration)

    def _log_span(self, path: str, depth: int, t0: float, dur: float) -> None:
        if len(self.spans) < self._max_spans:
            self.spans.append((path, depth, t0 - self._t0, dur))
        else:
            self.spans_dropped += 1

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self, include_spans: bool = False) -> dict:
        """JSON-safe aggregate view (spans opt-in: they are bulky and
        worker span clocks are not comparable across processes)."""
        out = {
            "phases": {p: a.snapshot() for p, a in sorted(self._phases.items())},
            "events": {l: a.snapshot() for l, a in sorted(self._events.items())},
            "kernels": {
                name: hist.snapshot(include_reservoir=True)
                for name, hist in sorted(self._kernels.items())
            },
            "spans_dropped": self.spans_dropped,
        }
        if include_spans:
            out["spans"] = [list(span) for span in self.spans]
        return out

    def merge_snapshot(self, snap: Optional[dict]) -> None:
        """Fold a worker's :meth:`snapshot` into this profiler.

        Call in deterministic (task) order: kernel histogram reservoirs
        merge through the same seeded path as
        :meth:`~repro.obs.metrics.Histogram.merge_snapshot_dict`.
        """
        if not snap:
            return
        for path, sub in snap.get("phases", {}).items():
            agg = self._phases.get(path)
            if agg is None:
                agg = self._phases[path] = _Agg()
            agg.merge(sub)
        for label, sub in snap.get("events", {}).items():
            agg = self._events.get(label)
            if agg is None:
                agg = self._events[label] = _Agg()
            agg.merge(sub)
        for name, sub in snap.get("kernels", {}).items():
            hist = self._kernels.get(name)
            if hist is None:
                hist = self._kernels[name] = Histogram(
                    f"prof.kernel.{name}", bounds=sub.get("bounds") or KERNEL_BOUNDS
                )
            hist.merge_snapshot_dict(sub)
        self.spans_dropped += int(snap.get("spans_dropped") or 0)

    def summary(self) -> dict:
        """Aggregates-only view for the run manifest (never spans)."""
        return self.snapshot(include_spans=False)


class NullProfiler(Profiler):
    """Disabled profiler: every hook is a no-op, snapshots are empty."""

    enabled = False

    def phase(self, name: str):  # pragma: no cover - trivial
        raise RuntimeError(
            "NullProfiler.phase called; guard call sites with profiler.enabled"
        )

    def observe_event(self, label: str, duration: float) -> None:
        pass

    def observe_kernel(self, name: str, duration: float) -> None:
        pass

    def merge_snapshot(self, snap: Optional[dict]) -> None:
        pass


#: Shared disabled profiler (the :data:`repro.obs.NULL_OBS` leg).
NULL_PROFILER = NullProfiler()

#: The process-wide profiler the maxflow kernels report to, or ``None``.
#: Kernels read this directly (module attribute + ``None`` check) so the
#: hot scalar path pays nothing measurable when profiling is off.
ACTIVE: Optional[Profiler] = None


def set_active_profiler(profiler: Optional[Profiler]) -> None:
    """Install ``profiler`` as the kernel-level hook (``None`` clears)."""
    global ACTIVE
    ACTIVE = profiler if profiler is not None and profiler.enabled else None


@contextmanager
def activate(profiler: Optional[Profiler]):
    """Scope ``profiler`` as the active kernel hook; restores the prior
    hook on exit.  A disabled/``None`` profiler makes this a no-op guard,
    so callers can wrap unconditionally."""
    global ACTIVE
    previous = ACTIVE
    set_active_profiler(profiler)
    try:
        yield profiler
    finally:
        ACTIVE = previous
