"""repro — a full reproduction of *BarterCast: A practical approach to
prevent lazy freeriding in P2P networks* (Meulpolder, Pouwelse, Epema,
Sips; IPDPS 2009).

Quick start::

    from repro.core import BarterCastNode, MB

    alice, bob = BarterCastNode("alice"), BarterCastNode("bob")
    alice.record_upload("bob", 200 * MB, now=10.0)
    bob.record_download("alice", 200 * MB, now=10.0)
    print(bob.reputation_of("alice"))   # positive: alice served bob

    # Third parties learn through gossip:
    carol = BarterCastNode("carol")
    carol.receive_message(bob.create_message(now=20.0))

Subpackages
-----------
:mod:`repro.core`
    BarterCast itself: private/shared histories, message protocol, the
    arctan maxflow reputation metric, rank/ban policies, adversaries.
:mod:`repro.graph`
    Transfer graphs and the maxflow kernels (Ford-Fulkerson, depth-bounded
    variant, closed-form 2-hop).
:mod:`repro.sim`
    Deterministic discrete-event kernel and seeded RNG streams.
:mod:`repro.pss`
    BuddyCast-style epidemic peer sampling.
:mod:`repro.bittorrent`
    Piece-level BitTorrent community simulator (choking, rarest-first,
    bandwidth model, trace-driven sessions).
:mod:`repro.traces`
    Synthetic filelist.org-style community traces.
:mod:`repro.deployment`
    Synthetic Tribler-like deployment + measurement crawl (Figure 4).
:mod:`repro.experiments`
    One driver per paper figure; ``python -m repro.cli all`` regenerates
    everything.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
