"""Seeded random-number streams.

Reproducibility discipline: every stochastic component of the simulation
(trace generation, gossip partner selection, optimistic-unchoke rotation,
adversary assignment, ...) draws from its *own* named stream derived from a
single root seed.  Adding randomness to one component therefore never
perturbs the draws seen by another, which keeps A/B comparisons (e.g. rank
policy vs ban policy on the same trace) paired and low-variance.

Streams are spawned with ``numpy.random.SeedSequence`` so the per-stream
generators are statistically independent by construction.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, TypeVar

import numpy as np

__all__ = ["RngStream", "RngRegistry"]

T = TypeVar("T")


class RngStream:
    """A thin convenience wrapper over :class:`numpy.random.Generator`.

    Adds the handful of list-oriented helpers the simulators need
    (choice over arbitrary Python sequences, shuffles returning new lists)
    while exposing the underlying generator for vectorized draws.
    """

    def __init__(self, generator: np.random.Generator, name: str = "") -> None:
        self._gen = generator
        self.name = name

    @property
    def generator(self) -> np.random.Generator:
        """The underlying NumPy generator, for vectorized sampling."""
        return self._gen

    # -- scalar draws ---------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """A float drawn uniformly from ``[low, high)``."""
        return float(self._gen.uniform(low, high))

    def random(self) -> float:
        """A float drawn uniformly from ``[0, 1)``."""
        return float(self._gen.random())

    def randint(self, low: int, high: int) -> int:
        """An integer drawn uniformly from ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def exponential(self, mean: float) -> float:
        """An exponential variate with the given mean."""
        return float(self._gen.exponential(mean))

    def lognormal(self, mean: float, sigma: float) -> float:
        """A log-normal variate with underlying normal ``(mean, sigma)``."""
        return float(self._gen.lognormal(mean, sigma))

    def pareto(self, shape: float, scale: float = 1.0) -> float:
        """A Pareto (Lomax + scale) variate: ``scale * (1 + X)`` with X~Lomax."""
        return float(scale * (1.0 + self._gen.pareto(shape)))

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        return bool(self._gen.random() < p)

    # -- sequence helpers -------------------------------------------------
    def choice(self, seq: Sequence[T]) -> T:
        """A uniformly random element of a non-empty sequence."""
        if len(seq) == 0:
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self._gen.integers(0, len(seq)))]

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """``k`` distinct elements drawn without replacement.

        ``k`` is clamped to ``len(seq)``.
        """
        k = min(k, len(seq))
        if k == 0:
            return []
        idx = self._gen.choice(len(seq), size=k, replace=False)
        return [seq[int(i)] for i in idx]

    def shuffled(self, seq: Sequence[T]) -> list[T]:
        """A new list with the elements of ``seq`` in random order."""
        out = list(seq)
        self._gen.shuffle(out)  # type: ignore[arg-type]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngStream {self.name!r}>"


class RngRegistry:
    """Derives named, independent :class:`RngStream` objects from one seed.

    The same ``(root_seed, name)`` pair always yields the same stream, no
    matter in which order streams are requested — the registry hashes the
    name into the spawn key rather than using request order.

    Examples
    --------
    >>> reg = RngRegistry(42)
    >>> a = reg.stream("gossip")
    >>> b = reg.stream("choker")
    >>> a is reg.stream("gossip")
    True
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, RngStream] = {}

    def stream(self, name: str) -> RngStream:
        """Return the stream for ``name``, creating it deterministically."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        # Derive a child seed from the (root, name) pair deterministically.
        name_key = [ord(c) for c in name] or [0]
        seq = np.random.SeedSequence([self.root_seed, *name_key])
        stream = RngStream(np.random.default_rng(seq), name=name)
        self._streams[name] = stream
        return stream

    def spawn(self, name: str, index: int) -> RngStream:
        """A per-entity stream, e.g. one per peer: ``spawn('peer', 17)``."""
        return self.stream(f"{name}#{index}")

    def task_seed(self, task_id: str) -> int:
        """A deterministic root seed for an independently scheduled task.

        The parallel sweep runner derives each task's seed from the
        ``(root_seed, task_id)`` pair, never from worker identity or
        execution order, so a task's random streams are the same whether
        it runs inline, in any worker process, or in any schedule
        position.  The returned value is a plain non-negative int (safe
        to pickle and to feed back into ``RngRegistry``).
        """
        name_key = [ord(c) for c in task_id] or [0]
        # The sentinel keeps task seeds disjoint from stream spawn keys.
        seq = np.random.SeedSequence([self.root_seed, 0x7A5C, *name_key])
        return int(seq.generate_state(1, np.uint64)[0] & 0x7FFF_FFFF_FFFF_FFFF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngRegistry seed={self.root_seed} streams={len(self._streams)}>"
