"""The discrete-event simulator core.

A :class:`Simulator` owns a clock and a priority queue of :class:`Event`
objects.  Client code schedules callbacks at absolute or relative simulated
times and then drives the simulation with :meth:`Simulator.run`,
:meth:`Simulator.run_until`, or :meth:`Simulator.step`.

Design notes
------------
The queue is a binary heap keyed on ``(time, sequence)`` where ``sequence``
is a monotonically increasing insertion counter.  This makes event ordering
*total* and *deterministic*: two events scheduled for the same instant fire
in the order they were scheduled, independent of callback identity, which is
essential for reproducible trace-based experiments.

Cancellation is handled by tombstoning: ``Event.cancel()`` marks the event
dead and the main loop skips dead events when they surface.  This is O(1)
per cancellation and keeps the heap operations simple.  To bound memory on
cancel-heavy workloads, the simulator counts live tombstones and compacts
the heap (filter + ``heapify``) whenever dead events outnumber live ones
and the queue is non-trivially sized; compaction preserves the
``(time, seq)`` total order exactly, so firing order is unaffected.

Observability: pass an :class:`~repro.obs.Observability` bundle to count
and time dispatched callbacks (``sim.events`` counter, ``sim.dispatch_s``
timer) and to emit sampled per-dispatch trace events (category
``sim.event``, carrying the event label and simulated time).  With the
default :data:`~repro.obs.NULL_OBS` the dispatch loop takes a separate
uninstrumented branch whose only cost is one attribute check per event.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.obs import NULL_OBS, Observability

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid use of the simulation kernel.

    Examples: scheduling an event in the simulated past, or re-entrantly
    calling :meth:`Simulator.run` from inside an event callback.
    """


@dataclass(order=False)
class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code normally only keeps a handle to
    be able to :meth:`cancel` the event.

    Attributes
    ----------
    time:
        Absolute simulated time at which the callback fires.
    seq:
        Insertion-order tiebreaker; unique per simulator.
    callback:
        A zero-argument callable invoked when the event fires.
    label:
        Optional human-readable tag, used in ``repr`` and error messages.
    """

    time: float
    seq: int
    callback: Callable[[], None]
    label: str = ""
    _cancelled: bool = field(default=False, repr=False)
    _on_cancel: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )

    def cancel(self) -> None:
        """Mark this event dead; it will be skipped when it surfaces."""
        if not self._cancelled:
            self._cancelled = True
            if self._on_cancel is not None:
                self._on_cancel()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" {self.label!r}" if self.label else ""
        state = " cancelled" if self._cancelled else ""
        return f"<Event t={self.time:.3f}{tag}{state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock (seconds).  Defaults to 0.
    obs:
        Observability bundle; the disabled default adds no dispatch
        instrumentation.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    2
    >>> fired
    [1.0, 5.0]
    """

    #: Queues smaller than this are never compacted — the rebuild would
    #: cost more than the tombstones' memory is worth.
    COMPACT_MIN_QUEUE = 64

    def __init__(self, start_time: float = 0.0, obs: Optional[Observability] = None) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._running = False
        self._events_fired = 0
        self._tombstones = 0
        self._compactions = 0
        self.obs = obs if obs is not None else NULL_OBS
        metrics = self.obs.metrics
        self._m_events = metrics.counter("sim.events") if metrics.enabled else None
        self._t_dispatch = metrics.timer("sim.dispatch_s") if metrics.enabled else None
        tracer = self.obs.tracer
        self._tr_event = tracer.category("sim.event") if tracer.enabled else None
        profiler = self.obs.profiler
        self._profiler = profiler if profiler.enabled else None
        self._instrumented = (
            self._m_events is not None
            or self._tr_event is not None
            or self._profiler is not None
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_fired

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _, _, ev in self._queue if not ev.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_dead_head()
        if not self._queue:
            return None
        return self._queue[0][0]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        ``delay`` must be non-negative and finite.
        """
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Raises
        ------
        SimulationError
            If ``time`` lies in the simulated past or is not finite.
        """
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(
            time=float(time),
            seq=next(self._counter),
            callback=callback,
            label=label,
            _on_cancel=self._note_cancel,
        )
        heapq.heappush(self._queue, (event.time, event.seq, event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next live event.

        Returns ``True`` if an event fired, ``False`` if the queue was empty.
        """
        self._drop_dead_head()
        if not self._queue:
            return False
        time, _, event = heapq.heappop(self._queue)
        self._now = time
        self._events_fired += 1
        if self._instrumented:
            self._dispatch_instrumented(event)
        else:
            event.callback()
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` callbacks fired).

        Returns the number of events fired by this call.
        """
        return self._loop(until=None, max_events=max_events)

    def run_until(self, until: float, max_events: Optional[int] = None) -> int:
        """Run all events with ``time <= until`` and advance the clock to ``until``.

        The clock is left at exactly ``until`` even if the queue drains
        earlier, so periodic measurement code can rely on the final time.
        Returns the number of events fired by this call.
        """
        if until < self._now:
            raise SimulationError(
                f"cannot run backwards: until={until} < now={self._now}"
            )
        fired = self._loop(until=until, max_events=max_events)
        if self._now < until:
            self._now = until
        return fired

    def _loop(self, until: Optional[float], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        fired = 0
        instrumented = self._instrumented
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    break
                self._drop_dead_head()
                if not self._queue:
                    break
                if until is not None and self._queue[0][0] > until:
                    break
                time, _, event = heapq.heappop(self._queue)
                self._now = time
                self._events_fired += 1
                if instrumented:
                    self._dispatch_instrumented(event)
                else:
                    event.callback()
                fired += 1
        finally:
            self._running = False
        return fired

    def _dispatch_instrumented(self, event: Event) -> None:
        """Dispatch one callback with metrics/trace/profile instrumentation."""
        prof = self._profiler
        if self._m_events is not None or prof is not None:
            if self._m_events is not None:
                self._m_events.inc()
            t0 = _time.perf_counter()
            event.callback()
            duration = _time.perf_counter() - t0
            if self._t_dispatch is not None:
                self._t_dispatch.observe(duration)
            if prof is not None:
                prof.observe_event(event.label or "event", duration)
        else:
            event.callback()
        cat = self._tr_event
        if cat is not None:
            cat.emit(event.label or "event", sim_time=self._now)

    def _drop_dead_head(self) -> None:
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
            if self._tombstones > 0:
                self._tombstones -= 1

    # ------------------------------------------------------------------
    # Tombstone compaction
    # ------------------------------------------------------------------
    @property
    def compactions(self) -> int:
        """Number of heap compactions performed (diagnostics)."""
        return self._compactions

    def _note_cancel(self) -> None:
        """Cancel hook installed on every scheduled event.

        Counts the tombstone and compacts the heap once dead events
        outnumber live ones, so a long cancel-heavy run holds O(live)
        memory instead of O(cancelled).
        """
        self._tombstones += 1
        if (
            len(self._queue) >= self.COMPACT_MIN_QUEUE
            and self._tombstones * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones.

        ``heapify`` over the same ``(time, seq, event)`` tuples restores
        an equivalent heap — the comparison key is untouched — so event
        firing order is bit-identical with or without compaction.
        """
        self._queue = [entry for entry in self._queue if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._tombstones = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Debugging helpers
    # ------------------------------------------------------------------
    def pending(self) -> Iterator[Event]:
        """Iterate over live queued events in heap (not firing) order."""
        return (ev for _, _, ev in self._queue if not ev.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.3f} queued={len(self)} fired={self._events_fired}>"
