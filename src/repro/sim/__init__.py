"""Discrete-event simulation kernel.

This subpackage provides the scheduling substrate used by every simulator in
the reproduction: the epidemic peer-sampling service, the BarterCast message
exchange, and the piece-level BitTorrent simulator all run as events and
periodic processes on a single :class:`~repro.sim.engine.Simulator` clock.

The kernel is deliberately small and deterministic:

* time is a float number of simulated seconds;
* events with equal timestamps fire in insertion order (stable heap);
* randomness is never drawn from global state — components receive
  :class:`~repro.sim.rng.RngStream` instances derived from a single root
  seed, so a scenario is reproducible bit-for-bit from its seed.
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RngRegistry, RngStream

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "PeriodicProcess",
    "RngRegistry",
    "RngStream",
]
