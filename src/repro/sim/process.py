"""Periodic processes on top of the event kernel.

Most protocol behaviour in the reproduction is periodic: BitTorrent rechokes
every 10 s, the optimistic unchoke rotates every 30 s, BuddyCast gossips on
its own interval, and the measurement harness samples reputations once per
simulated hour.  :class:`PeriodicProcess` packages the schedule-fire-
reschedule pattern with optional phase jitter so that thousands of peers do
not tick in lockstep (which would be both unrealistic and a worst case for
the event queue).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.rng import RngStream

__all__ = ["PeriodicProcess"]


class PeriodicProcess:
    """A callback fired every ``interval`` simulated seconds.

    Parameters
    ----------
    sim:
        The simulator that owns the clock.
    interval:
        Seconds between consecutive firings; must be positive.
    callback:
        Zero-argument callable invoked on each tick.
    start_delay:
        Delay before the first firing.  If ``None``, the first firing
        happens after one full ``interval``.
    jitter:
        If given together with ``rng``, each tick is displaced by a uniform
        offset in ``[0, jitter)`` seconds.  Jitter affects individual ticks,
        not the base period, so the long-run rate is unchanged.
    rng:
        Random stream used for jitter.
    label:
        Debug tag propagated to the underlying events.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        *,
        start_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng: Optional[RngStream] = None,
        label: str = "",
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        if jitter < 0:
            raise SimulationError(f"jitter must be non-negative, got {jitter}")
        if jitter > 0 and rng is None:
            raise SimulationError("jitter requires an rng stream")
        self._sim = sim
        self._interval = float(interval)
        self._callback = callback
        self._jitter = float(jitter)
        self._rng = rng
        self._label = label
        self._stopped = False
        self._ticks = 0
        self._pending: Optional[Event] = None
        first = self._interval if start_delay is None else float(start_delay)
        self._schedule_next(first)

    # ------------------------------------------------------------------
    @property
    def ticks(self) -> int:
        """Number of times the callback has fired."""
        return self._ticks

    @property
    def interval(self) -> float:
        """Base period in seconds."""
        return self._interval

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped

    def stop(self) -> None:
        """Cancel the process; no further ticks will fire."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    # ------------------------------------------------------------------
    def _schedule_next(self, delay: float) -> None:
        offset = 0.0
        if self._jitter > 0 and self._rng is not None:
            offset = self._rng.uniform(0.0, self._jitter)
        self._pending = self._sim.schedule(delay + offset, self._fire, label=self._label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._ticks += 1
        self._callback()
        if not self._stopped:
            self._schedule_next(self._interval)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "stopped" if self._stopped else "running"
        return f"<PeriodicProcess {self._label!r} every {self._interval}s {state} ticks={self._ticks}>"
