"""Analysis and reporting utilities.

Small, dependency-light helpers shared by the experiment drivers:
time-series binning, CDFs, correlation statistics, and terminal (ASCII)
rendering of the series the paper plots.
"""

from repro.analysis.stats import cdf, pearson_r, spearman_r, summarize
from repro.analysis.ascii_plot import ascii_chart, render_table
from repro.analysis.timeseries import bin_series, daily_means

__all__ = [
    "cdf",
    "pearson_r",
    "spearman_r",
    "summarize",
    "ascii_chart",
    "render_table",
    "bin_series",
    "daily_means",
]

# Exporters live in repro.analysis.export; imported lazily by the CLI to
# avoid a circular import (export depends on the experiments result types).
