"""Export experiment series to plottable files.

The CLI renders figures as ASCII; for publication-quality plots users can
export the same series as TSV (gnuplot-style, the paper's own plotting
toolchain) or CSV and plot them with any tool.  Each figure result class
gets one ``export_*`` helper producing a dict of ``filename -> rows`` and
a writer that puts them on disk with a commented header.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.experiments.fig1 import Fig1Result
from repro.experiments.fig2 import Fig2Result
from repro.experiments.fig3 import Fig3Result
from repro.experiments.fig4 import Fig4Result
from repro.experiments.faults import FaultsResult

__all__ = [
    "export_fig1",
    "export_fig2",
    "export_fig3",
    "export_fig4",
    "export_faults",
    "write_series",
]

Rows = List[Sequence[float]]


def _table(header: Sequence[str], columns: Sequence[np.ndarray]) -> dict:
    rows = [list(row) for row in zip(*columns)]
    return {"header": list(header), "rows": rows}


def export_fig1(result: Fig1Result) -> Dict[str, dict]:
    """Series for both panels of Figure 1."""
    return {
        "fig1a_reputation_over_time": _table(
            ["day", "sharers", "freeriders"],
            [result.times_days, result.sharer_reputation, result.freerider_reputation],
        ),
        "fig1b_contribution_vs_reputation": _table(
            ["net_contribution_gb", "system_reputation"],
            [result.net_contribution_gb, result.system_reputation],
        ),
    }


def export_fig2(result: Fig2Result) -> Dict[str, dict]:
    """Series for the three panels of Figure 2."""
    out = {
        "fig2a_rank_policy": _table(
            ["day", "sharers_kbps", "freeriders_kbps"],
            [result.days, result.rank["sharers"], result.rank["freeriders"]],
        ),
        "fig2b_ban_policy": _table(
            ["day", "sharers_kbps", "freeriders_kbps"],
            [result.days, result.ban["sharers"], result.ban["freeriders"]],
        ),
    }
    deltas = sorted(result.delta_sweep)
    out["fig2c_delta_sweep"] = _table(
        ["day"] + [f"freeriders_kbps_delta_{d}" for d in deltas],
        [result.days] + [result.delta_sweep[d] for d in deltas],
    )
    return out


def export_fig3(result: Fig3Result) -> Dict[str, dict]:
    """Series for one Figure 3 panel."""
    key = "fig3a_ignore" if result.kind == "ignore" else "fig3b_lie"
    return {
        key: _table(
            ["percent_disobeying", "sharers_kbps", "freeriders_kbps"],
            [result.percentages, result.sharer_speed_kbps, result.freerider_speed_kbps],
        )
    }


def export_fig4(result: Fig4Result) -> Dict[str, dict]:
    """Series for both panels of Figure 4."""
    order = np.argsort(result.net_contribution)
    return {
        "fig4a_net_contribution": _table(
            ["rank", "upload_minus_download_bytes"],
            [np.arange(result.peers_seen, dtype=float), result.net_contribution[order]],
        ),
        "fig4b_reputation_cdf": _table(
            ["reputation", "cdf"],
            [result.reputation_values, result.reputation_cdf],
        ),
    }


def _faults_table(pts) -> dict:
    return _table(
        [
            "loss", "churn_per_day", "duplicate", "delay_max_s",
            "coverage", "false_ban_rate", "rank_inversion_rate",
            "convergence_time_s",
            "delivered", "dropped", "duplicated", "delayed",
            "crashes", "wipes", "audit_violations",
        ],
        [
            np.array([p.loss for p in pts], dtype=float),
            np.array([p.churn for p in pts], dtype=float),
            np.array([p.duplicate for p in pts], dtype=float),
            np.array([p.delay_max for p in pts], dtype=float),
            np.array([p.coverage for p in pts], dtype=float),
            np.array([p.false_ban_rate for p in pts], dtype=float),
            np.array([p.rank_inversion_rate for p in pts], dtype=float),
            np.array([p.convergence_time for p in pts], dtype=float),
            np.array([p.messages_delivered for p in pts], dtype=float),
            np.array([p.messages_dropped for p in pts], dtype=float),
            np.array([p.messages_duplicated for p in pts], dtype=float),
            np.array([p.messages_delayed for p in pts], dtype=float),
            np.array([p.crashes for p in pts], dtype=float),
            np.array([p.wipes for p in pts], dtype=float),
            np.array([p.audit_violations for p in pts], dtype=float),
        ],
    )


def export_faults(result: FaultsResult) -> Dict[str, dict]:
    """Series for the fault sweep (one row per fault level).

    One table per reputation mechanism in the sweep.  The default
    engine keeps the historical ``faults_sweep`` table name (existing
    tooling keeps working); rival mechanisms land in
    ``faults_sweep_<engine>``.  Numeric-only columns, so the writer's
    float formatting applies to every cell — the engine is in the table
    name, not a string column.
    """
    out: Dict[str, dict] = {}
    for engine in result.engines:
        name = "faults_sweep" if engine == "bartercast" else f"faults_sweep_{engine}"
        out[name] = _faults_table(result.points_for(engine))
    return out


def write_series(
    tables: Dict[str, dict],
    directory: Union[str, Path],
    fmt: str = "tsv",
) -> List[Path]:
    """Write exported tables to ``directory`` as ``.tsv`` or ``.csv``.

    Returns the written paths.  TSV files carry a ``#``-commented header
    line (gnuplot-friendly); CSV files use a plain header row.
    """
    if fmt not in ("tsv", "csv"):
        raise ValueError(f"unsupported format {fmt!r}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name, table in tables.items():
        path = directory / f"{name}.{fmt}"
        if fmt == "tsv":
            with path.open("w") as fh:
                fh.write("# " + "\t".join(table["header"]) + "\n")
                for row in table["rows"]:
                    fh.write("\t".join(_fmt(v) for v in row) + "\n")
        else:
            with path.open("w", newline="") as fh:
                writer = csv.writer(fh)
                writer.writerow(table["header"])
                for row in table["rows"]:
                    writer.writerow([_fmt(v) for v in row])
        written.append(path)
    return written


def _fmt(value: float) -> str:
    if isinstance(value, float) and value != value:  # NaN
        return "nan"
    return repr(float(value))
