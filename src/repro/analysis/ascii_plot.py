"""Terminal rendering of experiment output.

The benchmark harness prints, for every figure, the same series the paper
plots — as aligned tables and compact ASCII charts, so a run's output can
be compared against the paper by eye and archived in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["render_table", "ascii_chart"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an aligned plain-text table.

    Floats are formatted with ``float_fmt``; NaNs print as ``-``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if math.isnan(cell):
                return "-"
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def ascii_chart(
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 12,
    y_label: str = "",
) -> str:
    """A compact multi-series ASCII line chart.

    Each series gets a marker character; x positions are the sample
    indices rescaled to ``width``.  NaNs are skipped.
    """
    markers = "*o+x#@%&"
    all_vals = [
        v
        for vals in series.values()
        for v in vals
        if v == v and not math.isinf(v)  # drop NaN/inf
    ]
    if not all_vals:
        return "(no data)"
    lo, hi = min(all_vals), max(all_vals)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for s_idx, (name, vals) in enumerate(series.items()):
        marker = markers[s_idx % len(markers)]
        vals = list(vals)
        n = len(vals)
        if n == 0:
            continue
        for i, v in enumerate(vals):
            if v != v or math.isinf(v):
                continue
            x = int(i * (width - 1) / max(1, n - 1))
            y = int((v - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - y][x] = marker
    lines = []
    top_label = f"{hi:.3g}"
    bottom_label = f"{lo:.3g}"
    pad = max(len(top_label), len(bottom_label))
    for r, row in enumerate(grid):
        prefix = top_label.rjust(pad) if r == 0 else (
            bottom_label.rjust(pad) if r == height - 1 else " " * pad
        )
        lines.append(f"{prefix} |{''.join(row)}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    if y_label:
        lines.insert(0, y_label)
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)
