"""Statistical helpers: CDFs, correlations, summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as sps

__all__ = ["cdf", "pearson_r", "spearman_r", "summarize", "Summary"]


def cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns ``(sorted_values, cumulative_fraction)``.

    The fraction at index k is ``(k + 1) / n`` — the fraction of samples
    less than or equal to ``sorted_values[k]``.
    """
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        return arr, arr
    frac = np.arange(1, arr.size + 1) / arr.size
    return arr, frac


def pearson_r(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient (NaN for degenerate inputs)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size < 2 or np.std(x) == 0 or np.std(y) == 0:
        return float("nan")
    return float(np.corrcoef(x, y)[0, 1])


def spearman_r(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation (NaN for degenerate inputs).

    The natural consistency measure for Figure 1(b): the paper's claim is
    that reputation *orders* peers like net contribution does, not that
    the relationship is linear (arctan is deliberately nonlinear).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size < 2 or np.std(x) == 0 or np.std(y) == 0:
        return float("nan")
    rho, _ = sps.spearmanr(x, y)
    return float(rho)


@dataclass
class Summary:
    """Five-number-style summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` (NaNs are dropped)."""
    arr = np.asarray(values, dtype=float)
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan)
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )
