"""Time-series binning helpers."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["bin_series", "daily_means"]

DAY = 86400.0


def bin_series(
    times: Sequence[float],
    values: Sequence[float],
    bin_width: float,
    t_max: float = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Average irregular samples into fixed-width time bins.

    Returns ``(bin_midpoints, bin_means)``; empty bins are NaN.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if times.size == 0:
        return np.empty(0), np.empty(0)
    horizon = float(t_max) if t_max is not None else float(times.max()) + 1e-9
    n_bins = max(1, int(np.ceil(horizon / bin_width)))
    idx = np.clip((times / bin_width).astype(int), 0, n_bins - 1)
    sums = np.zeros(n_bins)
    counts = np.zeros(n_bins)
    valid = ~np.isnan(values)
    np.add.at(sums, idx[valid], values[valid])
    np.add.at(counts, idx[valid], 1)
    with np.errstate(invalid="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    mids = (np.arange(n_bins) + 0.5) * bin_width
    return mids, means


def daily_means(
    times: Sequence[float], values: Sequence[float], t_max: float = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Day-binned means — the granularity of the paper's Figure 1(a)/2
    x-axes.  Returns ``(day_numbers, means)`` with day numbers at bin
    midpoints (0.5, 1.5, ...)."""
    mids, means = bin_series(times, values, DAY, t_max=t_max)
    return mids / DAY, means
