"""Community traces: the workload substrate.

The paper drives its simulations with scraped traces of the filelist.org
private BitTorrent tracker (peer uptimes, downtimes, connectability, and
file requests).  Those traces are proprietary, so this subpackage provides
a parametric synthetic generator
(:class:`~repro.traces.synthetic.SyntheticTraceGenerator`) that reproduces
the trace *structure* the simulator consumes — see DESIGN.md §4 for the
substitution argument — plus the dataclasses and (de)serialization shared
by every experiment.
"""

from repro.traces.models import (
    CommunityTrace,
    FileRequest,
    PeerProfile,
    PeerSession,
    SwarmSpec,
)
from repro.traces.synthetic import SyntheticTraceGenerator, TraceParams
from repro.traces.io import load_trace, save_trace

__all__ = [
    "CommunityTrace",
    "FileRequest",
    "PeerProfile",
    "PeerSession",
    "SwarmSpec",
    "SyntheticTraceGenerator",
    "TraceParams",
    "load_trace",
    "save_trace",
]
