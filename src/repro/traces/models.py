"""Trace data model.

A :class:`CommunityTrace` is everything the simulator needs about the
*environment*: who exists, when they are online, which files they request,
how large the files are, and whether peers accept incoming connections.
Behavioural roles (sharer vs freerider, honest vs liar) are *not* part of
the trace — the paper assigns them synthetically on top of the trace, and
so do the experiment drivers.

All times are seconds from trace start; all sizes are bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "PeerSession",
    "PeerProfile",
    "SwarmSpec",
    "FileRequest",
    "CommunityTrace",
]

DAY = 86400.0
HOUR = 3600.0


@dataclass(frozen=True)
class PeerSession:
    """One online interval of a peer: ``[start, end)`` seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty session [{self.start}, {self.end})")
        if self.start < 0:
            raise ValueError(f"session starts before trace start: {self.start}")

    @property
    def duration(self) -> float:
        """Session length in seconds."""
        return self.end - self.start

    def contains(self, t: float) -> bool:
        """Whether time ``t`` falls inside this session."""
        return self.start <= t < self.end


@dataclass
class PeerProfile:
    """Static facts about one peer.

    Attributes
    ----------
    peer_id:
        Integer peer identifier, unique within the trace.
    uplink_bps / downlink_bps:
        Link capacities in bytes/second.  The paper overrides the unknown
        real capacities with common ADSL values (512 KBps up, 3 MBps down).
    connectable:
        Whether the peer accepts incoming connections (NAT/firewall state
        from the trace).  Two unconnectable peers cannot exchange data.
    sessions:
        Online intervals, non-overlapping and sorted by start time.
    """

    peer_id: int
    uplink_bps: float
    downlink_bps: float
    connectable: bool = True
    sessions: List[PeerSession] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.uplink_bps <= 0 or self.downlink_bps <= 0:
            raise ValueError("link capacities must be positive")
        self._check_sessions()

    def _check_sessions(self) -> None:
        prev_end = -1.0
        for s in self.sessions:
            if s.start < prev_end:
                raise ValueError(f"overlapping/unsorted sessions for peer {self.peer_id}")
            prev_end = s.end

    def online_at(self, t: float) -> bool:
        """Whether the peer is online at time ``t`` (binary search)."""
        lo, hi = 0, len(self.sessions)
        while lo < hi:
            mid = (lo + hi) // 2
            s = self.sessions[mid]
            if t < s.start:
                hi = mid
            elif t >= s.end:
                lo = mid + 1
            else:
                return True
        return False

    def next_online_time(self, t: float) -> Optional[float]:
        """The earliest time ``>= t`` at which the peer is online, or
        ``None`` if no remaining session reaches ``t``."""
        for s in self.sessions:
            if s.end <= t:
                continue
            return max(s.start, t)
        return None

    def online_seconds(self, t0: float, t1: float) -> float:
        """Total online time within ``[t0, t1)``."""
        total = 0.0
        for s in self.sessions:
            lo = max(s.start, t0)
            hi = min(s.end, t1)
            if hi > lo:
                total += hi - lo
        return total

    @property
    def total_uptime(self) -> float:
        """Sum of all session durations."""
        return sum(s.duration for s in self.sessions)


@dataclass(frozen=True)
class SwarmSpec:
    """One shared file / torrent.

    Attributes
    ----------
    swarm_id:
        Integer swarm identifier.
    file_size:
        Bytes.
    piece_size:
        Bytes per piece; the last piece may be short.
    origin_seeder:
        Peer id of the initial content provider (private communities keep
        at least one seed per torrent; see DESIGN.md §4).
    """

    swarm_id: int
    file_size: float
    piece_size: float
    origin_seeder: int

    def __post_init__(self) -> None:
        if self.file_size <= 0 or self.piece_size <= 0:
            raise ValueError("file and piece sizes must be positive")
        if self.piece_size > self.file_size:
            raise ValueError("piece size exceeds file size")

    @property
    def num_pieces(self) -> int:
        """Number of pieces, rounding the last piece up."""
        return int(-(-self.file_size // self.piece_size))


@dataclass(frozen=True)
class FileRequest:
    """Peer ``peer_id`` starts downloading swarm ``swarm_id`` at ``time``."""

    peer_id: int
    swarm_id: int
    time: float


@dataclass
class CommunityTrace:
    """A complete simulation workload.

    Attributes
    ----------
    duration:
        Trace horizon in seconds.
    peers:
        ``{peer_id: PeerProfile}``.
    swarms:
        ``{swarm_id: SwarmSpec}``.
    requests:
        File requests sorted by time.
    """

    duration: float
    peers: Dict[int, PeerProfile]
    swarms: Dict[int, SwarmSpec]
    requests: List[FileRequest]

    def validate(self) -> None:
        """Check cross-references and ordering; raises ``ValueError``."""
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        prev_t = -1.0
        for req in self.requests:
            if req.time < prev_t:
                raise ValueError("requests not sorted by time")
            prev_t = req.time
            if req.peer_id not in self.peers:
                raise ValueError(f"request by unknown peer {req.peer_id}")
            if req.swarm_id not in self.swarms:
                raise ValueError(f"request for unknown swarm {req.swarm_id}")
            if not (0 <= req.time < self.duration):
                raise ValueError(f"request at t={req.time} outside trace")
            if not self.peers[req.peer_id].online_at(req.time):
                raise ValueError(
                    f"peer {req.peer_id} requests swarm {req.swarm_id} while offline"
                )
        for swarm in self.swarms.values():
            if swarm.origin_seeder not in self.peers:
                raise ValueError(
                    f"swarm {swarm.swarm_id} origin seeder {swarm.origin_seeder} unknown"
                )

    def requests_of(self, peer_id: int) -> List[FileRequest]:
        """All requests made by one peer, in time order."""
        return [r for r in self.requests if r.peer_id == peer_id]

    @property
    def num_peers(self) -> int:
        """Number of peers in the trace."""
        return len(self.peers)

    @property
    def num_swarms(self) -> int:
        """Number of swarms in the trace."""
        return len(self.swarms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CommunityTrace peers={self.num_peers} swarms={self.num_swarms} "
            f"requests={len(self.requests)} days={self.duration / DAY:.1f}>"
        )
