"""Trace (de)serialization.

Traces round-trip through a plain-JSON schema so that generated workloads
can be archived next to experiment results and re-run bit-for-bit.  The
schema is versioned; loading rejects unknown versions loudly rather than
guessing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.traces.models import (
    CommunityTrace,
    FileRequest,
    PeerProfile,
    PeerSession,
    SwarmSpec,
)

__all__ = ["save_trace", "load_trace", "trace_to_dict", "trace_from_dict"]

SCHEMA_VERSION = 1


def trace_to_dict(trace: CommunityTrace) -> dict:
    """A JSON-serializable representation of ``trace``."""
    return {
        "schema_version": SCHEMA_VERSION,
        "duration": trace.duration,
        "peers": [
            {
                "peer_id": p.peer_id,
                "uplink_bps": p.uplink_bps,
                "downlink_bps": p.downlink_bps,
                "connectable": p.connectable,
                "sessions": [[s.start, s.end] for s in p.sessions],
            }
            for p in trace.peers.values()
        ],
        "swarms": [
            {
                "swarm_id": s.swarm_id,
                "file_size": s.file_size,
                "piece_size": s.piece_size,
                "origin_seeder": s.origin_seeder,
            }
            for s in trace.swarms.values()
        ],
        "requests": [[r.peer_id, r.swarm_id, r.time] for r in trace.requests],
    }


def trace_from_dict(data: dict) -> CommunityTrace:
    """Inverse of :func:`trace_to_dict`; validates the result."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported trace schema version: {version!r}")
    peers = {
        int(p["peer_id"]): PeerProfile(
            peer_id=int(p["peer_id"]),
            uplink_bps=float(p["uplink_bps"]),
            downlink_bps=float(p["downlink_bps"]),
            connectable=bool(p["connectable"]),
            sessions=[PeerSession(float(a), float(b)) for a, b in p["sessions"]],
        )
        for p in data["peers"]
    }
    swarms = {
        int(s["swarm_id"]): SwarmSpec(
            swarm_id=int(s["swarm_id"]),
            file_size=float(s["file_size"]),
            piece_size=float(s["piece_size"]),
            origin_seeder=int(s["origin_seeder"]),
        )
        for s in data["swarms"]
    }
    requests = [
        FileRequest(peer_id=int(p), swarm_id=int(s), time=float(t))
        for p, s, t in data["requests"]
    ]
    trace = CommunityTrace(
        duration=float(data["duration"]),
        peers=peers,
        swarms=swarms,
        requests=requests,
    )
    trace.validate()
    return trace


def save_trace(trace: CommunityTrace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: Union[str, Path]) -> CommunityTrace:
    """Read a trace previously written by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))
