"""Synthetic community-trace generation.

Substitution for the proprietary filelist.org scrape (DESIGN.md §4): a
parametric generator reproducing the structural properties the paper's
simulation consumes —

* ~100 peers active in ~10 swarms during one week;
* file sizes from several tens of MB to 1–2 GB (log-uniform);
* per-peer diurnal online sessions (uptimes/downtimes);
* connectability flags;
* file requests issued while the requesting peer is online;
* uniform ADSL capacities (3 MBps down / 512 KBps up), exactly as the
  paper imposes on its trace.

Private BitTorrent communities keep every torrent seeded; we model that
with one always-online *origin seeder* per swarm (a community seedbox).
Origin seeders are infrastructure, not subjects: experiment statistics
exclude them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.rng import RngRegistry, RngStream
from repro.traces.models import (
    DAY,
    HOUR,
    CommunityTrace,
    FileRequest,
    PeerProfile,
    PeerSession,
    SwarmSpec,
)

__all__ = ["TraceParams", "SyntheticTraceGenerator"]

KB = 1024.0
MB = 1024.0 * KB
GB = 1024.0 * MB


@dataclass
class TraceParams:
    """Knobs of the synthetic community.

    Defaults reproduce the paper's simulation setup (§5.1).

    Attributes
    ----------
    num_peers:
        Community size (excluding origin seeders).
    num_swarms:
        Number of torrents.
    duration:
        Trace horizon in seconds (paper: one week).
    uplink_bps / downlink_bps:
        Uniform ADSL capacities in bytes/second.
    min_file_size / max_file_size:
        Log-uniform file-size range (paper: tens of MB to 1–2 GB).
    target_pieces:
        Pieces per file; the piece size is derived as
        ``clamp(file_size / target_pieces, min_piece_size, max_piece_size)``.
    prime_time_hour:
        Center (hour of day) of the community's prime time; per-peer
        habitual start hours scatter around it.  Sub-day traces should
        lower this so sessions fit inside the horizon.
    day_active_prob:
        Probability a peer comes online on a given day.
    mean_session_hours / session_sigma:
        Log-normal session-duration parameters.
    swarms_per_peer_mean:
        Mean number of distinct files each peer requests over the trace.
    connectable_fraction:
        Fraction of peers that accept incoming connections.
    include_origin_seeders:
        Whether to add one always-online seeder peer per swarm.
    origin_uplink_bps:
        Uplink capacity of origin seeders.  Throttled well below a peer
        uplink: the origin stands in for a community seedbox that keeps
        the torrent *available* but does not carry the swarm — in the
        paper's trace the bulk capacity comes from peers, and an
        unthrottled origin would both dwarf the sharers' contribution and
        hand banned freeriders a policy-free fallback.
    flashcrowd_hours:
        Mean of the exponential delay between a torrent's publication and
        each interested peer's request.  Private-tracker swarms are
        flash crowds — most downloads happen within hours of publication —
        and this correlation is what populates swarms with *concurrent*
        leechers (uniform request times would yield lonely downloads and
        no tit-for-tat/policy dynamics at all).
    publish_window:
        Torrent publication times are uniform in
        ``[0, publish_window * duration]``.
    """

    num_peers: int = 100
    num_swarms: int = 10
    duration: float = 7 * DAY
    uplink_bps: float = 512 * KB
    downlink_bps: float = 3 * MB
    min_file_size: float = 30 * MB
    max_file_size: float = 2 * GB
    target_pieces: int = 512
    min_piece_size: float = 256 * KB
    max_piece_size: float = 4 * MB
    prime_time_hour: float = 14.0
    day_active_prob: float = 0.9
    mean_session_hours: float = 12.0
    session_sigma: float = 0.6
    swarms_per_peer_mean: float = 5.0
    connectable_fraction: float = 0.7
    include_origin_seeders: bool = True
    origin_uplink_bps: float = 160 * 1024.0
    flashcrowd_hours: float = 1.0
    publish_window: float = 0.9

    def validate(self) -> None:
        """Sanity-check parameter ranges; raises ``ValueError``."""
        if self.num_peers < 2:
            raise ValueError("need at least 2 peers")
        if self.num_swarms < 1:
            raise ValueError("need at least 1 swarm")
        if self.duration < HOUR:
            raise ValueError("trace must span at least an hour")
        if not (0 < self.min_file_size <= self.max_file_size):
            raise ValueError("bad file-size range")
        if not (0.0 <= self.day_active_prob <= 1.0):
            raise ValueError("day_active_prob must be a probability")
        if not (0.0 <= self.connectable_fraction <= 1.0):
            raise ValueError("connectable_fraction must be a probability")
        if self.origin_uplink_bps <= 0:
            raise ValueError("origin_uplink_bps must be positive")
        if self.flashcrowd_hours <= 0:
            raise ValueError("flashcrowd_hours must be positive")
        if not (0.0 <= self.publish_window <= 1.0):
            raise ValueError("publish_window must be in [0, 1]")


class SyntheticTraceGenerator:
    """Deterministic trace generation from ``(params, seed)``.

    Examples
    --------
    >>> gen = SyntheticTraceGenerator(TraceParams(num_peers=10, num_swarms=2), seed=1)
    >>> trace = gen.generate()
    >>> trace.validate()
    >>> trace.num_peers >= 10
    True
    """

    def __init__(self, params: TraceParams, seed: int = 0) -> None:
        params.validate()
        self.params = params
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def generate(self) -> CommunityTrace:
        """Produce a validated :class:`CommunityTrace`."""
        p = self.params
        rngs = RngRegistry(self.seed)
        peers: Dict[int, PeerProfile] = {}
        for pid in range(p.num_peers):
            peers[pid] = self._make_peer(pid, rngs)
        swarms = self._make_swarms(rngs, peers)
        publish_times = self._make_publish_times(rngs)
        requests = self._make_requests(rngs, peers, publish_times)
        trace = CommunityTrace(
            duration=p.duration, peers=peers, swarms=swarms, requests=requests
        )
        trace.validate()
        return trace

    # ------------------------------------------------------------------
    def _make_peer(self, pid: int, rngs: RngRegistry) -> PeerProfile:
        p = self.params
        rng = rngs.spawn("sessions", pid)
        sessions = self._make_sessions(rng)
        connectable = rngs.stream("connectability").bernoulli(p.connectable_fraction)
        return PeerProfile(
            peer_id=pid,
            uplink_bps=p.uplink_bps,
            downlink_bps=p.downlink_bps,
            connectable=connectable,
            sessions=sessions,
        )

    def _make_sessions(self, rng: RngStream) -> List[PeerSession]:
        """Diurnal sessions with prime-time alignment.

        Private-tracker users keep clients online for long stretches
        (ratio protection) and their sessions cluster around an evening
        prime time — the alignment is what makes swarms *dense* (many
        peers concurrently online around a new torrent), which the
        tit-for-tat and policy dynamics depend on.
        """
        p = self.params
        raw: List[List[float]] = []
        num_days = int(-(-p.duration // DAY))
        import math

        mu = math.log(p.mean_session_hours * HOUR) - 0.5 * p.session_sigma**2
        # Each peer has a habitual daily start hour near the community's
        # prime time (center 14:00 so long sessions span the evening).
        habit = p.prime_time_hour * HOUR + rng.generator.normal(0.0, 3.0 * HOUR)
        habit = max(0.0, habit)
        for day in range(num_days):
            if not rng.bernoulli(p.day_active_prob):
                continue
            start = day * DAY + habit + rng.generator.normal(0.0, 1.5 * HOUR)
            start = min(max(start, day * DAY), (day + 1) * DAY - 0.25 * HOUR)
            length = max(0.5 * HOUR, rng.lognormal(mu, p.session_sigma))
            end = min(start + length, p.duration)
            if end - start >= 0.25 * HOUR and start < p.duration:
                raw.append([start, end])
        merged = self._merge_intervals(raw)
        return [PeerSession(s, e) for s, e in merged]

    @staticmethod
    def _merge_intervals(raw: List[List[float]]) -> List[List[float]]:
        if not raw:
            return []
        raw.sort()
        merged = [raw[0][:]]
        for start, end in raw[1:]:
            if start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        return merged

    # ------------------------------------------------------------------
    def _make_swarms(
        self, rngs: RngRegistry, peers: Dict[int, PeerProfile]
    ) -> Dict[int, SwarmSpec]:
        p = self.params
        rng = rngs.stream("swarms")
        import math

        swarms: Dict[int, SwarmSpec] = {}
        log_lo, log_hi = math.log(p.min_file_size), math.log(p.max_file_size)
        for sid in range(p.num_swarms):
            file_size = float(math.exp(rng.uniform(log_lo, log_hi)))
            piece_size = min(
                p.max_piece_size, max(p.min_piece_size, file_size / p.target_pieces)
            )
            if p.include_origin_seeders:
                seeder_id = p.num_peers + sid
                peers[seeder_id] = PeerProfile(
                    peer_id=seeder_id,
                    uplink_bps=p.origin_uplink_bps,
                    downlink_bps=p.downlink_bps,
                    connectable=True,
                    sessions=[PeerSession(0.0, p.duration)],
                )
            else:
                # Without dedicated seeders the first requester of each swarm
                # is promoted to origin (it starts with the complete file).
                seeder_id = rng.randint(0, p.num_peers)
            swarms[sid] = SwarmSpec(
                swarm_id=sid,
                file_size=file_size,
                piece_size=piece_size,
                origin_seeder=seeder_id,
            )
        return swarms

    # ------------------------------------------------------------------
    def _make_publish_times(self, rngs: RngRegistry) -> Dict[int, float]:
        """Torrent publication times (flash crowds start here)."""
        p = self.params
        rng = rngs.stream("publish")
        window = p.publish_window * p.duration
        return {sid: rng.uniform(0.0, max(window, 1.0)) for sid in range(p.num_swarms)}

    def _make_requests(
        self,
        rngs: RngRegistry,
        peers: Dict[int, PeerProfile],
        publish_times: Dict[int, float],
    ) -> List[FileRequest]:
        """Flash-crowd arrivals: each interested peer requests the file an
        exponential delay after publication, at its next online moment."""
        p = self.params
        requests: List[FileRequest] = []
        for pid in range(p.num_peers):
            profile = peers[pid]
            if not profile.sessions:
                continue
            rng = rngs.spawn("requests", pid)
            lam = p.swarms_per_peer_mean
            k = min(p.num_swarms, max(1, int(rng.generator.poisson(lam))))
            chosen = rng.sample(range(p.num_swarms), k)
            for sid in chosen:
                desired = publish_times[sid] + rng.exponential(
                    p.flashcrowd_hours * HOUR
                )
                t = profile.next_online_time(desired)
                if t is None or t >= p.duration - 60.0:
                    continue  # the peer never got around to this file
                requests.append(FileRequest(peer_id=pid, swarm_id=sid, time=t))
        requests.sort(key=lambda r: r.time)
        return requests
