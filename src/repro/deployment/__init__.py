"""Deployment substrate: a synthetic Tribler-like network and a
measurement crawl.

The paper's Figure 4 reports one month of live deployment: a customized
Tribler peer logged every BarterCast message it received, saw ~5000 peers,
and plotted (a) their upload − download and (b) the CDF of their
reputations *as computed by that peer*.  The live network is obviously not
available, so this subpackage builds the closest synthetic equivalent (see
DESIGN.md §4):

* :mod:`repro.deployment.network` generates a ~5000-peer population with
  heavy-tailed contribution imbalance (a majority that downloaded more
  than it uploaded, a cluster of just-installed peers at exactly zero, and
  a small multi-gigabyte altruist tail) and a *consistent* pairwise
  transfer graph realizing those totals;
* :mod:`repro.deployment.crawl` runs the measurement: peers gossip their
  (honest) BarterCast messages to an instrumented measurement peer for 30
  simulated days, and the measurement peer computes every seen peer's
  reputation with the production code path.
"""

from repro.deployment.network import DeploymentNetwork, DeploymentParams
from repro.deployment.crawl import CrawlResult, MeasurementCrawl

__all__ = [
    "DeploymentNetwork",
    "DeploymentParams",
    "MeasurementCrawl",
    "CrawlResult",
]
