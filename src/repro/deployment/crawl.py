"""The measurement crawl: one month of logged BarterCast messages.

Reproduces the paper's deployment methodology: an instrumented peer
participates in the network, logs every BarterCast message it receives for
30 days, and afterwards computes the subjective reputation of every peer
it has seen — using exactly the production BarterCast code
(:class:`~repro.core.node.BarterCastNode`).

Message arrival model: each non-fresh peer contacts the measurement peer a
Poisson-distributed number of times over the month (BuddyCast churns
through contacts; a long-lived peer is eventually reached by most of the
active population), sending its honest record selection each time.  Fresh
peers occasionally connect too but have nothing to report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.messages import BarterCastMessage, select_records
from repro.core.node import BarterCastConfig, BarterCastNode
from repro.deployment.network import DeploymentNetwork
from repro.obs import Observability
from repro.sim.rng import RngRegistry

__all__ = ["CrawlResult", "MeasurementCrawl"]

DAY = 86400.0


@dataclass
class CrawlResult:
    """Outcome of a measurement crawl.

    Attributes
    ----------
    seen_peers:
        Peers that appear in the measurement peer's subjective graph
        (directly heard from, or named in someone's records), excluding
        the measurement peer itself.
    net_contribution:
        Ground-truth upload − download (bytes) per seen peer —
        Figure 4(a)'s y-axis.
    reputation:
        The measurement peer's subjective reputation per seen peer —
        Figure 4(b)'s sample.
    messages_logged:
        Number of BarterCast messages the measurement peer received.
    node:
        The measurement peer's BarterCast node after the crawl — its
        subjective graph is the input for post-hoc analyses (e.g. the
        path-length ablation).
    """

    seen_peers: List[int]
    net_contribution: Dict[int, float]
    reputation: Dict[int, float]
    messages_logged: int
    node: object = None

    def reputation_cdf_fractions(self, eps: float = 1e-3) -> Dict[str, float]:
        """Fractions of seen peers with negative / ~zero / positive
        reputation (the paper: ~40 % negative, ~10 % positive)."""
        values = np.array([self.reputation[p] for p in self.seen_peers])
        n = max(1, values.size)
        return {
            "negative": float((values < -eps).sum()) / n,
            "zero": float((np.abs(values) <= eps).sum()) / n,
            "positive": float((values > eps).sum()) / n,
        }


class MeasurementCrawl:
    """Runs the 30-day logging experiment on a deployment network.

    Parameters
    ----------
    network:
        The synthetic population.
    duration_days:
        Logging window (paper: one month).
    contacts_mean:
        Mean number of times an active peer's gossip reaches the
        measurement peer during the window.
    bc_config:
        BarterCast parameters of the measurement peer (defaults match the
        paper: ``Nh = Nr = 10``).
    obs:
        Observability bundle for the measurement node (message counters,
        merge traces, kernel timers).
    """

    def __init__(
        self,
        network: DeploymentNetwork,
        duration_days: float = 30.0,
        contacts_mean: float = 3.0,
        bc_config: BarterCastConfig = None,
        seed: int = 0,
        obs: Optional[Observability] = None,
    ) -> None:
        if duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if contacts_mean < 0:
            raise ValueError("contacts_mean must be non-negative")
        self.network = network
        self.duration = duration_days * DAY
        self.contacts_mean = contacts_mean
        self.bc_config = bc_config if bc_config is not None else BarterCastConfig()
        self.seed = int(seed)
        self.obs = obs

    def run(self) -> CrawlResult:
        """Execute the crawl and compute the Figure 4 observables."""
        net = self.network
        rng = RngRegistry(self.seed).stream("crawl")
        gen = rng.generator
        node = BarterCastNode(net.measurement_id, self.bc_config, obs=self.obs)

        # Seed the measurement peer's own private history from its real
        # transfers (its edges in the deployment network).
        own = net.histories[net.measurement_id]
        for peer, totals in own.items():
            if totals.uploaded > 0:
                node.record_upload(peer, totals.uploaded, totals.last_seen)
            if totals.downloaded > 0:
                node.record_download(peer, totals.downloaded, totals.last_seen)

        # Message arrivals: (time, sender) pairs over the window.
        arrivals: List[tuple] = []
        for pid in net.peer_ids:
            history = net.histories[pid]
            k = int(gen.poisson(self.contacts_mean))
            if len(history) == 0:
                # Fresh installs rarely gossip anything useful.
                k = min(k, 1)
            for _ in range(k):
                arrivals.append((float(gen.uniform(0.0, self.duration)), pid))
        arrivals.sort()

        logged = 0
        for t, pid in arrivals:
            records = select_records(
                net.histories[pid], self.bc_config.n_highest, self.bc_config.n_recent
            )
            message = BarterCastMessage(sender=pid, created_at=t, records=tuple(records))
            node.receive_message(message)
            node.note_seen(pid, t)
            logged += 1

        # "Seen" = every peer that either appears in the subjective graph
        # (named in some record) or contacted the measurement peer directly
        # (fresh installs gossip empty messages but are still observed).
        seen_set = {p for p in node.graph.nodes() if p in net.uploaded}
        seen_set |= {p for p in node.history.peers() if p in net.uploaded}
        seen_set.discard(net.measurement_id)
        seen = sorted(seen_set)
        reputation = {p: node.reputation_of(p) for p in seen}
        contribution = {p: net.net_contribution(p) for p in seen}
        return CrawlResult(
            seen_peers=seen,
            net_contribution=contribution,
            reputation=reputation,
            messages_logged=logged,
            node=node,
        )
