"""Synthetic Tribler-like population with heavy-tailed contribution.

The generator produces a *consistent* transfer network: it first samples
per-peer behavioural classes and download volumes, then realizes them as
pairwise transfers (download chunks assigned to uploaders proportionally
to upload propensity), so that every peer's private history agrees with
its counterparties' histories — exactly the property the real network has
and the one BarterCast's gossip relies on.

Peer classes (fractions are parameters):

* **fresh installs** — never transferred a byte; the paper observes a
  visible cluster at exactly zero ("most likely just installed the client
  without using it").
* **consumers** — the majority: download much more than they upload
  (Figure 4(a): "a majority of the peers has downloaded more than what
  they have uploaded").
* **altruists** — a small tail that uploads far more than it downloads,
  "with tens of gigabytes contribution".

Because Tribler peers also barter with non-Tribler BitTorrent clients,
global upload need not equal global download among the observed peers; the
generator reproduces that by letting a share of each consumer's download
come from *external* (unobserved) sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.history import PrivateHistory
from repro.sim.rng import RngRegistry

__all__ = ["DeploymentParams", "DeploymentNetwork"]

MB = 1024.0**2
GB = 1024.0**3


@dataclass
class DeploymentParams:
    """Knobs of the synthetic deployment population.

    Attributes
    ----------
    num_peers:
        Observed population size (paper: ~5000).
    fresh_fraction:
        Fraction of just-installed peers with zero transfers.
    altruist_fraction:
        Fraction of heavy uploaders.
    mean_download_log / sigma_download_log:
        Log-normal parameters (natural log, bytes) of consumer download
        volume; defaults span ~10 MB to ~100 GB.
    consumer_upload_ratio_max:
        Consumers upload a uniform fraction in ``[0, max]`` of what they
        download (keeps the majority net-negative).
    external_fraction:
        Share of download volume served by unobserved non-Tribler peers.
    partners_mean:
        Mean number of distinct upload partners per consumer.
    measurement_upload_gb:
        Total upload volume of the instrumented measurement peer; the
        paper's logging peer was a well-connected, long-lived participant,
        which is what makes its subjective reputations informative (its
        outgoing maxflow is bounded by its own uploads).
    measurement_partner_fraction:
        Fraction of the population the measurement peer bartered with
        directly; a fraction (rather than a count) keeps the 2-hop reach
        geometry scale-invariant when the population size changes.
    measurement_download_fraction / measurement_download_max:
        Share of the measurement peer's partners it also downloaded from,
        and the per-partner download cap — these produce its positive-
        reputation tail.
    """

    num_peers: int = 5000
    fresh_fraction: float = 0.22
    altruist_fraction: float = 0.03
    mean_download_log: float = 21.5  # exp(21.5) ~ 2.2 GB
    sigma_download_log: float = 1.6
    consumer_upload_ratio_max: float = 0.9
    external_fraction: float = 0.35
    partners_mean: float = 12.0
    altruist_upload_gb_min: float = 5.0
    altruist_upload_gb_max: float = 80.0
    measurement_upload_gb: float = 40.0
    measurement_partner_fraction: float = 0.04
    measurement_download_fraction: float = 0.6
    measurement_download_max: float = 300 * MB

    def validate(self) -> None:
        """Sanity-check ranges; raises ``ValueError``."""
        if self.num_peers < 10:
            raise ValueError("need at least 10 peers")
        for name in ("fresh_fraction", "altruist_fraction", "external_fraction"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be a probability, got {v}")
        if self.fresh_fraction + self.altruist_fraction >= 1.0:
            raise ValueError("class fractions exceed 1")
        if not 0.0 < self.measurement_partner_fraction <= 1.0:
            raise ValueError("measurement_partner_fraction must be in (0, 1]")
        if not 0.0 <= self.measurement_download_fraction <= 1.0:
            raise ValueError("measurement_download_fraction must be a probability")

    @property
    def measurement_partners(self) -> int:
        """Resolved partner count for the configured population size."""
        return max(1, int(self.measurement_partner_fraction * self.num_peers))


class DeploymentNetwork:
    """The generated population and its consistent transfer graph.

    Attributes (after construction)
    -------------------------------
    peer_ids:
        The observed peers, ``0 .. num_peers-1``.
    measurement_id:
        The instrumented peer's id (``num_peers``).
    edges:
        ``{(uploader, downloader): bytes}`` over observed peers and the
        measurement peer.  External (unobserved) volume is *not* in the
        edge set — it only inflates the download totals below.
    uploaded / downloaded:
        Ground-truth totals per peer **including** external volume; this
        is what Figure 4(a) plots.
    histories:
        Per-peer :class:`~repro.core.history.PrivateHistory` built from
        the edge set (the gossip source material).
    """

    def __init__(self, params: DeploymentParams = None, seed: int = 0) -> None:
        self.params = params if params is not None else DeploymentParams()
        self.params.validate()
        self.seed = int(seed)
        self.measurement_id = self.params.num_peers
        self.peer_ids: List[int] = list(range(self.params.num_peers))
        self.edges: Dict[Tuple[int, int], float] = {}
        self.uploaded: Dict[int, float] = {}
        self.downloaded: Dict[int, float] = {}
        self.histories: Dict[int, PrivateHistory] = {}
        self._generate()

    # ------------------------------------------------------------------
    def _generate(self) -> None:
        p = self.params
        rngs = RngRegistry(self.seed)
        rng = rngs.stream("deployment")
        gen = rng.generator
        n = p.num_peers

        # --- class assignment ------------------------------------------------
        classes = np.full(n, "consumer", dtype=object)
        order = gen.permutation(n)
        n_fresh = int(p.fresh_fraction * n)
        n_alt = int(p.altruist_fraction * n)
        classes[order[:n_fresh]] = "fresh"
        classes[order[n_fresh : n_fresh + n_alt]] = "altruist"
        self.classes = {pid: str(classes[pid]) for pid in range(n)}

        # --- volumes ---------------------------------------------------------
        download = np.zeros(n)
        consumer_mask = classes == "consumer"
        altruist_mask = classes == "altruist"
        download[consumer_mask] = gen.lognormal(
            p.mean_download_log, p.sigma_download_log, consumer_mask.sum()
        )
        # Altruists also download a little.
        download[altruist_mask] = gen.lognormal(
            p.mean_download_log - 1.0, 1.0, altruist_mask.sum()
        )
        # Upload propensity: how attractive a peer is as an uploader.
        propensity = np.zeros(n)
        propensity[consumer_mask] = gen.uniform(
            0.0, p.consumer_upload_ratio_max, consumer_mask.sum()
        ) * download[consumer_mask]
        propensity[altruist_mask] = (
            gen.uniform(p.altruist_upload_gb_min, p.altruist_upload_gb_max, altruist_mask.sum())
            * GB
        )

        # --- realize transfers -----------------------------------------------
        uploader_pool = np.flatnonzero(propensity > 0)
        weights = propensity[uploader_pool]
        weights = weights / weights.sum()
        edges = self.edges
        for pid in range(n):
            vol = download[pid] * (1.0 - p.external_fraction)
            if vol <= 0:
                continue
            # A peer never downloads from itself: exclude it from the
            # candidate pool (renormalizing the weights) rather than
            # discarding its Dirichlet share afterwards, which silently
            # deflated realized internal volume below the sampled
            # ground truth.
            if propensity[pid] > 0:
                mask = uploader_pool != pid
                pool = uploader_pool[mask]
                pool_weights = weights[mask]
                total = pool_weights.sum()
                if pool.size == 0 or total <= 0:
                    continue
                pool_weights = pool_weights / total
            else:
                pool = uploader_pool
                pool_weights = weights
            k = max(1, int(gen.poisson(p.partners_mean)))
            partners = gen.choice(pool, size=min(k, pool.size), p=pool_weights)
            shares = gen.dirichlet(np.ones(len(partners)))
            for partner, share in zip(partners, shares):
                partner = int(partner)
                nbytes = float(vol * share)
                if nbytes <= 0:
                    continue
                edges[(partner, pid)] = edges.get((partner, pid), 0.0) + nbytes

        # --- the measurement peer ---------------------------------------------
        m = self.measurement_id
        active = np.flatnonzero(classes != "fresh")
        k = min(p.measurement_partners, active.size)
        partners = gen.choice(active, size=k, replace=False)
        up_shares = gen.dirichlet(np.ones(k)) * p.measurement_upload_gb * GB
        for partner, up in zip(partners, up_shares):
            partner = int(partner)
            edges[(m, partner)] = edges.get((m, partner), 0.0) + float(up)
            # The measurement peer also downloads from a subset of partners.
            if gen.random() < p.measurement_download_fraction:
                down = float(gen.uniform(1 * MB, p.measurement_download_max))
                edges[(partner, m)] = edges.get((partner, m), 0.0) + down

        # --- totals (edge volume + external download) --------------------------
        uploaded = {pid: 0.0 for pid in range(n)}
        downloaded = {pid: 0.0 for pid in range(n)}
        uploaded[m] = 0.0
        downloaded[m] = 0.0
        for (src, dst), w in edges.items():
            uploaded[src] += w
            downloaded[dst] += w
        for pid in range(n):
            downloaded[pid] += download[pid] * p.external_fraction
        self.uploaded = uploaded
        self.downloaded = downloaded

        # --- private histories -------------------------------------------------
        histories = {pid: PrivateHistory(pid) for pid in list(range(n)) + [m]}
        for (src, dst), w in edges.items():
            t = rng.uniform(0.0, 30 * 86400.0)
            histories[src].record_upload(dst, w, t)
            histories[dst].record_download(src, w, t)
        self.histories = histories

    # ------------------------------------------------------------------
    def net_contribution(self, pid: int) -> float:
        """Ground-truth upload − download of ``pid`` (bytes)."""
        return self.uploaded[pid] - self.downloaded[pid]

    @property
    def num_edges(self) -> int:
        """Number of directed transfer edges realized."""
        return len(self.edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DeploymentNetwork peers={len(self.peer_ids)} edges={self.num_edges} "
            f"seed={self.seed}>"
        )
