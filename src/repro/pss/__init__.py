"""Peer Sampling Service (PSS).

BarterCast assumes peers can discover gossip partners through a PSS; the
paper uses Tribler's decentralized BuddyCast epidemic protocol and treats
the PSS implementation as transparent to BarterCast.  This subpackage
provides:

* :class:`~repro.pss.buddycast.BuddyCastPSS` — a faithful epidemic
  partial-view protocol (bounded views, periodic view exchange with a
  random live contact, churn handling);
* :class:`~repro.pss.buddycast.OraclePSS` — a global-knowledge sampler
  with the same interface, used as an upper-bound baseline in ablations.
"""

from repro.pss.buddycast import BuddyCastPSS, OraclePSS, PeerSamplingService

__all__ = ["PeerSamplingService", "BuddyCastPSS", "OraclePSS"]
