"""An epidemic peer-sampling service in the style of BuddyCast.

Each peer maintains a bounded *partial view* — a set of peer ids it knows
about, with the time each entry was last refreshed.  On its gossip tick a
peer picks a random live contact from its view, and the pair *exchange
views*: each merges the other's entries into its own view, evicting the
stalest entries when the bound is exceeded.  New peers are bootstrapped
with a handful of seed contacts (in Tribler: superpeer addresses shipped
with the client).

The class is deliberately simulator-facing: it is driven by explicit
``tick(peer)`` calls from the community simulator (which owns the clock and
the online/offline state) rather than scheduling its own events, so one PSS
instance serves the whole simulated network.

The PSS also answers the query BarterCast needs: ``sample(peer)`` returns a
uniform-ish random *online* peer from the peer's current view, or ``None``
if the view holds no live contacts.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Set

from repro.sim.rng import RngStream

__all__ = ["PeerSamplingService", "BuddyCastPSS", "OraclePSS"]

PeerId = Hashable


class PeerSamplingService:
    """Interface: supply gossip partners to BarterCast."""

    def register(self, peer: PeerId, now: float = 0.0) -> None:
        """Introduce ``peer`` to the service (bootstrap its view).

        ``now`` is the join time: bootstrap contacts must be inserted at
        the *current* freshness, or a peer that (re)joins late starts as
        the stalest entry in every view and is evicted first — exactly
        backwards for churn recovery.
        """
        raise NotImplementedError

    def forget(self, peer: PeerId) -> None:
        """Drop ``peer``'s own view (crash losing PSS state).

        The peer stays known to the network; a subsequent
        :meth:`register` re-bootstraps it.  Default: nothing to drop.
        """
        return None

    def tick(self, peer: PeerId, now: float) -> None:
        """Run one PSS round for ``peer`` at time ``now`` (view exchange)."""
        raise NotImplementedError

    def sample(self, peer: PeerId) -> Optional[PeerId]:
        """A random live contact for ``peer``, or ``None``."""
        raise NotImplementedError

    def view_of(self, peer: PeerId) -> List[PeerId]:
        """The peer's current partial view (for inspection/tests)."""
        raise NotImplementedError


class BuddyCastPSS(PeerSamplingService):
    """Bounded-partial-view epidemic sampler.

    Parameters
    ----------
    is_online:
        Callback ``peer -> bool`` supplied by the community simulator; the
        PSS never hands out (or exchanges views with) offline peers.
    rng:
        Random stream for partner selection, bootstrap and eviction ties.
    view_size:
        Maximum entries per view (Tribler keeps O(100); default 30 —
        comfortably above the 100-peer scenarios' gossip needs).
    bootstrap_size:
        Number of random known peers seeded into a newly registered view.
    """

    def __init__(
        self,
        is_online: Callable[[PeerId], bool],
        rng: RngStream,
        view_size: int = 30,
        bootstrap_size: int = 5,
    ) -> None:
        if view_size < 1:
            raise ValueError("view_size must be >= 1")
        self._is_online = is_online
        self._rng = rng
        self.view_size = int(view_size)
        self.bootstrap_size = int(bootstrap_size)
        # peer -> {contact: freshness_time}
        self._views: Dict[PeerId, Dict[PeerId, float]] = {}
        self._all_peers: List[PeerId] = []
        self._exchanges = 0

    # ------------------------------------------------------------------
    @property
    def exchanges(self) -> int:
        """Total number of completed view exchanges."""
        return self._exchanges

    def register(self, peer: PeerId, now: float = 0.0) -> None:
        if peer in self._views:
            return
        self._views[peer] = {}
        # Bootstrap: a few random already-known peers learn about the
        # newcomer and vice versa (stand-in for superpeer introduction).
        # Contacts are seeded at the join time ``now`` — not 0.0 — so a
        # late (re)joiner is the freshest entry, not everyone's first
        # eviction candidate.
        if self._all_peers:
            for contact in self._rng.sample(self._all_peers, self.bootstrap_size):
                if contact != peer:
                    self._views[peer][contact] = now
                    self._insert(contact, peer, now)
        if peer not in self._all_peers:
            self._all_peers.append(peer)

    def forget(self, peer: PeerId) -> None:
        """Drop the peer's own partial view (it remains in others')."""
        self._views.pop(peer, None)

    def tick(self, peer: PeerId, now: float) -> None:
        """One BuddyCast round: exchange views with a random live contact."""
        if peer not in self._views or not self._is_online(peer):
            return
        partner = self.sample(peer)
        if partner is None:
            return
        self._exchange(peer, partner, now)

    def sample(self, peer: PeerId) -> Optional[PeerId]:
        view = self._views.get(peer)
        if not view:
            return None
        live = [c for c in view if c != peer and self._is_online(c)]
        if not live:
            return None
        return self._rng.choice(live)

    def view_of(self, peer: PeerId) -> List[PeerId]:
        return list(self._views.get(peer, {}))

    # ------------------------------------------------------------------
    def _exchange(self, a: PeerId, b: PeerId, now: float) -> None:
        """Symmetric view merge between ``a`` and ``b``."""
        va, vb = self._views[a], self._views[b]
        snapshot_a = list(va.items())
        snapshot_b = list(vb.items())
        self._insert(a, b, now)
        self._insert(b, a, now)
        for contact, fresh in snapshot_b:
            if contact != a:
                self._insert(a, contact, fresh)
        for contact, fresh in snapshot_a:
            if contact != b:
                self._insert(b, contact, fresh)
        self._exchanges += 1

    def _insert(self, owner: PeerId, contact: PeerId, freshness: float) -> None:
        view = self._views.setdefault(owner, {})
        if contact in view:
            view[contact] = max(view[contact], freshness)
        else:
            view[contact] = freshness
            if len(view) > self.view_size:
                # Evict the stalest entry *other than* the contact being
                # inserted: evicting the newcomer itself would make the
                # insert a silent no-op and lock the view's membership.
                stalest = min(
                    (kv for kv in view.items() if kv[0] != contact),
                    key=lambda kv: kv[1],
                )[0]
                del view[stalest]


class OraclePSS(PeerSamplingService):
    """Global-knowledge sampler: returns a uniform random online peer.

    Used in ablations as the ideal PSS; real deployments approximate it
    with epidemics like BuddyCast.
    """

    def __init__(self, is_online: Callable[[PeerId], bool], rng: RngStream) -> None:
        self._is_online = is_online
        self._rng = rng
        self._peers: List[PeerId] = []
        self._known: Set[PeerId] = set()

    def register(self, peer: PeerId, now: float = 0.0) -> None:
        if peer not in self._known:
            self._known.add(peer)
            self._peers.append(peer)

    def tick(self, peer: PeerId, now: float) -> None:
        return  # nothing to maintain

    def sample(self, peer: PeerId) -> Optional[PeerId]:
        live = [p for p in self._peers if p != peer and self._is_online(p)]
        if not live:
            return None
        return self._rng.choice(live)

    def view_of(self, peer: PeerId) -> List[PeerId]:
        return [p for p in self._peers if p != peer]
