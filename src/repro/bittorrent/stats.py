"""Measurement: per-peer transfer accounting and time-bucketed series.

The figures need three observables:

* **real behaviour** — total bytes uploaded/downloaded per peer (Figure
  1(b)'s net contribution, Figure 4(a)'s upload − download);
* **download speed over time** — per-bucket average download speed of a
  peer group, where a peer contributes to a bucket only for the time it
  was actually leeching (Figures 2 and 3);
* **reputation over time** — periodic snapshots of system reputations
  (Figure 1(a)), recorded by the experiment drivers through
  :meth:`StatsCollector.record_reputation_sample`.

All counters are NumPy arrays indexed by a dense peer index, so recording
a transfer is O(1) and series extraction is vectorized.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry

__all__ = ["StatsCollector"]


class StatsCollector:
    """Accumulates transfer and timing statistics for one simulation run.

    Parameters
    ----------
    peer_ids:
        All peers to track (subjects and infrastructure).
    duration:
        Simulation horizon (seconds).
    bucket_seconds:
        Width of the time buckets used for speed series.
    metrics:
        The run's metrics registry.  Aggregate telemetry (e.g. the
        reputation-cache counters the simulator publishes at the end of
        a run) lands here as ``rep.cache.*`` gauges; when no registry is
        passed the collector owns a private one so the telemetry stays
        queryable even for uninstrumented runs.
    """

    def __init__(
        self,
        peer_ids: Sequence[int],
        duration: float,
        bucket_seconds: float,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.peer_ids = list(peer_ids)
        self.index = {pid: i for i, pid in enumerate(self.peer_ids)}
        self.duration = float(duration)
        self.bucket_seconds = float(bucket_seconds)
        self.num_buckets = int(-(-duration // bucket_seconds))
        n = len(self.peer_ids)
        self.downloaded = np.zeros((n, self.num_buckets))
        self.uploaded = np.zeros((n, self.num_buckets))
        self.leech_time = np.zeros((n, self.num_buckets))
        #: (time, {peer_id: system reputation}) snapshots.
        self.reputation_samples: List[Tuple[float, Dict[int, float]]] = []
        #: The registry all aggregate telemetry is published into.
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def bucket_of(self, now: float) -> int:
        """The bucket index containing time ``now`` (clamped to range)."""
        b = int(now / self.bucket_seconds)
        return min(max(b, 0), self.num_buckets - 1)

    def record_transfer(self, uploader: int, downloader: int, nbytes: float, now: float) -> None:
        """Account ``nbytes`` moving from ``uploader`` to ``downloader``."""
        b = self.bucket_of(now)
        self.uploaded[self.index[uploader], b] += nbytes
        self.downloaded[self.index[downloader], b] += nbytes

    def record_leech_time(self, peer: int, seconds: float, now: float) -> None:
        """Account ``seconds`` of active leeching for ``peer`` at ``now``."""
        self.leech_time[self.index[peer], self.bucket_of(now)] += seconds

    def record_reputation_sample(self, now: float, reputations: Dict[int, float]) -> None:
        """Store a snapshot of system reputations at time ``now``."""
        self.reputation_samples.append((now, dict(reputations)))

    def record_cache_telemetry(
        self, hits: int, misses: int, invalidations: int
    ) -> None:
        """Publish cumulative reputation-cache counters (this run's totals).

        The simulator aggregates the per-node ``rep_cache_*`` counters
        over the whole population at the end of a run.  The exact totals
        are kept on this collector (per-run properties below); the shared
        ``rep.cache.*`` gauges *accumulate* across runs, so a registry
        spanning several simulations — serial or merged from parallel
        workers — reports the same process-wide totals either way.
        """
        self._rep_cache_totals = (int(hits), int(misses), int(invalidations))
        self.metrics.gauge("rep.cache.hits").inc(int(hits))
        self.metrics.gauge("rep.cache.misses").inc(int(misses))
        self.metrics.gauge("rep.cache.invalidations").inc(int(invalidations))

    @property
    def rep_cache_hits(self) -> int:
        """Aggregate cache hits of this run."""
        return getattr(self, "_rep_cache_totals", (0, 0, 0))[0]

    @property
    def rep_cache_misses(self) -> int:
        """Aggregate cache misses of this run."""
        return getattr(self, "_rep_cache_totals", (0, 0, 0))[1]

    @property
    def rep_cache_invalidations(self) -> int:
        """Aggregate invalidations of this run."""
        return getattr(self, "_rep_cache_totals", (0, 0, 0))[2]

    def cache_hit_rate(self) -> float:
        """Fraction of reputation lookups served from the cache.

        NaN when no lookups were recorded (e.g. under ``NoPolicy`` the
        choker never consults reputations).
        """
        total = self.rep_cache_hits + self.rep_cache_misses
        if total == 0:
            return float("nan")
        return self.rep_cache_hits / total

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    def total_uploaded(self, peer: int) -> float:
        """All bytes ``peer`` uploaded during the run."""
        return float(self.uploaded[self.index[peer]].sum())

    def total_downloaded(self, peer: int) -> float:
        """All bytes ``peer`` downloaded during the run."""
        return float(self.downloaded[self.index[peer]].sum())

    def net_contribution(self, peer: int) -> float:
        """Real upload minus real download (bytes) — the paper's measure of
        a peer's actual behaviour."""
        return self.total_uploaded(peer) - self.total_downloaded(peer)

    # ------------------------------------------------------------------
    # Series
    # ------------------------------------------------------------------
    def bucket_times(self) -> np.ndarray:
        """Bucket midpoints in seconds."""
        return (np.arange(self.num_buckets) + 0.5) * self.bucket_seconds

    def group_speed_series(self, peers: Iterable[int]) -> np.ndarray:
        """Average download speed (bytes/s) of a peer group per bucket.

        A peer contributes to a bucket only if it spent time leeching in
        that bucket; the group value is the mean of the contributing peers'
        individual speeds (bytes downloaded / leech seconds).  Buckets with
        no contributing peer are NaN.
        """
        rows = [self.index[p] for p in peers]
        if not rows:
            return np.full(self.num_buckets, np.nan)
        down = self.downloaded[rows]
        time = self.leech_time[rows]
        with np.errstate(invalid="ignore", divide="ignore"):
            speeds = np.where(time > 0, down / np.maximum(time, 1e-12), np.nan)
        out = np.full(self.num_buckets, np.nan)
        counts = (time > 0).sum(axis=0)
        has = counts > 0
        if has.any():
            out[has] = np.nanmean(speeds[:, has], axis=0)
        return out

    def group_mean_speed(
        self, peers: Iterable[int], t0: float = 0.0, t1: Optional[float] = None
    ) -> float:
        """Aggregate speed of a group over ``[t0, t1)``: total bytes / total
        leech time (bytes/s; NaN if the group never leeched)."""
        if t1 is None:
            t1 = self.duration
        b0 = self.bucket_of(t0)
        b1 = self.bucket_of(max(t0, t1 - 1e-9)) + 1
        rows = [self.index[p] for p in peers]
        if not rows:
            return float("nan")
        down = self.downloaded[rows, b0:b1].sum()
        time = self.leech_time[rows, b0:b1].sum()
        if time <= 0:
            return float("nan")
        return float(down / time)

    def reputation_series(self, peers: Iterable[int]) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, mean_reputation)`` over the stored snapshots for a group."""
        peers = list(peers)
        times = np.array([t for t, _ in self.reputation_samples])
        means = np.array(
            [
                np.mean([snap[p] for p in peers if p in snap]) if any(p in snap for p in peers) else np.nan
                for _, snap in self.reputation_samples
            ]
        )
        return times, means

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StatsCollector peers={len(self.peer_ids)} buckets={self.num_buckets} "
            f"bytes={self.downloaded.sum():.3e}>"
        )
