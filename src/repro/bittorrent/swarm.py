"""Swarm state: membership, bitfields, availability.

A :class:`SwarmState` tracks which peers are members of one torrent, their
piece possession, the per-piece availability counts that drive rarest-first
selection, and the per-round transfer rates that drive tit-for-tat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.bittorrent.piece import Bitfield
from repro.traces.models import SwarmSpec

__all__ = ["MemberState", "SwarmState"]


@dataclass
class MemberState:
    """One peer's state within one swarm.

    Attributes
    ----------
    peer_id:
        The member peer.
    bitfield:
        Piece possession.
    joined_at:
        Simulated time the peer (first) joined.
    completed_at:
        Time the download finished, or ``None`` while leeching.
    received_last_round:
        ``{uploader_id: bytes}`` received in the previous round — the
        tit-for-tat ranking key for leechers.
    sent_last_round:
        ``{downloader_id: bytes}`` sent in the previous round — the
        ranking key for seeders (serve the fastest downloaders).
    in_flight:
        Mask of pieces currently assigned to some connection this round
        (avoids duplicate piece fetches across connections).
    optimistic_peer / optimistic_chosen_round:
        Current optimistic-unchoke target and when it was chosen.
    carry:
        ``{uploader_id: bytes}`` of partial-piece progress carried between
        rounds per connection.
    """

    peer_id: int
    bitfield: Bitfield
    joined_at: float
    completed_at: Optional[float] = None
    received_last_round: Dict[int, float] = field(default_factory=dict)
    sent_last_round: Dict[int, float] = field(default_factory=dict)
    in_flight: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))
    optimistic_peer: Optional[int] = None
    optimistic_chosen_round: int = -(10**9)
    carry: Dict[int, float] = field(default_factory=dict)

    @property
    def is_seeder(self) -> bool:
        """Whether the member holds the complete file."""
        return self.bitfield.is_complete

    @property
    def is_leecher(self) -> bool:
        """Whether the member is still downloading."""
        return not self.bitfield.is_complete


class SwarmState:
    """All simulator state for one torrent.

    Parameters
    ----------
    spec:
        The trace's swarm description (sizes, origin seeder).
    """

    def __init__(self, spec: SwarmSpec) -> None:
        self.spec = spec
        self.num_pieces = spec.num_pieces
        self.members: Dict[int, MemberState] = {}
        #: Per-piece copy counts among current members (rarest-first key).
        self.availability = np.zeros(self.num_pieces, dtype=np.int32)
        self.completions = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(self, peer_id: int, now: float, complete: bool = False) -> MemberState:
        """Add a member (idempotent: rejoining returns the existing state).

        ``complete=True`` joins the peer as a seeder (origin seeders).
        """
        member = self.members.get(peer_id)
        if member is not None:
            return member
        bitfield = Bitfield(self.num_pieces, complete=complete)
        member = MemberState(
            peer_id=peer_id,
            bitfield=bitfield,
            joined_at=now,
            completed_at=now if complete else None,
            in_flight=np.zeros(self.num_pieces, dtype=bool),
        )
        self.members[peer_id] = member
        if complete:
            self.availability += 1
        return member

    def leave(self, peer_id: int) -> None:
        """Remove a member and its availability contribution (idempotent)."""
        member = self.members.pop(peer_id, None)
        if member is None:
            return
        if member.bitfield.num_have:
            self.availability -= member.bitfield.have.astype(np.int32)

    def is_member(self, peer_id: int) -> bool:
        """Whether ``peer_id`` is currently a member."""
        return peer_id in self.members

    # ------------------------------------------------------------------
    # Piece bookkeeping
    # ------------------------------------------------------------------
    def grant_pieces(self, member: MemberState, pieces: np.ndarray, now: float) -> bool:
        """Mark ``pieces`` as completed by ``member``; returns True if the
        download just finished."""
        new = member.bitfield.add_many(pieces)
        if new:
            self.availability[pieces] += 1
        if member.completed_at is None and member.bitfield.is_complete:
            member.completed_at = now
            self.completions += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def leechers(self) -> List[MemberState]:
        """Members still downloading."""
        return [m for m in self.members.values() if m.is_leecher]

    def seeders(self) -> List[MemberState]:
        """Members holding the complete file."""
        return [m for m in self.members.values() if m.is_seeder]

    def clear_in_flight(self) -> None:
        """Reset all members' in-flight piece masks (start of a round)."""
        for member in self.members.values():
            member.in_flight[:] = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SwarmState {self.spec.swarm_id} members={len(self.members)} "
            f"pieces={self.num_pieces} completions={self.completions}>"
        )
