"""Behavioural roles of simulated peers.

The paper layers two independent behavioural axes on top of the trace:

* **sharing role** — *sharer* (seeds every completed file for 10 hours) vs
  *(lazy) freerider* (leaves the swarm immediately after finishing a
  download); origin seeders are infrastructure (always seed, excluded from
  statistics);
* **message behaviour** — honest, ignoring the message protocol, or lying
  selfishly (Figure 3); assigned via
  :mod:`repro.core.adversary` behaviours.

:class:`RoleAssignment` derives both deterministically from a seed so that
policy variants run against identical populations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.core.adversary import HonestBehavior, Ignorer, MessageBehavior, SelfishLiar
from repro.sim.rng import RngRegistry
from repro.traces.models import CommunityTrace

__all__ = ["Role", "RoleAssignment"]


class Role(str, Enum):
    """Sharing behaviour of a peer."""

    SHARER = "sharer"
    FREERIDER = "freerider"
    ORIGIN = "origin"  # infrastructure seeder; excluded from statistics


@dataclass
class RoleAssignment:
    """Maps every peer to a sharing role and a message behaviour.

    Attributes
    ----------
    roles:
        ``{peer_id: Role}`` covering every peer in the trace.
    behaviors:
        ``{peer_id: MessageBehavior}``; peers default to honest.
    """

    roles: Dict[int, Role]
    behaviors: Dict[int, MessageBehavior] = field(default_factory=dict)

    @classmethod
    def split(
        cls,
        trace: CommunityTrace,
        freerider_fraction: float = 0.5,
        seed: int = 0,
        disobey_fraction: float = 0.0,
        disobey_kind: Optional[str] = None,
    ) -> "RoleAssignment":
        """The paper's population split.

        ``freerider_fraction`` of the subject peers are lazy freeriders,
        the rest sharers; origin seeders keep the ORIGIN role.  If
        ``disobey_fraction`` > 0, that fraction of *all subject peers* is
        given the disobeying message behaviour ``disobey_kind`` (``"ignore"``
        or ``"lie"``), drawn randomly from the freerider half — the paper
        assumes cooperative sharers obey the protocol, so at most the
        freerider fraction can disobey.

        Raises
        ------
        ValueError
            If ``disobey_fraction`` exceeds ``freerider_fraction`` or the
            kind is unknown.
        """
        if not 0.0 <= freerider_fraction <= 1.0:
            raise ValueError("freerider_fraction must be a probability")
        if not 0.0 <= disobey_fraction <= 1.0:
            raise ValueError("disobey_fraction must be a probability")
        if disobey_fraction > 0 and disobey_kind not in ("ignore", "lie"):
            raise ValueError(f"unknown disobey_kind {disobey_kind!r}")
        if disobey_fraction > freerider_fraction + 1e-12:
            raise ValueError(
                "disobeying peers are drawn from the freeriders: "
                f"disobey_fraction={disobey_fraction} > freerider_fraction={freerider_fraction}"
            )
        rng = RngRegistry(seed).stream("roles")
        subject_ids = sorted(
            pid
            for pid, prof in trace.peers.items()
            if not any(s.origin_seeder == pid for s in trace.swarms.values())
        )
        origin_ids = [pid for pid in trace.peers if pid not in set(subject_ids)]
        shuffled = rng.shuffled(subject_ids)
        n_free = int(round(freerider_fraction * len(subject_ids)))
        freeriders = shuffled[:n_free]
        sharers = shuffled[n_free:]
        roles: Dict[int, Role] = {pid: Role.ORIGIN for pid in origin_ids}
        roles.update({pid: Role.FREERIDER for pid in freeriders})
        roles.update({pid: Role.SHARER for pid in sharers})

        behaviors: Dict[int, MessageBehavior] = {}
        if disobey_fraction > 0:
            n_disobey = int(round(disobey_fraction * len(subject_ids)))
            n_disobey = min(n_disobey, len(freeriders))
            chosen = rng.sample(freeriders, n_disobey)
            maker = Ignorer if disobey_kind == "ignore" else SelfishLiar
            for pid in chosen:
                behaviors[pid] = maker()
        return cls(roles=roles, behaviors=behaviors)

    # ------------------------------------------------------------------
    def role_of(self, peer_id: int) -> Role:
        """The sharing role of ``peer_id``."""
        return self.roles[peer_id]

    def behavior_of(self, peer_id: int) -> MessageBehavior:
        """The message behaviour of ``peer_id`` (honest by default)."""
        return self.behaviors.get(peer_id) or HonestBehavior()

    def peers_with_role(self, role: Role) -> List[int]:
        """All peer ids with the given role, sorted."""
        return sorted(pid for pid, r in self.roles.items() if r == role)

    @property
    def sharers(self) -> List[int]:
        """Sharer peer ids."""
        return self.peers_with_role(Role.SHARER)

    @property
    def freeriders(self) -> List[int]:
        """Freerider peer ids."""
        return self.peers_with_role(Role.FREERIDER)

    @property
    def subjects(self) -> List[int]:
        """All non-infrastructure peer ids (sharers + freeriders)."""
        return sorted(self.sharers + self.freeriders)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RoleAssignment sharers={len(self.sharers)} "
            f"freeriders={len(self.freeriders)} disobeying={len(self.behaviors)}>"
        )
