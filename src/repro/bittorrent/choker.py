"""Choking: tit-for-tat slot assignment plus the optimistic unchoke.

Standard BitTorrent semantics (Section 4.1 of the paper):

* a **leecher** assigns its regular slots to the interested peers that
  provided it the highest download rate in the last round (tit-for-tat);
* a **seeder** assigns its regular slots to the peers with the highest
  download rate *from it* (serve the fastest downloaders);
* one extra **optimistic unchoke** slot rotates every 30 seconds over the
  interested peers — in plain BitTorrent uniformly, under the *rank*
  policy in order of BarterCast reputation;
* under the *ban* policy, peers whose reputation is below δ receive no
  slot of any kind.

Interest is approximated by the cheap test "the candidate is an online,
connectable leecher and I hold at least one piece" (exact piece-mask
interest is evaluated on the transfer path, where a wasted slot simply
carries zero bytes — the standard flow-level simplification).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.bittorrent.config import BitTorrentConfig
from repro.bittorrent.swarm import MemberState, SwarmState
from repro.core.node import BarterCastNode
from repro.core.policies import ReputationPolicy
from repro.obs import Observability
from repro.sim.rng import RngStream

__all__ = ["select_unchokes", "interested_candidates"]


def interested_candidates(
    swarm: SwarmState,
    uploader: MemberState,
    is_online: Callable[[int], bool],
    can_connect: Callable[[int, int], bool],
) -> List[int]:
    """Peers that could accept data from ``uploader`` this round."""
    if uploader.bitfield.num_have == 0:
        return []
    out: List[int] = []
    for pid, member in swarm.members.items():
        if pid == uploader.peer_id or not member.is_leecher:
            continue
        if not is_online(pid):
            continue
        if not can_connect(uploader.peer_id, pid):
            continue
        out.append(pid)
    return out


def select_unchokes(
    swarm: SwarmState,
    uploader: MemberState,
    *,
    policy: ReputationPolicy,
    node: Optional[BarterCastNode],
    rng: RngStream,
    round_idx: int,
    config: BitTorrentConfig,
    is_online: Callable[[int], bool],
    can_connect: Callable[[int, int], bool],
    obs: Optional[Observability] = None,
) -> Set[int]:
    """The set of peers ``uploader`` sends data to this round.

    Combines the tit-for-tat regular slots with the (policy-ordered)
    optimistic slot; banned peers are excluded everywhere.  When ``obs``
    is passed (only ever an *enabled* bundle — callers keep the disabled
    default as ``None`` so this path stays branch-free), every call
    bumps ``choke.calls`` and policy-banned candidates bump
    ``choke.banned``.
    """
    candidates = interested_candidates(swarm, uploader, is_online, can_connect)
    if not candidates:
        uploader.optimistic_peer = None
        return set()
    # One batched reputation pass per round; the per-candidate allows()
    # checks below (and the optimistic ordering) then hit the warm cache.
    policy.prewarm(node, candidates)
    allowed = [c for c in candidates if policy.allows(node, c)]
    if obs is not None and obs.metrics.enabled:
        metrics = obs.metrics
        metrics.counter("choke.calls").inc()
        banned = len(candidates) - len(allowed)
        if banned:
            metrics.counter("choke.banned").inc(banned)

    # --- regular slots: tit-for-tat ranking --------------------------------
    if uploader.is_seeder:
        key = uploader.sent_last_round
    else:
        key = uploader.received_last_round
    ranked = rng.shuffled(allowed)  # random tie-break
    ranked.sort(key=lambda pid: -key.get(pid, 0.0))
    regular = set(ranked[: config.regular_slots])

    # --- optimistic slot ----------------------------------------------------
    rotation_due = (
        round_idx - uploader.optimistic_chosen_round >= config.optimistic_every_rounds
    )
    current = uploader.optimistic_peer
    promoted = current is not None and current in allowed and current in regular
    current_valid = (
        current is not None
        and current in allowed
        and current not in regular
    )
    if rotation_due or not current_valid:
        remaining = [c for c in allowed if c not in regular]
        ordered = policy.order_optimistic(node, remaining, rng)
        uploader.optimistic_peer = ordered[0] if ordered else None
        if rotation_due or not promoted:
            # A genuine rotation (or a vanished/banned target) restarts
            # the 30 s clock.  A re-pick forced only because the current
            # optimistic peer got promoted into a regular slot does NOT:
            # resetting there silently moved every future rotation
            # whenever tit-for-tat adopted the optimistic choice, so the
            # cadence drifted off the configured period.
            uploader.optimistic_chosen_round = round_idx
    if uploader.optimistic_peer is not None:
        regular.add(uploader.optimistic_peer)
    return regular
