"""The trace-driven community simulator.

:class:`CommunitySimulator` combines every substrate in the reproduction:
the discrete-event kernel drives trace sessions and file requests, the
BuddyCast PSS supplies gossip partners, BarterCast nodes accumulate
histories and reputations, and the BitTorrent machinery (choking,
rarest-first, bandwidth sharing) moves the actual bytes.  One instance
simulates one scenario: a trace, a role assignment, and a reputation
policy.

Simulation structure per round (``config.round_interval`` seconds):

1. membership maintenance — sharers whose 10-hour seed window elapsed
   leave their swarms;
2. choking — every online member of every swarm selects its unchoke set
   (tit-for-tat + policy-ordered optimistic slot);
3. bandwidth allocation — each uploader's uplink is split equally over its
   active links across *all* swarms; each receiver's downlink caps its
   total intake proportionally;
4. transfer — each link moves its bytes, completing whole rarest-first
   pieces, with every byte accounted in both BarterCast private histories
   and the statistics collector;
5. completion handling — freeriders leave finished swarms immediately,
   sharers convert to seeders.

Gossip runs as a separate periodic process: each online peer exchanges
BarterCast messages (bidirectionally) with a PSS-sampled partner.
"""

from __future__ import annotations

import time as _time
from collections import Counter, defaultdict
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.bittorrent.choker import select_unchokes
from repro.bittorrent.config import BitTorrentConfig
from repro.bittorrent.piece import pick_rarest
from repro.bittorrent.roles import Role, RoleAssignment
from repro.bittorrent.stats import StatsCollector
from repro.bittorrent.swarm import SwarmState
from repro.core.node import BarterCastConfig, BarterCastNode
from repro.core.policies import NoPolicy, ReputationPolicy
from repro.faults import ChannelModel, ChurnInjector, FaultConfig
from repro.graph import kernel_invocations_delta, snapshot_kernel_invocations
from repro.obs import NULL_OBS, Observability
from repro.obs.provenance import ProvenanceRecorder
from repro.pss.buddycast import BuddyCastPSS, OraclePSS, PeerSamplingService
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RngRegistry
from repro.traces.models import CommunityTrace

__all__ = ["CommunitySimulator"]


class CommunitySimulator:
    """Simulates a BitTorrent community running BarterCast.

    Parameters
    ----------
    trace:
        The community workload (peers, sessions, swarms, requests).
    roles:
        Sharing roles and message behaviours per peer.
    policy:
        The reputation policy the choker consults (default: plain
        BitTorrent, :class:`~repro.core.policies.NoPolicy`).
    config:
        BitTorrent/engine parameters.
    bc_config:
        BarterCast parameters (``Nh``, ``Nr``, metric).
    seed:
        Root seed for all stochastic components.
    pss:
        ``"buddycast"`` (epidemic partial views, default) or ``"oracle"``
        (ideal global sampler, for ablations).
    faults:
        Optional :class:`~repro.faults.FaultConfig`.  A non-null config
        inserts the unreliable channel between ``create_message`` and
        ``receive_message`` (loss, duplication, bounded random delay /
        reordering, connectability) and/or the churn injector (abrupt
        crash+rejoin with PSS re-registration and optional gossip-state
        wipes).  ``None`` or a null config changes *nothing*: no extra
        RNG streams, no extra events — runs are byte-identical to a
        build without the fault layer.
    obs:
        Observability bundle, threaded through the engine, every node,
        and the choker.  When enabled, rounds/transfers/gossip are
        counted and timed (``bt.*``, ``gossip.*``) and sampled trace
        events are emitted; run results stay bit-identical either way
        because instrumentation never touches the simulation RNGs.
    provenance:
        When True, one shared
        :class:`~repro.obs.provenance.ProvenanceRecorder` is created and
        threaded into every node: outgoing gossip messages get stamped
        ids and every live shared-history claim carries lineage, queried
        after the run via :mod:`repro.obs.explain`.  Recording consumes
        no simulation RNG and never feeds back into behaviour, so
        results are bit-identical either way (pinned by test).
    engine:
        Reputation mechanism every node runs (DESIGN.md §15):
        ``"bartercast"`` (default, byte-identical native path),
        ``"gossip"``, or ``"ratio"``.  Stored as ``engine_name`` (the
        ``engine`` attribute is the event kernel).  Under ``NoPolicy``
        reputations are never consulted during the run, so the same
        seeded schedule replays identically for every mechanism.
    """

    def __init__(
        self,
        trace: CommunityTrace,
        roles: RoleAssignment,
        policy: Optional[ReputationPolicy] = None,
        config: Optional[BitTorrentConfig] = None,
        bc_config: Optional[BarterCastConfig] = None,
        seed: int = 0,
        pss: str = "buddycast",
        faults: Optional[FaultConfig] = None,
        obs: Optional[Observability] = None,
        provenance: bool = False,
        engine: str = "bartercast",
    ) -> None:
        trace.validate()
        self.trace = trace
        self.roles = roles
        self.policy = policy if policy is not None else NoPolicy()
        self.config = config if config is not None else BitTorrentConfig()
        self.config.validate()
        self.bc_config = bc_config if bc_config is not None else BarterCastConfig()
        self.obs = obs if obs is not None else NULL_OBS
        self.engine = Simulator(obs=self.obs)
        self.engine_name = engine
        self.rngs = RngRegistry(seed)

        metrics = self.obs.metrics
        if metrics.enabled:
            self._m_rounds = metrics.counter("bt.rounds")
            self._m_transfers = metrics.counter("bt.transfers")
            self._m_bytes = metrics.counter("bt.bytes")
            self._t_round = metrics.timer("bt.round_s")
            self._t_choke = metrics.timer("bt.choke_s")
            self._m_gossip = metrics.counter("gossip.exchanges")
            self._m_gossip_lost = metrics.counter("gossip.messages_lost")
        else:
            self._m_rounds = None
            self._m_transfers = None
            self._m_bytes = None
            self._t_round = None
            self._t_choke = None
            self._m_gossip = None
            self._m_gossip_lost = None
        tracer = self.obs.tracer
        self._tr_round = tracer.category("bt.round") if tracer.enabled else None
        self._tr_transfer = tracer.category("bt.transfer") if tracer.enabled else None
        self._tr_gossip = tracer.category("gossip.exchange") if tracer.enabled else None
        self._choker_obs = self.obs if self.obs.enabled else None
        profiler = self.obs.profiler
        self._profiler = profiler if profiler.enabled else None
        self._kernel_baseline = snapshot_kernel_invocations()

        # Provenance: one recorder shared by every node (lineage itself
        # lives per-claim inside each node's shared history).  ``None``
        # when off — nodes then keep their seed-identical fast paths.
        self.provenance: Optional[ProvenanceRecorder] = (
            ProvenanceRecorder(obs=self.obs) if provenance else None
        )
        self.nodes: Dict[int, BarterCastNode] = {
            pid: BarterCastNode(
                pid,
                self.bc_config,
                behavior=roles.behavior_of(pid),
                obs=self.obs,
                provenance=self.provenance,
                engine=engine,
            )
            for pid in trace.peers
        }
        self.online: Set[int] = set()
        self.swarms: Dict[int, SwarmState] = {
            sid: SwarmState(spec) for sid, spec in trace.swarms.items()
        }
        self.stats = StatsCollector(
            list(trace.peers),
            trace.duration,
            self.config.sample_interval,
            metrics=metrics if metrics.enabled else None,
        )
        self.round_idx = 0
        # Origin seeders are infrastructure (a private community keeps its
        # torrents seeded); they serve everyone and never apply the
        # reputation policy.  An origin seeder never downloads, so under
        # BarterCast it would see every peer as net-negative and a ban
        # policy would eventually starve the whole community — an artifact
        # of the substitution, not of the paper's mechanism (see DESIGN.md).
        self._origin_policy = NoPolicy()
        self._choke_rng = self.rngs.stream("choker")
        self._gossip_rng = self.rngs.stream("gossip")
        self._samplers: List[Callable[[float], None]] = []

        if pss == "buddycast":
            self.pss: PeerSamplingService = BuddyCastPSS(
                is_online=self.is_online,
                rng=self.rngs.stream("pss"),
                view_size=self.config.pss_view_size,
            )
        elif pss == "oracle":
            self.pss = OraclePSS(is_online=self.is_online, rng=self.rngs.stream("pss"))
        else:
            raise ValueError(f"unknown pss kind {pss!r}")
        for pid in self.rngs.stream("pss-bootstrap").shuffled(sorted(trace.peers)):
            self.pss.register(pid)

        # Fault layer: constructed only for a non-null config, so a
        # fault-free simulation allocates no channel/churn RNG streams
        # and schedules no extra events (byte-identity, DESIGN.md §9).
        self.faults = faults
        self.channel: Optional[ChannelModel] = None
        self.churn: Optional[ChurnInjector] = None
        if faults is not None and not faults.is_null:
            faults.validate()
            if faults.has_channel_faults:
                self.channel = ChannelModel(
                    faults, self.rngs.stream("faults.channel"), obs=self.obs
                )
            if faults.churn_rate > 0:
                self.churn = ChurnInjector(
                    faults,
                    self.engine,
                    self.rngs.stream("faults.churn"),
                    sorted(trace.peers),
                    horizon=trace.duration,
                    on_rejoin=self._churn_rejoin,
                )

        self._schedule_trace_events()
        self._round_proc = PeriodicProcess(
            self.engine,
            self.config.round_interval,
            self._round,
            start_delay=self.config.round_interval,
            label="bt-round",
        )
        self._gossip_proc = PeriodicProcess(
            self.engine,
            self.config.gossip_interval,
            self._gossip_round,
            start_delay=self.config.gossip_interval / 2.0,
            label="gossip",
        )
        self._sample_proc = PeriodicProcess(
            self.engine,
            self.config.sample_interval,
            self._fire_samplers,
            start_delay=self.config.sample_interval,
            label="sample",
        )

        # Convergence time-series: a recorder with coverage/inversion/
        # cache/net probes, sampling on its own periodic event (or riding
        # the stats sampler).  Constructed only when the leg is enabled,
        # so plain runs schedule nothing extra (byte-identity).
        self.timeseries = None
        self._ts_gossip: Optional[int] = None
        self._ts_bytes: Optional[float] = None
        if self.obs.timeseries.enabled:
            self._setup_timeseries(self.obs.timeseries)

        # Causal dissemination recording (DESIGN.md §16): an append-only
        # event log fed from the message path and the fault seams.  None
        # when off — every hook below guards on that, so plain runs are
        # byte-identical (no RNG use, no extra events either way).
        self.dissemination = None
        if self.obs.dissemination.enabled:
            self._setup_dissemination(self.obs.dissemination)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _schedule_trace_events(self) -> None:
        for pid, profile in self.trace.peers.items():
            for session in profile.sessions:
                self.engine.schedule_at(
                    session.start, lambda p=pid: self.online.add(p), label="online"
                )
                self.engine.schedule_at(
                    min(session.end, self.trace.duration),
                    lambda p=pid: self.online.discard(p),
                    label="offline",
                )
        for sid, spec in self.trace.swarms.items():
            self.engine.schedule_at(
                0.0,
                lambda s=sid, p=spec.origin_seeder: self._join(s, p, complete=True),
                label="origin-join",
            )
        for req in self.trace.requests:
            self.engine.schedule_at(
                req.time,
                lambda r=req: self._join(r.swarm_id, r.peer_id),
                label="request",
            )

    def _join(self, swarm_id: int, peer_id: int, complete: bool = False) -> None:
        swarm = self.swarms[swarm_id]
        if swarm.is_member(peer_id):
            return
        if self.trace.swarms[swarm_id].origin_seeder == peer_id:
            complete = True
        swarm.join(peer_id, self.engine.now, complete=complete)

    def _leave(self, swarm_id: int, peer_id: int) -> None:
        self.swarms[swarm_id].leave(peer_id)

    # ------------------------------------------------------------------
    # Queries used by the choker / PSS
    # ------------------------------------------------------------------
    def is_online(self, peer_id: int) -> bool:
        """Whether the peer is currently within one of its trace sessions
        (and not knocked out by a churn outage)."""
        if peer_id not in self.online:
            return False
        return self.churn is None or peer_id not in self.churn.down

    def can_connect(self, a: int, b: int) -> bool:
        """Whether peers ``a`` and ``b`` can form a connection (at least one
        must accept incoming connections)."""
        return self.trace.peers[a].connectable or self.trace.peers[b].connectable

    def _churn_rejoin(self, peer: int, now: float, wiped: bool) -> None:
        """Churn rejoin hook: replay the recovery path of a restarted peer.

        A *hard* restart (``wiped``) lost the in-memory gossip state: the
        subjective shared history is wiped (``forget_reporter`` per
        reporter) and the peer re-bootstraps its PSS view at the rejoin
        time — exercising exactly the churn-sensitive BuddyCast paths.
        """
        if wiped:
            self.nodes[peer].wipe_shared_history()
            self.pss.forget(peer)
            if self.dissemination is not None:
                self.dissemination.record_wipe(peer, now)
        self.pss.register(peer, now)

    # ------------------------------------------------------------------
    # Observation hooks
    # ------------------------------------------------------------------
    def add_sampler(self, fn: Callable[[float], None]) -> None:
        """Register a callback fired every ``config.sample_interval``."""
        self._samplers.append(fn)

    def _fire_samplers(self) -> None:
        now = self.engine.now
        for fn in self._samplers:
            fn(now)

    def _setup_timeseries(self, collector) -> None:
        """Create this run's convergence recorder and register probes.

        Probes only *read* simulation state (the reputation probes query
        through the normal cache path, so they warm it — affecting the
        ``rep.cache.*`` telemetry counters but never a computed value or
        an RNG stream).  The sampling event shifts engine sequence
        numbers uniformly without reordering simulation events, so
        results stay bit-identical (pinned by test).
        """
        from repro.obs.timeseries import TimeSeriesRecorder

        cfg = collector.config
        recorder = TimeSeriesRecorder(
            label=collector.next_label(), capacity=cfg.capacity
        )
        if self.engine_name != "bartercast":
            # Tag rival-mechanism series so merged sweep exports stay
            # attributable.  Default runs are left untagged: their JSON
            # snapshots must stay byte-identical to pre-zoo builds.
            recorder.meta["engine"] = self.engine_name
        self._ts_gt_cache: Optional[tuple] = None
        recorder.add_probe("coverage", self._probe_coverage)
        recorder.add_probe("rank_inversion_rate", self._probe_inversion)
        recorder.add_probe("cache_hit_rate", self._probe_cache_hit_rate)
        recorder.add_probe("net_delivered", lambda now: float(self.channel.delivered) if self.channel else 0.0)
        recorder.add_probe("net_dropped", lambda now: float(self.channel.dropped) if self.channel else 0.0)
        if self.obs.metrics.enabled:
            # Per-run shadow accumulators, not the registry counters: in
            # the inline (jobs<=1) sweep path every task shares the parent
            # registry, so raw counter values would make each task's
            # series start at the previous tasks' totals, and subtracting
            # a float baseline is not bitwise equal to a worker's
            # fresh-registry accumulation.  The shadows repeat the same
            # from-zero add sequence a worker counter performs, so serial
            # and parallel series are byte-identical.
            self._ts_gossip = 0
            self._ts_bytes = 0.0
            recorder.add_probe(
                "gossip_exchanges", lambda now: float(self._ts_gossip)
            )
            recorder.add_probe("bt_bytes", lambda now: self._ts_bytes)
        collector.attach(recorder)
        self.timeseries = recorder
        if cfg.interval_s is None:
            # Ride the stats sampler: one row per figure sample.
            self.add_sampler(recorder.sample)
        else:
            self._timeseries_proc = PeriodicProcess(
                self.engine,
                cfg.interval_s,
                lambda: recorder.sample(self.engine.now),
                start_delay=cfg.interval_s,
                label="timeseries",
            )

    def _setup_dissemination(self, collector) -> None:
        """Create this run's dissemination recorder.

        The recorder is a pure event sink: the hooks in the message path
        append to its log and never consume an RNG stream, schedule an
        event, or mutate simulation state, so a recording run stays
        bit-identical to an unrecorded one (pinned by test).
        """
        from repro.obs.dissemination import DisseminationRecorder

        recorder = DisseminationRecorder(
            label=collector.next_label(), config=collector.config
        )
        recorder.set_population(sorted(self.trace.peers))
        collector.attach(recorder)
        self.dissemination = recorder

    def _ts_ground_truth(self, now: float) -> tuple:
        """Ground truth (edges, contribution) memoized per sample time —
        the coverage and inversion probes share one recomputation."""
        cached = self._ts_gt_cache
        if cached is not None and cached[0] == now:
            return cached[1]
        from repro.experiments.faults import _ground_truth

        gt = _ground_truth(self)
        self._ts_gt_cache = (now, gt)
        return gt

    def _probe_coverage(self, now: float) -> float:
        from repro.experiments.faults import _coverage

        gt_edges, _ = self._ts_ground_truth(now)
        return _coverage(self, gt_edges)

    def _probe_inversion(self, now: float) -> float:
        from repro.experiments.faults import DEFAULT_DELTA, _reputation_measures

        _, contribution = self._ts_ground_truth(now)
        _, inversion = _reputation_measures(self, contribution, DEFAULT_DELTA)
        return inversion

    def _probe_cache_hit_rate(self, now: float) -> float:
        nodes = self.nodes.values()
        hits = sum(n.rep_cache_hits for n in nodes)
        misses = sum(n.rep_cache_misses for n in nodes)
        total = hits + misses
        return hits / total if total else 0.0

    def system_reputation_snapshot(
        self, subjects: Optional[List[int]] = None
    ) -> Dict[int, float]:
        """Equation (2) for every subject: the mean reputation each peer has
        at all other subject peers."""
        if subjects is None:
            subjects = self.roles.subjects
        sums = {pid: 0.0 for pid in subjects}
        for evaluator in subjects:
            node = self.nodes[evaluator]
            for target in subjects:
                if target != evaluator:
                    sums[target] += node.reputation_of(target)
        n = len(subjects)
        if n <= 1:
            return {pid: 0.0 for pid in subjects}
        return {pid: s / (n - 1) for pid, s in sums.items()}

    # ------------------------------------------------------------------
    # The main round
    # ------------------------------------------------------------------
    def _round(self) -> None:
        prof = self._profiler
        if self._t_round is None and self._tr_round is None and prof is None:
            self._round_body()
            return
        t0 = _time.perf_counter()
        if prof is not None:
            with prof.phase("bt.round"):
                self._round_body()
        else:
            self._round_body()
        duration = _time.perf_counter() - t0
        if self._t_round is not None:
            self._m_rounds.inc()
            self._t_round.observe(duration)
        if self._tr_round is not None and self._tr_round.sample():
            self._tr_round.emit_sampled(
                "round",
                sim_time=self.engine.now,
                attrs={"idx": self.round_idx, "online": len(self.online)},
                duration_s=duration,
            )

    def _round_body(self) -> None:
        now = self.engine.now
        dt = self.config.round_interval
        self.round_idx += 1

        self._expire_seeders(now)
        prof = self._profiler
        if prof is not None:
            with prof.phase("choke"):
                links = self._collect_links_timed()
            with prof.phase("transfer"):
                transfers = self._allocate_bandwidth(links, dt)
                completed = self._execute_transfers(transfers, now)
        else:
            links = self._collect_links_timed()
            transfers = self._allocate_bandwidth(links, dt)
            completed = self._execute_transfers(transfers, now)
        self._update_rates(transfers)
        self._account_leech_time(now, dt)
        self._handle_completions(completed)

    def _expire_seeders(self, now: float) -> None:
        seed_time = self.config.seed_time
        for sid, swarm in self.swarms.items():
            expired = [
                m.peer_id
                for m in swarm.members.values()
                if m.is_seeder
                and self.roles.role_of(m.peer_id) == Role.SHARER
                and m.completed_at is not None
                and now >= m.completed_at + seed_time
            ]
            for pid in expired:
                self._leave(sid, pid)

    def _collect_links_timed(self) -> List[Tuple[int, int, SwarmState]]:
        if self._t_choke is not None:
            with self._t_choke:
                return self._collect_links()
        return self._collect_links()

    def _collect_links(self) -> List[Tuple[int, int, SwarmState]]:
        links: List[Tuple[int, int, SwarmState]] = []
        for swarm in self.swarms.values():
            if len(swarm.members) < 2:
                continue
            swarm.clear_in_flight()
            for member in swarm.members.values():
                pid = member.peer_id
                if not self.is_online(pid):
                    continue
                is_origin = self.roles.role_of(pid) == Role.ORIGIN
                unchoked = select_unchokes(
                    swarm,
                    member,
                    policy=self._origin_policy if is_origin else self.policy,
                    node=self.nodes[pid],
                    rng=self._choke_rng,
                    round_idx=self.round_idx,
                    config=self.config,
                    is_online=self.is_online,
                    can_connect=self.can_connect,
                    obs=self._choker_obs,
                )
                for target in unchoked:
                    links.append((pid, target, swarm))
        return links

    def _allocate_bandwidth(
        self, links: List[Tuple[int, int, SwarmState]], dt: float
    ) -> List[Tuple[int, int, SwarmState, float]]:
        """Split uplinks equally across links; cap by receiver downlinks."""
        if not links:
            return []
        n_links = Counter(up for up, _, _ in links)
        intended = [
            (up, down, swarm, self.trace.peers[up].uplink_bps * dt / n_links[up])
            for up, down, swarm in links
        ]
        incoming: Dict[int, float] = defaultdict(float)
        for up, down, _, b in intended:
            incoming[down] += b
        scale = {
            down: min(1.0, self.trace.peers[down].downlink_bps * dt / total)
            for down, total in incoming.items()
            if total > 0
        }
        return [
            (up, down, swarm, b * scale.get(down, 1.0)) for up, down, swarm, b in intended
        ]

    def _execute_transfers(
        self, transfers: List[Tuple[int, int, SwarmState, float]], now: float
    ) -> List[Tuple[SwarmState, int]]:
        completed: List[Tuple[SwarmState, int]] = []
        self._recv_acc: Dict[Tuple[int, int], Dict[int, float]] = defaultdict(dict)
        self._sent_acc: Dict[Tuple[int, int], Dict[int, float]] = defaultdict(dict)
        for up, down, swarm, budget in transfers:
            moved = self._transfer(swarm, up, down, budget, now)
            if moved > 0:
                sid = swarm.spec.swarm_id
                recv = self._recv_acc[(sid, down)]
                recv[up] = recv.get(up, 0.0) + moved
                sent = self._sent_acc[(sid, up)]
                sent[down] = sent.get(down, 0.0) + moved
                member = swarm.members.get(down)
                if member is not None and member.bitfield.is_complete:
                    completed.append((swarm, down))
        return completed

    def _transfer(
        self, swarm: SwarmState, up: int, down: int, budget: float, now: float
    ) -> float:
        if budget <= 0:
            return 0.0
        um = swarm.members.get(up)
        dm = swarm.members.get(down)
        if um is None or dm is None or dm.bitfield.is_complete:
            return 0.0
        piece_size = swarm.spec.piece_size
        uploader_have = None if um.bitfield.is_complete else um.bitfield.have
        candidates = ~(dm.bitfield.have | dm.in_flight)
        if uploader_have is not None:
            candidates &= uploader_have
        n_candidates = int(np.count_nonzero(candidates))
        if n_candidates == 0:
            return 0.0
        carry = dm.carry.get(up, 0.0)
        max_bytes = n_candidates * piece_size - carry
        actual = min(budget, max_bytes)
        if actual <= 0:
            return 0.0
        total = carry + actual
        n_complete = int(total // piece_size)
        dm.carry[up] = total - n_complete * piece_size
        if n_complete > 0:
            pieces = pick_rarest(
                swarm.availability, uploader_have, dm.bitfield.have, dm.in_flight, n_complete
            )
            swarm.grant_pieces(dm, pieces, now)
        # BarterCast + measurement accounting (both directions, real bytes).
        self.nodes[up].record_upload(down, actual, now)
        self.nodes[down].record_download(up, actual, now)
        self.stats.record_transfer(up, down, actual, now)
        if self._m_transfers is not None:
            self._m_transfers.inc()
            self._m_bytes.inc(actual)
        if self._ts_bytes is not None:
            self._ts_bytes += actual
        if self._tr_transfer is not None and self._tr_transfer.sample():
            self._tr_transfer.emit_sampled(
                "piece_transfer",
                sim_time=now,
                attrs={
                    "swarm": swarm.spec.swarm_id,
                    "up": up,
                    "down": down,
                    "bytes": actual,
                    "pieces": n_complete,
                },
            )
        return actual

    def _update_rates(self, transfers: List[Tuple[int, int, SwarmState, float]]) -> None:
        """Roll this round's per-link byte counts into the tit-for-tat state."""
        for swarm in self.swarms.values():
            sid = swarm.spec.swarm_id
            for member in swarm.members.values():
                member.received_last_round = self._recv_acc.get((sid, member.peer_id), {})
                member.sent_last_round = self._sent_acc.get((sid, member.peer_id), {})

    def _account_leech_time(self, now: float, dt: float) -> None:
        leeching: Set[int] = set()
        for swarm in self.swarms.values():
            for member in swarm.members.values():
                if member.is_leecher and self.is_online(member.peer_id):
                    leeching.add(member.peer_id)
        for pid in leeching:
            self.stats.record_leech_time(pid, dt, now)

    def _handle_completions(self, completed: List[Tuple[SwarmState, int]]) -> None:
        for swarm, pid in completed:
            if not swarm.is_member(pid):
                continue
            role = self.roles.role_of(pid)
            if role == Role.FREERIDER:
                # Lazy freerider: leave immediately after finishing.
                self._leave(swarm.spec.swarm_id, pid)
            # Sharers stay; the seed window is enforced in _expire_seeders.

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def _gossip_round(self) -> None:
        prof = self._profiler
        if prof is None:
            self._gossip_round_body()
        else:
            with prof.phase("gossip"):
                self._gossip_round_body()

    def _gossip_round_body(self) -> None:
        now = self.engine.now
        for pid in self._gossip_rng.shuffled(sorted(self.online)):
            if not self.is_online(pid):
                continue
            self.pss.tick(pid, now)
            partner = self.pss.sample(pid)
            if partner is None or not self.is_online(partner):
                continue
            self._exchange_messages(pid, partner, now)

    def _exchange_messages(self, a: int, b: int, now: float) -> None:
        na, nb = self.nodes[a], self.nodes[b]
        na.note_seen(b, now)
        nb.note_seen(a, now)
        loss = self.config.gossip_loss
        lost = 0
        rec = self.dissemination
        msg_a = na.create_message(now)
        if msg_a is not None:
            if self.channel is not None:
                if rec is not None:
                    rec.record_send(msg_a, b, now)
                lost += self._send_via_channel(msg_a, b, now)
            elif loss > 0 and self._gossip_rng.bernoulli(loss):
                lost += 1
                if rec is not None:
                    rec.record_send(msg_a, b, now)
                    rec.record_drop(msg_a, b, now, "loss")
            else:
                nb.receive_message(msg_a, now=now)
                if rec is not None:
                    rec.record_gossip(msg_a, b, now)
        msg_b = nb.create_message(now)
        if msg_b is not None:
            if self.channel is not None:
                if rec is not None:
                    rec.record_send(msg_b, a, now)
                lost += self._send_via_channel(msg_b, a, now)
            elif loss > 0 and self._gossip_rng.bernoulli(loss):
                lost += 1
                if rec is not None:
                    rec.record_send(msg_b, a, now)
                    rec.record_drop(msg_b, a, now, "loss")
            else:
                na.receive_message(msg_b, now=now)
                if rec is not None:
                    rec.record_gossip(msg_b, a, now)
        if self._m_gossip is not None:
            self._m_gossip.inc()
            if lost:
                self._m_gossip_lost.inc(lost)
        if self._ts_gossip is not None:
            self._ts_gossip += 1
        if self._tr_gossip is not None and self._tr_gossip.sample():
            self._tr_gossip.emit_sampled(
                "exchange", sim_time=now, attrs={"a": a, "b": b, "lost": lost}
            )

    def _send_via_channel(self, message, receiver: int, now: float) -> int:
        """Route one message through the unreliable channel.

        Immediate copies are ingested inline (preserving the reliable
        path's ordering when delay is off); delayed copies are scheduled
        as engine events, where they interleave — and reorder — with
        every later gossip exchange.  Returns 1 if no copy was admitted
        (the exchange-level "lost" accounting), 0 otherwise.
        """
        times = self.channel.plan_delivery(message.sender, receiver, now)
        rec = self.dissemination
        if not times:
            if rec is not None:
                verdict = self.channel.last_verdict
                rec.record_drop(
                    message,
                    receiver,
                    now,
                    "loss" if verdict == "dropped" else (verdict or "loss"),
                )
            return 1
        if rec is not None:
            rec.record_plan(message, receiver, now, times)
        for copy, t in enumerate(times):
            if t <= now:
                self._deliver_message(receiver, message, copy=copy, sent_at=now)
            else:
                self.engine.schedule_at(
                    t,
                    lambda m=message, r=receiver, c=copy, s=now: self._deliver_message(
                        r, m, copy=c, sent_at=s
                    ),
                    label="net-deliver",
                )
        return 0

    def _deliver_message(
        self,
        receiver: int,
        message,
        copy: int = 0,
        sent_at: Optional[float] = None,
    ) -> None:
        """Terminal delivery seam: copy ``copy`` of ``message`` arrives now.

        A delayed copy can surface while the receiver is offline (trace
        session ended, or a churn outage) — then it is dropped, exactly
        like a datagram hitting a dead host.  Churn-down receivers are
        distinguished from session-offline ones so the drop is attributed
        to the right fault (``net.dropped_by_churn``).
        """
        now = self.engine.now
        if not self.is_online(receiver):
            by_churn = self.churn is not None and receiver in self.churn.down
            delay = 0.0 if sent_at is None else now - sent_at
            self.channel.note_undeliverable(
                message.sender, receiver, now, copy=copy, delay=delay, by_churn=by_churn
            )
            if self.dissemination is not None:
                self.dissemination.record_drop(
                    message,
                    receiver,
                    now,
                    "churn-offline" if by_churn else "offline",
                    copy=copy,
                    delay=delay,
                )
            return
        self.nodes[receiver].receive_message(message, now=now)
        if self.dissemination is not None:
            self.dissemination.record_deliver(message, receiver, now, copy=copy)

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> StatsCollector:
        """Run the simulation to ``until`` (default: the trace horizon) and
        return the statistics collector."""
        horizon = self.trace.duration if until is None else min(until, self.trace.duration)
        self.engine.run_until(horizon)
        # Close the convergence series at the horizon so its final row
        # equals the end-of-run aggregates (skipped when a periodic
        # sample already landed exactly there).
        if self.timeseries is not None and self.timeseries.last_time != horizon:
            self.timeseries.sample(horizon)
        nodes = self.nodes.values()
        self.stats.record_cache_telemetry(
            sum(n.rep_cache_hits for n in nodes),
            sum(n.rep_cache_misses for n in nodes),
            sum(n.rep_cache_invalidations for n in nodes),
        )
        metrics = self.obs.metrics
        if metrics.enabled:
            # Publish this run's share of the module-level kernel counters
            # (delta against the counts at construction time).  Gauges
            # accumulate across runs sharing one registry so that a serial
            # sweep and a merged multi-process sweep report the same totals.
            for kernel, delta in kernel_invocations_delta(self._kernel_baseline).items():
                metrics.gauge(f"rep.kernel.{kernel}").inc(delta)
        return self.stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CommunitySimulator t={self.engine.now:.0f}s policy={self.policy.name} "
            f"online={len(self.online)}>"
        )
