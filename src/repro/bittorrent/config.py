"""Simulator configuration."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BitTorrentConfig"]

HOUR = 3600.0


@dataclass
class BitTorrentConfig:
    """Protocol and engine parameters of the BitTorrent simulator.

    Attributes
    ----------
    round_interval:
        Seconds per simulation round; also the rechoke interval (standard
        BitTorrent rechokes every 10 s).
    regular_slots:
        Tit-for-tat upload slots per peer per swarm (paper: 4–7 total
        slots depending on implementation; we default to 3 regular + 1
        optimistic = 4).
    optimistic_interval:
        Seconds between optimistic-unchoke rotations (standard: 30 s).
    gossip_interval:
        Seconds between a peer's BarterCast exchanges (Tribler's BuddyCast
        connects to a new peer roughly every 15 s; 60 s keeps simulation
        cost down and is ablated).
    seed_time:
        How long a *sharer* seeds a completed file (paper: 10 hours).
    pss_view_size:
        Partial-view bound of the BuddyCast peer sampler.
    sample_interval:
        Seconds between statistics samples (reputation snapshots, speed
        buckets).
    gossip_loss:
        Probability that a BarterCast message is lost in transit
        (failure injection: UDP loss, churn mid-exchange).  The protocol
        must degrade gracefully — records are totals, so later messages
        resynchronize the view.
    """

    round_interval: float = 10.0
    regular_slots: int = 3
    optimistic_interval: float = 30.0
    gossip_interval: float = 60.0
    seed_time: float = 10 * HOUR
    pss_view_size: int = 30
    sample_interval: float = 6 * HOUR
    gossip_loss: float = 0.0

    def validate(self) -> None:
        """Check parameter sanity; raises ``ValueError``."""
        if self.round_interval <= 0:
            raise ValueError("round_interval must be positive")
        if self.regular_slots < 0:
            raise ValueError("regular_slots must be non-negative")
        if self.optimistic_interval < self.round_interval:
            raise ValueError("optimistic_interval must be >= round_interval")
        if self.gossip_interval <= 0:
            raise ValueError("gossip_interval must be positive")
        if self.seed_time < 0:
            raise ValueError("seed_time must be non-negative")
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if not 0.0 <= self.gossip_loss < 1.0:
            raise ValueError("gossip_loss must be in [0, 1)")

    @property
    def optimistic_every_rounds(self) -> int:
        """Optimistic rotation period in rounds (>= 1)."""
        return max(1, int(round(self.optimistic_interval / self.round_interval)))
