"""Piece-level BitTorrent simulator.

Follows the protocol at the level the paper's simulator does: leecher and
seeder unchoking, the 30-second round-robin optimistic unchoke, rarest-
first piece picking, and per-peer uplink/downlink capacity shared across
swarms.  Time advances in fixed *rounds* (default 10 s, the choke
interval); within a round each unchoked connection receives an equal share
of the uploader's uplink, receiver downlinks cap the total, and the
transferred bytes complete whole pieces chosen rarest-first.

The simulator plugs into BarterCast at three seams:

* every transferred byte is accounted in both endpoints' private
  histories;
* a gossip process lets online peers exchange BarterCast messages through
  the peer-sampling service;
* the choker consults a :class:`~repro.core.policies.ReputationPolicy`
  for slot eligibility (ban) and optimistic ordering (rank).
"""

from repro.bittorrent.config import BitTorrentConfig
from repro.bittorrent.piece import Bitfield, pick_rarest
from repro.bittorrent.roles import Role, RoleAssignment
from repro.bittorrent.swarm import MemberState, SwarmState
from repro.bittorrent.stats import StatsCollector
from repro.bittorrent.simulator import CommunitySimulator

__all__ = [
    "BitTorrentConfig",
    "Bitfield",
    "pick_rarest",
    "Role",
    "RoleAssignment",
    "MemberState",
    "SwarmState",
    "StatsCollector",
    "CommunitySimulator",
]
