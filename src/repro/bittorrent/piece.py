"""Bitfields and rarest-first piece selection.

Bitfields are NumPy boolean arrays — piece membership tests, candidate
masks (``uploader.have & ~receiver.have``), and availability updates are
all vectorized, which keeps the per-round cost of the simulator linear in
the number of *active connections*, not in peers × pieces.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = ["Bitfield", "pick_rarest"]


class Bitfield:
    """Piece possession of one peer in one swarm.

    Parameters
    ----------
    num_pieces:
        Swarm piece count.
    complete:
        Start with all pieces (seeders).
    """

    __slots__ = ("have", "_num_have")

    def __init__(self, num_pieces: int, complete: bool = False) -> None:
        if num_pieces < 1:
            raise ValueError("num_pieces must be >= 1")
        self.have = np.full(num_pieces, complete, dtype=bool)
        self._num_have = num_pieces if complete else 0

    @property
    def num_pieces(self) -> int:
        """Total pieces in the swarm."""
        return int(self.have.shape[0])

    @property
    def num_have(self) -> int:
        """Pieces currently held."""
        return self._num_have

    @property
    def is_complete(self) -> bool:
        """Whether every piece is held."""
        return self._num_have == self.have.shape[0]

    @property
    def fraction(self) -> float:
        """Completed fraction in [0, 1]."""
        return self._num_have / self.have.shape[0]

    def add(self, piece: int) -> bool:
        """Mark ``piece`` as held; returns True if it was new."""
        if self.have[piece]:
            return False
        self.have[piece] = True
        self._num_have += 1
        return True

    def add_many(self, pieces: np.ndarray) -> int:
        """Mark several pieces; returns how many were new."""
        if len(pieces) == 0:
            return 0
        new = ~self.have[pieces]
        count = int(new.sum())
        if count:
            self.have[pieces[new]] = True
            self._num_have += count
        return count

    def missing_mask(self) -> np.ndarray:
        """Boolean mask of pieces not yet held (a fresh array)."""
        return ~self.have

    def wants_from(self, other: "Bitfield") -> bool:
        """Whether ``other`` holds at least one piece this bitfield lacks."""
        if self.is_complete:
            return False
        if other._num_have == 0:
            return False
        if other.is_complete:
            return True
        return bool(np.any(other.have & ~self.have))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Bitfield {self._num_have}/{self.have.shape[0]}>"


def pick_rarest(
    availability: np.ndarray,
    uploader_have: Optional[np.ndarray],
    receiver_have: np.ndarray,
    in_flight: np.ndarray,
    k: int,
) -> np.ndarray:
    """Select up to ``k`` rarest pieces the receiver can get from the uploader.

    Parameters
    ----------
    availability:
        Integer per-piece copy counts in the swarm (the rarest-first key).
    uploader_have:
        The uploader's possession mask, or ``None`` for a seeder (has all).
    receiver_have:
        The receiver's possession mask.
    in_flight:
        Mask of pieces the receiver is already fetching this round from
        another connection (avoids duplicate downloads).
    k:
        Maximum number of pieces to select.

    Returns
    -------
    numpy.ndarray
        Indices of the selected pieces, rarest first; may be shorter than
        ``k`` if fewer candidates exist.
    """
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    candidates = ~(receiver_have | in_flight)
    if uploader_have is not None:
        candidates &= uploader_have
    idx = np.flatnonzero(candidates)
    if idx.size == 0:
        return idx
    if idx.size <= k:
        order = np.argsort(availability[idx], kind="stable")
        return idx[order]
    counts = availability[idx]
    part = np.argpartition(counts, k - 1)[:k]
    chosen = idx[part]
    order = np.argsort(availability[chosen], kind="stable")
    return chosen[order]
