"""The BarterCast node: one peer's complete reputation state.

A :class:`BarterCastNode` ties together the private history, the subjective
shared history, the subjective local transfer graph, the message behaviour
(honest / ignorer / liar), and a reputation cache.  The BitTorrent
simulator calls into it on three paths:

* transfer accounting (``record_upload`` / ``record_download``),
* gossip (``create_message`` / ``receive_message``),
* policy decisions (``reputation_of`` / ``reputations_of``), which are
  cache-hot because the choker re-evaluates candidates every round.

Cache discipline (see DESIGN.md for the exactness argument): the node
subscribes to the graph's edge-change events and invalidates *dirty sets*
instead of the whole cache.  For the default ``two_hop`` kernel,
``R_i(j)`` depends only on edges incident to ``i`` or ``j``, so an edge
``(x, y)`` change invalidates exactly the cached entries for ``x`` and
``y`` — unless the edge touches the owner ``i`` itself, in which case
every cached value depends on it and the cache is cleared.  Non-default
kernels (which route flow through longer paths) conservatively clear on
every change.  ``cache_mode`` selects ``"dirty"`` (default),
``"wholesale"`` (the historical behaviour: clear whenever
``graph.version`` moved — kept for baseline benchmarking), or ``"off"``
(no memoization; the oracle the staleness tests compare against).

Batch path: :meth:`reputations_of` (and through it
:meth:`rank_by_reputation` and the policy ``prewarm`` hook) evaluates all
cache-missing targets with one :func:`~repro.graph.batch
.maxflow_two_hop_batch` pass, which hoists the owner's neighbourhood
lookups out of the per-target loop.  Telemetry counters
(``rep_cache_hits`` / ``rep_cache_misses`` / ``rep_cache_invalidations``)
instrument every lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.adversary import HonestBehavior, MessageBehavior
from repro.core.engines import make_engine
from repro.core.history import PrivateHistory
from repro.core.messages import BarterCastMessage
from repro.core.reputation import ReputationMetric
from repro.core.sharedhistory import SubjectiveSharedHistory
from repro.graph.columnar import ColumnarTransferGraph
from repro.graph.transfer_graph import TransferGraph
from repro.obs import NULL_OBS, Observability
from repro.obs.provenance import ProvenanceRecorder

__all__ = [
    "BarterCastConfig",
    "BarterCastNode",
    "CACHE_MODES",
    "GRAPH_BACKENDS",
]

PeerId = Hashable

#: Valid values of ``BarterCastNode(cache_mode=...)``.
CACHE_MODES = ("dirty", "wholesale", "off")

#: Valid values of ``BarterCastNode(graph_backend=...)``.
GRAPH_BACKENDS = ("dict", "columnar")


@dataclass
class BarterCastConfig:
    """Protocol parameters of a BarterCast node.

    Attributes
    ----------
    n_highest:
        ``Nh``: number of top-uploader records per message (paper: 10).
    n_recent:
        ``Nr``: number of most-recently-seen records per message (paper: 10).
    metric:
        The reputation metric (kernel, unit, scaling).
    """

    n_highest: int = 10
    n_recent: int = 10
    metric: ReputationMetric = field(default_factory=ReputationMetric)


class BarterCastNode:
    """One peer's BarterCast agent.

    Parameters
    ----------
    peer_id:
        This peer's identifier (the paper assumes machine-dependent
        permanent identifiers; any hashable works here).
    config:
        Protocol parameters; a default-constructed config matches the paper.
    behavior:
        Message behaviour; defaults to :class:`HonestBehavior`.
    cache_mode:
        Reputation-cache discipline: ``"dirty"`` (event-driven dirty-set
        invalidation, default), ``"wholesale"`` (version-keyed full
        clears), or ``"off"`` (no memoization).
    graph_backend:
        Subjective-graph storage: ``"dict"`` (the reference
        :class:`~repro.graph.transfer_graph.TransferGraph`, default) or
        ``"columnar"`` (the flat :class:`~repro.graph.columnar
        .ColumnarTransferGraph`, built for large populations).  Reputations
        are bit-identical between backends.  With ``"columnar"`` and the
        default two-hop metric, dirty-mode caching switches from the
        edge-listener dict cache to a vectorized *stamp cache*: cached
        values and their graph-version stamps live in flat arrays indexed
        by interned peer id, and freshness is checked lazily against the
        graph's per-node last-touch versions — same exactness argument,
        no per-edge python callback on the ingest path.
    obs:
        Observability bundle.  When enabled the node counts message
        traffic (``bc.messages_*``), times kernel evaluations
        (``rep.kernel_s``), and emits sampled trace events for message
        send/receive (``bc.message``) and kernel invocations
        (``rep.kernel``).  The disabled default adds one attribute check
        per instrumented block.
    engine:
        Reputation mechanism (DESIGN.md §15): ``"bartercast"`` (default —
        the paper's maxflow metric on the native, byte-identical path),
        ``"gossip"`` (differential-gossip aggregation), or ``"ratio"``
        (upload/download ratio credit).  Rival engines take over
        ``reputation_of`` / ``reputations_of`` / ``rank_by_reputation``;
        transfer accounting and the gossip layer are engine-independent.
    provenance:
        Optional :class:`~repro.obs.provenance.ProvenanceRecorder` shared
        across the simulation.  When enabled, outgoing messages are
        stamped with a ``(peer_id, sequence)`` msg id and the shared
        history attaches lineage to every live claim.  Off by default;
        the flag-off node is byte-identical to the seed behaviour.
    """

    def __init__(
        self,
        peer_id: PeerId,
        config: Optional[BarterCastConfig] = None,
        behavior: Optional[MessageBehavior] = None,
        cache_mode: str = "dirty",
        obs: Optional[Observability] = None,
        provenance: Optional[ProvenanceRecorder] = None,
        graph_backend: str = "dict",
        engine: str = "bartercast",
    ) -> None:
        if cache_mode not in CACHE_MODES:
            raise ValueError(
                f"cache_mode must be one of {CACHE_MODES}, got {cache_mode!r}"
            )
        if graph_backend not in GRAPH_BACKENDS:
            raise ValueError(
                f"graph_backend must be one of {GRAPH_BACKENDS}, got {graph_backend!r}"
            )
        self.peer_id = peer_id
        self.engine_name = engine
        # Engine dispatch (DESIGN.md §15).  None for the default
        # "bartercast" engine: the public reputation methods then fall
        # straight through to the native maxflow bodies, keeping the
        # default path byte-identical to a build without the engines
        # package.  Rival engines are constructed by name (sweeps pickle
        # the name, not the instance) and attached after state init below.
        self._engine_dispatch = None if engine == "bartercast" else make_engine(engine)
        self.config = config if config is not None else BarterCastConfig()
        self.behavior: MessageBehavior = behavior if behavior is not None else HonestBehavior()
        self.cache_mode = cache_mode
        self.graph_backend = graph_backend
        self.obs = obs if obs is not None else NULL_OBS
        self.provenance = provenance
        self._prov_on = provenance is not None and provenance.enabled
        self.history = PrivateHistory(peer_id)
        self.graph = (
            ColumnarTransferGraph() if graph_backend == "columnar" else TransferGraph()
        )
        self.graph.add_node(peer_id)
        self.shared = SubjectiveSharedHistory(
            peer_id, self.graph, obs=self.obs, provenance=provenance
        )
        metrics = self.obs.metrics
        if metrics.enabled:
            self._m_sent = metrics.counter("bc.messages_sent")
            self._m_recv = metrics.counter("bc.messages_received")
            self._m_kernel_calls = metrics.counter("rep.kernel.calls")
            self._m_kernel_targets = metrics.counter("rep.kernel.targets")
            self._t_kernel = metrics.timer("rep.kernel_s")
        else:
            self._m_sent = None
            self._m_recv = None
            self._m_kernel_calls = None
            self._m_kernel_targets = None
            self._t_kernel = None
        tracer = self.obs.tracer
        self._tr_msg = tracer.category("bc.message") if tracer.enabled else None
        self._tr_kernel = tracer.category("rep.kernel") if tracer.enabled else None
        self._rep_cache: Dict[PeerId, float] = {}
        self._rep_cache_version = -1
        #: Telemetry: cache lookups answered from the cache.
        self.rep_cache_hits = 0
        #: Telemetry: cache lookups that required a kernel evaluation.
        self.rep_cache_misses = 0
        #: Telemetry: cached entries dropped by invalidation.
        self.rep_cache_invalidations = 0
        self.messages_sent = 0
        self.messages_received = 0
        # Causal envelope state: the msg_id of this node's previous
        # outgoing message, chained into parent_id (DESIGN.md §16).
        self._last_msg_id: Optional[Hashable] = None
        # Hoisted out of the edge listener, which runs on every effective
        # graph write: whether the configured kernel admits exact dirty-set
        # invalidation.  The kernel is fixed at construction time.
        self._dirty_exact = bool(self.config.metric.supports_dirty_invalidation)
        # Columnar + dirty + two-hop metric: lazy stamp cache instead of an
        # eager edge listener (class docstring).  Everything else keeps the
        # listener/dict cache, which works on either backend.
        self._columnar_stamps = (
            graph_backend == "columnar" and cache_mode == "dirty" and self._dirty_exact
        )
        if self._columnar_stamps:
            # The owner is usually not interned yet at construction (the
            # graph starts empty); _owner_touch() re-resolves lazily.
            self._owner_idx = self.graph.peer_index(peer_id)
            self._c_val = np.zeros(16)
            self._c_stamp = np.full(16, -1, dtype=np.int64)
            # Never-interned peers have no stamp slot; their (zero)
            # reputations live in a side dict whose entries go stale only
            # when an owner-incident edge changes — exactly when the dict
            # backend's listener would have full-cleared them away.
            self._c_unknown: Dict[PeerId, Tuple[float, int]] = {}
            self._stamp_idx_key: Optional[List[PeerId]] = None
            self._stamp_idx: Optional[np.ndarray] = None
            self._uniq_key: Optional[List[PeerId]] = None
            self._uniq_val: Optional[List[PeerId]] = None
        elif cache_mode == "dirty":
            self.graph.subscribe(self._on_edge_change)
        if self._engine_dispatch is not None:
            self._engine_dispatch.attach(self)
        self._bartercast_facade = None

    # ------------------------------------------------------------------
    # Transfer accounting (private history is authoritative for own edges)
    # ------------------------------------------------------------------
    def record_upload(self, peer: PeerId, nbytes: float, now: float) -> None:
        """Account ``nbytes`` uploaded to ``peer`` at time ``now``."""
        self.history.record_upload(peer, nbytes, now)
        self.graph.set_transfer(self.peer_id, peer, self.history.get(peer).uploaded)

    def record_download(self, peer: PeerId, nbytes: float, now: float) -> None:
        """Account ``nbytes`` downloaded from ``peer`` at time ``now``."""
        self.history.record_download(peer, nbytes, now)
        self.graph.set_transfer(peer, self.peer_id, self.history.get(peer).downloaded)

    def note_seen(self, peer: PeerId, now: float) -> None:
        """Mark ``peer`` as seen now (affects the ``Nr`` selection)."""
        if peer != self.peer_id:
            self.history.touch(peer, now)

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def create_message(self, now: float) -> Optional[BarterCastMessage]:
        """The message this node sends at ``now`` (None for ignorers)."""
        msg = self.behavior.make_message(self, now)
        if msg is not None:
            self.messages_sent += 1
            if msg.msg_id is None:
                # Stamp the causal envelope: a per-sender sequence id plus
                # the previous message's id as parent.  Deterministic, no
                # RNG, and receivers never consult either field for
                # supersede decisions, so stamping cannot change
                # simulation behaviour.  Provenance lineage and
                # dissemination DAGs share this one identity scheme.
                # In-place write on the frozen dataclass: the behavior
                # built this instance one call up and nothing else holds
                # a reference yet, and ``replace()`` would re-tuple the
                # records — a measurable per-message cost on a field
                # stamped for every message of every run.
                object.__setattr__(
                    msg, "msg_id", (self.peer_id, self.messages_sent)
                )
                object.__setattr__(msg, "parent_id", self._last_msg_id)
            self._last_msg_id = msg.msg_id
            if self._m_sent is not None:
                self._m_sent.inc()
            if self._tr_msg is not None and self._tr_msg.sample():
                self._tr_msg.emit_sampled(
                    "send",
                    sim_time=now,
                    attrs={
                        "sender": self.peer_id,
                        "records": msg.num_records,
                        "msg_id": msg.msg_id,
                    },
                )
        return msg

    def receive_message(
        self, message: BarterCastMessage, now: Optional[float] = None
    ) -> int:
        """Ingest a received message into the subjective shared history.

        Messages from self are rejected; records about the receiver are
        dropped inside the store (private history is authoritative there).
        ``now`` is the simulated receipt time for lineage records (falls
        back to the message creation time).  Returns the number of
        records applied.
        """
        if message.sender == self.peer_id:
            raise ValueError("node received its own message")
        self.messages_received += 1
        applied = self.shared.ingest(message, now=now)
        if self._m_recv is not None:
            self._m_recv.inc()
        if self._tr_msg is not None and self._tr_msg.sample():
            self._tr_msg.emit_sampled(
                "receive",
                sim_time=message.created_at,
                attrs={
                    "receiver": self.peer_id,
                    "sender": message.sender,
                    "records": message.num_records,
                    "applied": applied,
                    "msg_id": message.msg_id,
                },
            )
        return applied

    def wipe_shared_history(self) -> int:
        """Drop every gossip-learned claim (hard-restart churn path).

        Models a peer whose process died without persisting its gossip
        state: the private history (on-disk in Tribler) survives, the
        subjective shared history does not.  Returns the number of edges
        whose materialized value changed.  Reporters are forgotten in a
        deterministic order so fault schedules replay identically.
        """
        changed = 0
        for reporter in sorted(self.shared.reporters(), key=repr):
            changed += self.shared.forget_reporter(reporter)
        return changed

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------
    def _on_edge_change(self, src: PeerId, dst: PeerId) -> None:
        """Graph edge listener: invalidate the dirty set for ``(src, dst)``.

        Exact for the ``two_hop`` kernel (module docstring); conservative
        full clear for the iterative kernels and for edges incident to the
        owner (every ``R_i(j)`` depends on edges touching ``i``).
        """
        cache = self._rep_cache
        if not cache:
            return
        me = self.peer_id
        if self._dirty_exact and src != me and dst != me:
            before = len(cache)
            cache.pop(src, None)
            cache.pop(dst, None)
            self.rep_cache_invalidations += before - len(cache)
            return
        self.rep_cache_invalidations += len(cache)
        cache.clear()

    def _sync_cache_epoch(self) -> None:
        """Wholesale mode: clear the cache if the graph version moved."""
        if self.cache_mode != "wholesale":
            return
        if self._rep_cache_version != self.graph.version:
            self.rep_cache_invalidations += len(self._rep_cache)
            self._rep_cache.clear()
            self._rep_cache_version = self.graph.version

    def invalidate_cache(self) -> None:
        """Drop every cached reputation (forces cold re-evaluation).

        Used by benchmarks and the scalability experiment to measure
        cold-cache query cost; normal operation never needs it.  With a
        rival engine attached its memo is dropped too.
        """
        if self._engine_dispatch is not None:
            self._engine_dispatch.invalidate_cache()
        self._native_invalidate_cache()

    def _native_invalidate_cache(self) -> None:
        if self._columnar_stamps:
            self.rep_cache_invalidations += int((self._c_stamp >= 0).sum())
            self._c_stamp.fill(-1)
            self.rep_cache_invalidations += len(self._c_unknown)
            self._c_unknown.clear()
        self.rep_cache_invalidations += len(self._rep_cache)
        self._rep_cache.clear()
        self._rep_cache_version = -1

    @property
    def rep_cache_size(self) -> int:
        """Number of currently memoized reputations.

        For the columnar stamp cache this counts *stored* entries; some may
        be stale (they are re-checked lazily at lookup, not evicted
        eagerly).  With a rival engine attached this is its memo size (the
        native cache sees no traffic then).
        """
        eng = self._engine_dispatch
        if eng is not None:
            return getattr(eng, "cache_size", 0)
        if self._columnar_stamps:
            return int((self._c_stamp >= 0).sum()) + len(self._c_unknown)
        return len(self._rep_cache)

    def _owner_touch(self) -> int:
        """Last-touch version of the owner's graph node, or -1 if the owner
        has no edges yet.

        The owner index is resolved lazily: the graph is empty at node
        construction, so the interned index only exists after the first
        own-history edge is written.  Interned indices are permanent, so
        once resolved the lookup never repeats.
        """
        oi = self._owner_idx
        if oi < 0:
            oi = self._owner_idx = self.graph.peer_index(self.peer_id)
            if oi < 0:
                return -1
        return self.graph.node_touch(oi)

    def _grow_stamps(self) -> None:
        """Size the stamp arrays to the graph interner (capacity-doubled)."""
        n = len(self.graph.interner)
        if self._c_stamp.shape[0] >= n:
            return
        cap = max(2 * self._c_stamp.shape[0], n)
        val = np.zeros(cap)
        val[: self._c_val.shape[0]] = self._c_val
        stamp = np.full(cap, -1, dtype=np.int64)
        stamp[: self._c_stamp.shape[0]] = self._c_stamp
        self._c_val = val
        self._c_stamp = stamp

    # ------------------------------------------------------------------
    # Reputation
    # ------------------------------------------------------------------
    def reputation_of(self, peer: PeerId) -> float:
        """The subjective reputation ``R_self(peer)``.

        With the default engine this is Equation 1 served through the
        maxflow caches; a rival engine takes over the whole surface
        (same contract: never rates self, never NaN).
        """
        if self._engine_dispatch is not None:
            return self._engine_dispatch.reputation_of(peer)
        return self._native_reputation_of(peer)

    def _native_reputation_of(self, peer: PeerId) -> float:
        """The maxflow path: cache-served when provably fresh."""
        if peer == self.peer_id:
            raise ValueError("a node does not rate itself")
        if self._columnar_stamps:
            return self._reputation_stamped(peer)
        if self.cache_mode == "off":
            self.rep_cache_misses += 1
            return self._evaluate_scalar(peer)
        if self.cache_mode == "wholesale":
            self._sync_cache_epoch()
        cached = self._rep_cache.get(peer)
        if cached is not None:
            self.rep_cache_hits += 1
            return cached
        self.rep_cache_misses += 1
        value = self._evaluate_scalar(peer)
        self._rep_cache[peer] = value
        return value

    def _reputation_stamped(self, peer: PeerId) -> float:
        """Scalar lookup through the columnar stamp cache.

        A stored value is fresh iff its stamp is at least the last-touch
        version of both the owner and the target — the same dirty-set
        condition the listener enforces eagerly on the dict backend.
        """
        graph = self.graph
        ji = graph.peer_index(peer)
        if 0 <= ji < self._c_stamp.shape[0]:
            st = self._c_stamp[ji]
            if (
                st >= 0
                and st >= self._owner_touch()
                and st >= graph.node_touch(ji)
            ):
                self.rep_cache_hits += 1
                return float(self._c_val[ji])
        elif ji < 0:
            entry = self._c_unknown.get(peer)
            if entry is not None and entry[1] >= self._owner_touch():
                self.rep_cache_hits += 1
                return entry[0]
        self.rep_cache_misses += 1
        value = self._evaluate_scalar(peer)
        if ji >= 0:
            self._grow_stamps()
            self._c_val[ji] = value
            self._c_stamp[ji] = graph.version
        else:
            # Never-interned peers cannot be stamp-indexed; the side dict
            # mirrors the dict backend's cache for them (a non-owner edge
            # change can never evict them — neither endpoint is this peer —
            # so freshness only depends on the owner's last touch).
            self._c_unknown[peer] = (value, graph.version)
        return value

    def _evaluate_scalar(self, peer: PeerId) -> float:
        """One scalar kernel evaluation, instrumented when obs is live."""
        if self._t_kernel is not None:
            with self._t_kernel:
                value = self.config.metric.reputation(self.graph, self.peer_id, peer)
            self._m_kernel_calls.inc()
            self._m_kernel_targets.inc()
        else:
            value = self.config.metric.reputation(self.graph, self.peer_id, peer)
        if self._tr_kernel is not None and self._tr_kernel.sample():
            self._tr_kernel.emit_sampled(
                "scalar", attrs={"owner": self.peer_id, "targets": 1}
            )
        return value

    def reputations_of(self, peers: Iterable[PeerId]) -> Dict[PeerId, float]:
        """Batch evaluation of several peers (``self``/duplicates skipped).

        Dispatches to the attached rival engine when one is configured;
        the native path serves cached entries directly and evaluates all
        misses in a single batched kernel pass (bit-identical to scalar
        evaluation).
        """
        if self._engine_dispatch is not None:
            return self._engine_dispatch.reputations_of(peers)
        return self._native_reputations_of(peers)

    def _native_reputations_of(self, peers: Iterable[PeerId]) -> Dict[PeerId, float]:
        if self._columnar_stamps and isinstance(peers, list):
            # A choke round ranks the same candidate list every time; the
            # dedupe result is memoised against a defensive copy, so an
            # in-place mutation of the caller's list misses the memo.
            if self._uniq_key is not None and peers == self._uniq_key:
                unique = self._uniq_val
            else:
                unique = list(
                    dict.fromkeys(p for p in peers if p != self.peer_id)
                )
                self._uniq_key = list(peers)
                self._uniq_val = unique
            if not unique:
                return {}
            return self._reputations_stamped(unique)
        unique: List[PeerId] = []
        seen = set()
        for p in peers:
            if p != self.peer_id and p not in seen:
                seen.add(p)
                unique.append(p)
        if not unique:
            return {}
        if self._columnar_stamps:
            return self._reputations_stamped(unique)
        values: Dict[PeerId, float] = {}
        if self.cache_mode == "off":
            missing = unique
        else:
            if self.cache_mode == "wholesale":
                self._sync_cache_epoch()
            cache_get = self._rep_cache.get
            missing = []
            for p in unique:
                v = cache_get(p)
                if v is None:
                    missing.append(p)
                else:
                    self.rep_cache_hits += 1
                    values[p] = v
        if missing:
            self.rep_cache_misses += len(missing)
            if self._t_kernel is not None:
                with self._t_kernel:
                    fresh = self.config.metric.reputation_batch(
                        self.graph, self.peer_id, missing
                    )
                self._m_kernel_calls.inc()
                self._m_kernel_targets.inc(len(missing))
            else:
                fresh = self.config.metric.reputation_batch(
                    self.graph, self.peer_id, missing
                )
            if self._tr_kernel is not None and self._tr_kernel.sample():
                self._tr_kernel.emit_sampled(
                    "batch", attrs={"owner": self.peer_id, "targets": len(missing)}
                )
            if self.cache_mode != "off":
                self._rep_cache.update(fresh)
            values.update(fresh)
        return {p: values[p] for p in unique}

    def _reputations_stamped(self, unique: List[PeerId]) -> Dict[PeerId, float]:
        """Batch lookup through the columnar stamp cache.

        Freshness of all targets is checked with a handful of array ops
        (gather stamps, gather last-touch versions, compare); misses go
        through one batched kernel pass and are scattered back with the
        current graph version as their stamp.
        """
        graph = self.graph
        m = len(unique)
        if self._stamp_idx_key is unique or (
            self._stamp_idx_key is not None and self._stamp_idx_key == unique
        ):
            # Interned indices are stable for the lifetime of the graph
            # (interner contract: never reused, never remapped, survive
            # churn wipes), so a repeated candidate list — the choke-round
            # steady state — can reuse the previous gather.
            idx = self._stamp_idx
        else:
            pi = graph.peer_index
            idx = np.fromiter((pi(p) for p in unique), dtype=np.int64, count=m)
            if m and int(idx.min()) >= 0:
                # Only all-known lists are memoised: a -1 (unknown peer)
                # could become a real index after later gossip.  The list
                # itself is the key — callers never mutate it (it is either
                # the dedupe memo's value or a fresh local), so the cheap
                # identity check above hits on repeated candidate lists.
                self._stamp_idx_key = unique
                self._stamp_idx = idx
        self._grow_stamps()
        owner_touch = self._owner_touch()
        known = idx >= 0
        safe = np.where(known, idx, 0)
        stamps = self._c_stamp[safe]
        valid = (
            known
            & (stamps >= 0)
            & (stamps >= owner_touch)
            & (stamps >= graph.touch_array(safe))
        )
        out = self._c_val[safe]
        if not known.all():
            # Side-dict lookups for never-interned targets (scalar path
            # comment): fresh iff stored at or after the owner's last touch.
            cu_get = self._c_unknown.get
            for k in np.flatnonzero(~known).tolist():
                entry = cu_get(unique[k])
                if entry is not None and entry[1] >= owner_touch:
                    valid[k] = True
                    out[k] = entry[0]
        n_valid = int(valid.sum())
        if n_valid == m:
            self.rep_cache_hits += m
            return dict(zip(unique, out.tolist()))
        self.rep_cache_hits += n_valid
        miss_pos = np.flatnonzero(~valid)
        missing = [unique[k] for k in miss_pos.tolist()]
        self.rep_cache_misses += len(missing)
        if self._t_kernel is not None:
            with self._t_kernel:
                fresh = self.config.metric.reputation_batch(
                    graph, self.peer_id, missing
                )
            self._m_kernel_calls.inc()
            self._m_kernel_targets.inc(len(missing))
        else:
            fresh = self.config.metric.reputation_batch(
                graph, self.peer_id, missing
            )
        if self._tr_kernel is not None and self._tr_kernel.sample():
            self._tr_kernel.emit_sampled(
                "batch", attrs={"owner": self.peer_id, "targets": len(missing)}
            )
        vals = np.fromiter(
            (fresh[p] for p in missing), dtype=np.float64, count=len(missing)
        )
        out[miss_pos] = vals
        miss_idx = idx[miss_pos]
        stored = miss_idx >= 0
        if stored.any():
            self._c_val[miss_idx[stored]] = vals[stored]
            self._c_stamp[miss_idx[stored]] = graph.version
        if not stored.all():
            version = graph.version
            for k in np.flatnonzero(~stored).tolist():
                self._c_unknown[missing[k]] = (float(vals[k]), version)
        return dict(zip(unique, out.tolist()))

    def rank_by_reputation(self, peers: Iterable[PeerId]) -> List[PeerId]:
        """Peers sorted by descending subjective reputation (batched).

        Ties are broken deterministically by peer id representation, which
        in the rank policy gives stable round-robin-like behaviour among
        strangers (all reputation ~0).  Every engine shares this
        tie-break, so stranger rotation is seed-stable per mechanism.
        """
        if self._engine_dispatch is not None:
            return self._engine_dispatch.rank_by_reputation(peers)
        return self._native_rank_by_reputation(peers)

    def _native_rank_by_reputation(self, peers: Iterable[PeerId]) -> List[PeerId]:
        reps = self._native_reputations_of(peers)
        scored: List[Tuple[float, str, PeerId]] = [
            (-value, repr(p), p) for p, value in reps.items()
        ]
        scored.sort(key=lambda t: (t[0], t[1]))
        return [p for _, _, p in scored]

    def active_engine(self):
        """The :class:`~repro.core.engines.ReputationEngine` scoring this
        node.  For the default mechanism this is a lazily-built
        BarterCast facade over the native path (dispatch itself stays
        ``None`` so the hot path is untouched); used by the fault
        auditor and ``repro explain`` for per-engine semantics
        (``effective_delta``, ``score_bounds``, ``evidence_flows``)."""
        if self._engine_dispatch is not None:
            return self._engine_dispatch
        if self._bartercast_facade is None:
            self._bartercast_facade = make_engine("bartercast").attach(self)
        return self._bartercast_facade

    # ------------------------------------------------------------------
    @property
    def known_peers(self) -> int:
        """Number of nodes in the subjective graph (including self)."""
        return self.graph.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BarterCastNode {self.peer_id!r} behavior={self.behavior.name} "
            f"known={self.known_peers} sent={self.messages_sent} recv={self.messages_received}>"
        )
