"""The BarterCast node: one peer's complete reputation state.

A :class:`BarterCastNode` ties together the private history, the subjective
shared history, the subjective local transfer graph, the message behaviour
(honest / ignorer / liar), and a reputation cache.  The BitTorrent
simulator calls into it on three paths:

* transfer accounting (``record_upload`` / ``record_download``),
* gossip (``create_message`` / ``receive_message``),
* policy decisions (``reputation_of``), which are cache-hot because the
  choker re-evaluates candidates every round.

Cache discipline: reputations are memoized per target and invalidated
wholesale whenever the subjective graph's version counter moves (any
private-history or shared-history change).  Under gossip the graph changes
in bursts between choke rounds, so hit rates during ranking are high.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.adversary import HonestBehavior, MessageBehavior
from repro.core.history import PrivateHistory
from repro.core.messages import BarterCastMessage
from repro.core.reputation import ReputationMetric
from repro.core.sharedhistory import SubjectiveSharedHistory
from repro.graph.transfer_graph import TransferGraph

__all__ = ["BarterCastConfig", "BarterCastNode"]

PeerId = Hashable


@dataclass
class BarterCastConfig:
    """Protocol parameters of a BarterCast node.

    Attributes
    ----------
    n_highest:
        ``Nh``: number of top-uploader records per message (paper: 10).
    n_recent:
        ``Nr``: number of most-recently-seen records per message (paper: 10).
    metric:
        The reputation metric (kernel, unit, scaling).
    """

    n_highest: int = 10
    n_recent: int = 10
    metric: ReputationMetric = field(default_factory=ReputationMetric)


class BarterCastNode:
    """One peer's BarterCast agent.

    Parameters
    ----------
    peer_id:
        This peer's identifier (the paper assumes machine-dependent
        permanent identifiers; any hashable works here).
    config:
        Protocol parameters; a default-constructed config matches the paper.
    behavior:
        Message behaviour; defaults to :class:`HonestBehavior`.
    """

    def __init__(
        self,
        peer_id: PeerId,
        config: Optional[BarterCastConfig] = None,
        behavior: Optional[MessageBehavior] = None,
    ) -> None:
        self.peer_id = peer_id
        self.config = config if config is not None else BarterCastConfig()
        self.behavior: MessageBehavior = behavior if behavior is not None else HonestBehavior()
        self.history = PrivateHistory(peer_id)
        self.graph = TransferGraph()
        self.graph.add_node(peer_id)
        self.shared = SubjectiveSharedHistory(peer_id, self.graph)
        self._rep_cache: Dict[PeerId, float] = {}
        self._rep_cache_version = -1
        self.messages_sent = 0
        self.messages_received = 0

    # ------------------------------------------------------------------
    # Transfer accounting (private history is authoritative for own edges)
    # ------------------------------------------------------------------
    def record_upload(self, peer: PeerId, nbytes: float, now: float) -> None:
        """Account ``nbytes`` uploaded to ``peer`` at time ``now``."""
        self.history.record_upload(peer, nbytes, now)
        self.graph.set_transfer(self.peer_id, peer, self.history.get(peer).uploaded)

    def record_download(self, peer: PeerId, nbytes: float, now: float) -> None:
        """Account ``nbytes`` downloaded from ``peer`` at time ``now``."""
        self.history.record_download(peer, nbytes, now)
        self.graph.set_transfer(peer, self.peer_id, self.history.get(peer).downloaded)

    def note_seen(self, peer: PeerId, now: float) -> None:
        """Mark ``peer`` as seen now (affects the ``Nr`` selection)."""
        if peer != self.peer_id:
            self.history.touch(peer, now)

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def create_message(self, now: float) -> Optional[BarterCastMessage]:
        """The message this node sends at ``now`` (None for ignorers)."""
        msg = self.behavior.make_message(self, now)
        if msg is not None:
            self.messages_sent += 1
        return msg

    def receive_message(self, message: BarterCastMessage) -> int:
        """Ingest a received message into the subjective shared history.

        Messages from self are rejected; records about the receiver are
        dropped inside the store (private history is authoritative there).
        Returns the number of records applied.
        """
        if message.sender == self.peer_id:
            raise ValueError("node received its own message")
        self.messages_received += 1
        return self.shared.ingest(message)

    # ------------------------------------------------------------------
    # Reputation
    # ------------------------------------------------------------------
    def reputation_of(self, peer: PeerId) -> float:
        """The subjective reputation ``R_self(peer)``, cached per graph version."""
        if peer == self.peer_id:
            raise ValueError("a node does not rate itself")
        if self._rep_cache_version != self.graph.version:
            self._rep_cache.clear()
            self._rep_cache_version = self.graph.version
        cached = self._rep_cache.get(peer)
        if cached is not None:
            return cached
        value = self.config.metric.reputation(self.graph, self.peer_id, peer)
        self._rep_cache[peer] = value
        return value

    def reputations_of(self, peers: List[PeerId]) -> Dict[PeerId, float]:
        """Batch evaluation of several peers (shares one cache epoch)."""
        return {p: self.reputation_of(p) for p in peers if p != self.peer_id}

    def rank_by_reputation(self, peers: List[PeerId]) -> List[PeerId]:
        """Peers sorted by descending subjective reputation.

        Ties are broken deterministically by peer id representation, which
        in the rank policy gives stable round-robin-like behaviour among
        strangers (all reputation ~0).
        """
        scored: List[Tuple[float, str, PeerId]] = [
            (-self.reputation_of(p), repr(p), p) for p in peers if p != self.peer_id
        ]
        scored.sort(key=lambda t: (t[0], t[1]))
        return [p for _, _, p in scored]

    # ------------------------------------------------------------------
    @property
    def known_peers(self) -> int:
        """Number of nodes in the subjective graph (including self)."""
        return self.graph.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BarterCastNode {self.peer_id!r} behavior={self.behavior.name} "
            f"known={self.known_peers} sent={self.messages_sent} recv={self.messages_received}>"
        )
