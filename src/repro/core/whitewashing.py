"""Whitewashing countermeasures: stranger policies.

Section 3.5 of the paper: a peer with a bad reputation can *whitewash* by
re-entering under a fresh (cheap) identity.  Following Feldman et al.,
there are only two counters: unforgeable identities (what the deployed
Tribler assumes — a machine-dependent permanent identifier), or a penalty
imposed on all newcomers, either **static** or set **adaptively** from
the observed behaviour of past newcomers.  The paper defers the
penalty-based variants to future work; this module implements them so the
trade-off can be measured (see ``benchmarks/bench_ablation_whitewash.py``).

A :class:`StrangerPolicy` maps a peer's raw subjective reputation to the
*effective* reputation used by decision policies, treating *strangers* —
peers the evaluator has no information about — specially:

* :class:`TrustedIdentities` — the deployed assumption: identities are
  permanent, strangers are genuine newcomers, no penalty (effective
  reputation 0).
* :class:`StaticStrangerPenalty` — every stranger starts at a fixed
  negative reputation.
* :class:`AdaptiveStrangerPenalty` — the stranger prior tracks the
  average reputation that past strangers *earned* once they became known:
  in a whitewashing population newcomers keep disappointing, so the prior
  sinks toward the ban threshold; in an honest population it recovers
  toward zero.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.node import BarterCastNode

__all__ = [
    "StrangerPolicy",
    "TrustedIdentities",
    "StaticStrangerPenalty",
    "AdaptiveStrangerPenalty",
    "is_stranger",
]

PeerId = Hashable


def is_stranger(node: BarterCastNode, peer: PeerId) -> bool:
    """Whether ``node`` has no information at all about ``peer``.

    A stranger has no edges in the subjective graph — no direct history
    and no third-party claims.  (A peer with edges but zero maxflow is
    *not* a stranger: someone has vouched something about it.)
    """
    if peer == node.peer_id:
        return False
    graph = node.graph
    if not graph.has_node(peer):
        return True
    return graph.in_degree(peer) == 0 and graph.out_degree(peer) == 0


class StrangerPolicy:
    """Maps raw subjective reputation to effective reputation."""

    #: Tag used in reports.
    name = "abstract"

    def effective_reputation(self, node: BarterCastNode, peer: PeerId) -> float:
        """The reputation a decision policy should act on."""
        raise NotImplementedError

    def observe(self, reputation: float) -> None:
        """Feed back the earned reputation of a once-stranger (adaptive
        policies learn from this; others ignore it)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class TrustedIdentities(StrangerPolicy):
    """Permanent identities: strangers are genuine newcomers (prior 0).

    This matches the deployed BarterCast, which relies on Tribler's
    machine-dependent permanent identifier.
    """

    name = "trusted-ids"

    def effective_reputation(self, node: BarterCastNode, peer: PeerId) -> float:
        if is_stranger(node, peer):
            return 0.0
        return node.reputation_of(peer)


class StaticStrangerPenalty(StrangerPolicy):
    """Fixed newcomer penalty.

    Parameters
    ----------
    penalty:
        The effective reputation assigned to strangers; must lie in
        ``[-1, 0]``.  A penalty below a ban threshold δ locks newcomers
        out entirely — the classic cost of fighting whitewashers.
    """

    name = "static-penalty"

    def __init__(self, penalty: float = -0.2) -> None:
        if not -1.0 <= penalty <= 0.0:
            raise ValueError(f"penalty must be in [-1, 0], got {penalty}")
        self.penalty = float(penalty)

    def effective_reputation(self, node: BarterCastNode, peer: PeerId) -> float:
        if is_stranger(node, peer):
            return self.penalty
        return node.reputation_of(peer)


class AdaptiveStrangerPenalty(StrangerPolicy):
    """Adaptive stranger policy (Feldman et al.).

    The stranger prior is an exponential moving average of the reputation
    that past strangers earned after becoming known, clipped to
    ``[floor, 0]``.  Populations full of whitewashers drag the prior
    down; honest newcomers pull it back up.

    Parameters
    ----------
    alpha:
        EMA smoothing factor in (0, 1]; higher = adapts faster.
    floor:
        Most negative prior allowed.
    initial:
        Starting prior (0 = optimistic).
    """

    name = "adaptive-penalty"

    def __init__(self, alpha: float = 0.1, floor: float = -0.8, initial: float = 0.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not -1.0 <= floor <= 0.0:
            raise ValueError(f"floor must be in [-1, 0], got {floor}")
        if not floor <= initial <= 0.0:
            raise ValueError(f"initial must be in [floor, 0], got {initial}")
        self.alpha = float(alpha)
        self.floor = float(floor)
        self._prior = float(initial)
        self._observations = 0

    @property
    def prior(self) -> float:
        """The current stranger prior."""
        return self._prior

    @property
    def observations(self) -> int:
        """How many once-stranger outcomes have been fed back."""
        return self._observations

    def observe(self, reputation: float) -> None:
        """Update the prior with the earned reputation of a once-stranger."""
        self._observations += 1
        blended = (1.0 - self.alpha) * self._prior + self.alpha * reputation
        self._prior = min(0.0, max(self.floor, blended))

    def effective_reputation(self, node: BarterCastNode, peer: PeerId) -> float:
        if is_stranger(node, peer):
            return self._prior
        return node.reputation_of(peer)
