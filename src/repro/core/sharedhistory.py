"""The subjective shared history.

Stores the claims a peer has received from other peers via BarterCast
messages and materializes them, together with the owner's private history,
into the subjective local :class:`~repro.graph.transfer_graph.TransferGraph`
that feeds the maxflow reputation.

Claim semantics
---------------
A record from reporter *r* about counterparty *c* asserts two directed
totals: ``r → c`` (r's claimed upload to c) and ``c → r`` (r's claimed
download from c).  For any ordered pair ``(x, y)`` there can thus be up to
two independent claims — one by *x* ("I uploaded U to y") and one by *y*
("I downloaded D from x").  The store keeps both and materializes the edge
as the **maximum** of the live claims: totals only grow over time, so the
larger claim is the fresher information when both parties are honest, and
when they disagree the maxflow bound (not edge arbitration) is the paper's
defense against inflation.

Two hard rules protect the owner:

* records *about the owner* (counterparty == owner) are ignored — edges
  incident to the owner come exclusively from its own private history;
* records *sent by the owner itself* are rejected (a node never gossips to
  itself).

Supersede semantics: a reporter's newer message replaces its older claims
about the same counterparty (records carry totals, not deltas).  Stale
messages — older than the newest already seen from that reporter about that
counterparty — are dropped.  Equal-timestamp ties deterministically keep
the **maximum** value, so duplicated or reordered deliveries of the same
message can never make the view depend on arrival order (the unreliable
channel of :mod:`repro.faults` relies on this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, Optional, Set, Tuple

from repro.core.messages import BarterCastMessage, HistoryRecord
from repro.graph.transfer_graph import TransferGraph
from repro.obs import NULL_OBS, Observability

__all__ = ["SubjectiveSharedHistory"]

PeerId = Hashable


@dataclass
class _Claim:
    """A reporter's latest claim about one directed edge."""

    value: float
    reported_at: float


class SubjectiveSharedHistory:
    """Accumulates third-party claims and maintains the subjective graph.

    Parameters
    ----------
    owner:
        The peer that owns this view.
    graph:
        The transfer graph to maintain.  Edges incident to ``owner`` are
        never written by this class (they belong to the private history).
    obs:
        Observability bundle; when enabled, record merges are counted
        (``bc.records_applied`` / ``bc.records_dropped``) and each ingest
        emits one sampled ``bc.merge`` trace event.

    Notes
    -----
    The class maintains, for every directed pair ``(x, y)`` with
    ``owner ∉ {x, y}``, a small dict of claims keyed by reporter.  Edge
    materialization takes the max over live claims and writes it through to
    ``graph`` incrementally, so reputation queries never trigger a full
    rebuild.
    """

    def __init__(
        self,
        owner: PeerId,
        graph: TransferGraph,
        obs: Optional[Observability] = None,
    ) -> None:
        self.owner = owner
        self._graph = graph
        # (src, dst) -> {reporter: _Claim}
        self._claims: Dict[Tuple[PeerId, PeerId], Dict[PeerId, _Claim]] = {}
        self._messages_seen = 0
        self._records_applied = 0
        self._records_dropped = 0
        obs = obs if obs is not None else NULL_OBS
        metrics = obs.metrics
        if metrics.enabled:
            self._m_applied = metrics.counter("bc.records_applied")
            self._m_dropped = metrics.counter("bc.records_dropped")
        else:
            self._m_applied = None
            self._m_dropped = None
        tracer = obs.tracer
        self._tr_merge = tracer.category("bc.merge") if tracer.enabled else None

    # ------------------------------------------------------------------
    @property
    def messages_seen(self) -> int:
        """Number of messages ingested (including fully-stale ones)."""
        return self._messages_seen

    @property
    def records_applied(self) -> int:
        """Number of records that changed the view."""
        return self._records_applied

    @property
    def records_dropped(self) -> int:
        """Number of records dropped (stale, malformed, or about the owner)."""
        return self._records_dropped

    # ------------------------------------------------------------------
    def ingest(self, message: BarterCastMessage) -> int:
        """Apply a received message; returns the number of records applied.

        Raises
        ------
        ValueError
            If the message claims to be from the owner itself.
        """
        if message.sender == self.owner:
            raise ValueError("a node cannot ingest its own message")
        self._messages_seen += 1
        applied = 0
        sane = message.sane_records()
        self._records_dropped += message.num_records - len(sane)
        for record in sane:
            if self._apply_record(message.sender, record, message.created_at):
                applied += 1
            else:
                self._records_dropped += 1
        if self._m_applied is not None:
            self._m_applied.inc(applied)
            self._m_dropped.inc(message.num_records - applied)
        if self._tr_merge is not None and self._tr_merge.sample():
            self._tr_merge.emit_sampled(
                "ingest",
                sim_time=message.created_at,
                attrs={
                    "owner": self.owner,
                    "reporter": message.sender,
                    "records": message.num_records,
                    "applied": applied,
                },
            )
        return applied

    def _apply_record(
        self, reporter: PeerId, record: HistoryRecord, reported_at: float
    ) -> bool:
        c = record.counterparty
        if c == self.owner or reporter == self.owner:
            # Edges incident to the owner come from the private history only.
            return False
        changed = False
        # reporter -> counterparty: reporter's claimed upload.
        if self._update_claim((reporter, c), reporter, record.uploaded, reported_at):
            changed = True
        # counterparty -> reporter: reporter's claimed download.
        if self._update_claim((c, reporter), reporter, record.downloaded, reported_at):
            changed = True
        if changed:
            self._records_applied += 1
        return changed

    def _update_claim(
        self,
        edge: Tuple[PeerId, PeerId],
        reporter: PeerId,
        value: float,
        reported_at: float,
    ) -> bool:
        claims = self._claims.setdefault(edge, {})
        existing = claims.get(reporter)
        if existing is not None:
            if existing.reported_at > reported_at:
                return False  # stale
            if existing.reported_at == reported_at and value <= existing.value:
                # Redelivered or reordered copy of an equal-timestamp
                # message: the tie rule keeps the max value, so the view
                # is independent of arrival order (delivery idempotency).
                return False
            if existing.value == value:
                existing.reported_at = reported_at
                return False  # no change
        claims[reporter] = _Claim(value=float(value), reported_at=float(reported_at))
        self._materialize(edge)
        return True

    def _materialize(self, edge: Tuple[PeerId, PeerId]) -> None:
        claims = self._claims.get(edge, {})
        value = max((c.value for c in claims.values()), default=0.0)
        # A claim that does not move the max (e.g. a second reporter making
        # a lower claim) leaves the materialized edge as-is: skip the write
        # so the graph version stays put and no cache invalidation fires.
        # The endpoints are still registered — a zero-value claim marks the
        # peers as known even though it stores no edge.
        if value == self._graph.capacity(edge[0], edge[1]):
            self._graph.add_node(edge[0])
            self._graph.add_node(edge[1])
            return
        self._graph.set_transfer(edge[0], edge[1], value)

    # ------------------------------------------------------------------
    def claimed(self, src: PeerId, dst: PeerId) -> float:
        """The materialized claim for edge ``(src, dst)`` (0 if none)."""
        return self._graph.capacity(src, dst)

    def claim_of(self, reporter: PeerId, src: PeerId, dst: PeerId) -> Optional[float]:
        """``reporter``'s own live claim about edge ``(src, dst)``, if any."""
        claims = self._claims.get((src, dst))
        if claims is None:
            return None
        claim = claims.get(reporter)
        return None if claim is None else claim.value

    def known_edges(self) -> Iterator[Tuple[PeerId, PeerId]]:
        """Directed pairs for which at least one claim is stored."""
        return iter(self._claims)

    def reporters(self) -> Set[PeerId]:
        """Every peer with at least one live claim in this view."""
        seen: Set[PeerId] = set()
        for claims in self._claims.values():
            seen.update(claims)
        return seen

    def forget_reporter(self, reporter: PeerId) -> int:
        """Drop all claims made by ``reporter``; returns how many edges changed.

        Used by failure-injection tests and by future eviction policies.
        """
        changed = 0
        for edge, claims in list(self._claims.items()):
            if reporter in claims:
                del claims[reporter]
                self._materialize(edge)
                changed += 1
                if not claims:
                    del self._claims[edge]
        return changed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SubjectiveSharedHistory owner={self.owner!r} "
            f"edges={len(self._claims)} msgs={self._messages_seen}>"
        )
