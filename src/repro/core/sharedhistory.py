"""The subjective shared history.

Stores the claims a peer has received from other peers via BarterCast
messages and materializes them, together with the owner's private history,
into the subjective local :class:`~repro.graph.transfer_graph.TransferGraph`
that feeds the maxflow reputation.

Claim semantics
---------------
A record from reporter *r* about counterparty *c* asserts two directed
totals: ``r → c`` (r's claimed upload to c) and ``c → r`` (r's claimed
download from c).  For any ordered pair ``(x, y)`` there can thus be up to
two independent claims — one by *x* ("I uploaded U to y") and one by *y*
("I downloaded D from x").  The store keeps both and materializes the edge
as the **maximum** of the live claims: totals only grow over time, so the
larger claim is the fresher information when both parties are honest, and
when they disagree the maxflow bound (not edge arbitration) is the paper's
defense against inflation.

Two hard rules protect the owner:

* records *about the owner* (counterparty == owner) are ignored — edges
  incident to the owner come exclusively from its own private history;
* records *sent by the owner itself* are rejected (a node never gossips to
  itself).

Supersede semantics: a reporter's newer message replaces its older claims
about the same counterparty (records carry totals, not deltas).  Stale
messages — older than the newest already seen from that reporter about that
counterparty — are dropped.  Equal-timestamp ties deterministically keep
the **maximum** value, so duplicated or reordered deliveries of the same
message can never make the view depend on arrival order (the unreliable
channel of :mod:`repro.faults` relies on this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, Optional, Set, Tuple

from repro.core.messages import BarterCastMessage, HistoryRecord
from repro.graph.transfer_graph import TransferGraph
from repro.obs import NULL_OBS, Observability
from repro.obs.provenance import NULL_PROVENANCE, ClaimLineage, ProvenanceRecorder

__all__ = ["SubjectiveSharedHistory"]

PeerId = Hashable


@dataclass(slots=True)
class _Claim:
    """A reporter's latest claim about one directed edge.

    ``lineage`` is ``None`` unless provenance recording is enabled, in
    which case it is the compact raw tuple ``(msg_id, received_at,
    superseded_count)`` describing the message that delivered the live
    value.  The full :class:`repro.obs.provenance.ClaimLineage` view is
    synthesized lazily by :meth:`SubjectiveSharedHistory.lineage_of`
    (the other fields — reporter, value, reported_at — already live on
    the claim), keeping the ingest hot path to one tuple allocation.
    """

    value: float
    reported_at: float
    lineage: Optional[Tuple[Hashable, float, int]] = None


class SubjectiveSharedHistory:
    """Accumulates third-party claims and maintains the subjective graph.

    Parameters
    ----------
    owner:
        The peer that owns this view.
    graph:
        The transfer graph to maintain.  Edges incident to ``owner`` are
        never written by this class (they belong to the private history).
    obs:
        Observability bundle; when enabled, record merges are counted
        (``bc.records_applied`` / ``bc.records_dropped``) and each ingest
        emits one sampled ``bc.merge`` trace event.
    provenance:
        Optional :class:`~repro.obs.provenance.ProvenanceRecorder`.  When
        enabled, every live claim carries a :class:`ClaimLineage` and
        lineage events (record/supersede/redelivery/stale/forget) are
        counted.  Defaults to the no-op :data:`NULL_PROVENANCE`; every
        hot-path hook is guarded by a cached boolean so a provenance-off
        store behaves byte-identically to the seed implementation.

    Notes
    -----
    The class maintains, for every directed pair ``(x, y)`` with
    ``owner ∉ {x, y}``, a small dict of claims keyed by reporter.  Edge
    materialization takes the max over live claims and writes it through to
    ``graph`` incrementally, so reputation queries never trigger a full
    rebuild.
    """

    def __init__(
        self,
        owner: PeerId,
        graph: TransferGraph,
        obs: Optional[Observability] = None,
        provenance: Optional[ProvenanceRecorder] = None,
    ) -> None:
        self.owner = owner
        self._graph = graph
        self._prov = provenance if provenance is not None else NULL_PROVENANCE
        self._prov_on = self._prov.enabled
        # Bound-method cache: record_claim fires once per applied claim on
        # the gossip hot path.
        self._prov_record_claim = self._prov.record_claim
        # Per-ingest delivery context (msg id + receipt time), stashed here
        # so the claim-update hot path keeps its seed signature.
        self._msg_id: Hashable = None
        self._received_at = 0.0
        # (src, dst) -> {reporter: _Claim}
        self._claims: Dict[Tuple[PeerId, PeerId], Dict[PeerId, _Claim]] = {}
        self._messages_seen = 0
        self._records_applied = 0
        self._records_dropped = 0
        obs = obs if obs is not None else NULL_OBS
        metrics = obs.metrics
        if metrics.enabled:
            self._m_applied = metrics.counter("bc.records_applied")
            self._m_dropped = metrics.counter("bc.records_dropped")
        else:
            self._m_applied = None
            self._m_dropped = None
        tracer = obs.tracer
        self._tr_merge = tracer.category("bc.merge") if tracer.enabled else None

    # ------------------------------------------------------------------
    @property
    def messages_seen(self) -> int:
        """Number of messages ingested (including fully-stale ones)."""
        return self._messages_seen

    @property
    def records_applied(self) -> int:
        """Number of records that changed the view."""
        return self._records_applied

    @property
    def records_dropped(self) -> int:
        """Number of records dropped (stale, malformed, or about the owner)."""
        return self._records_dropped

    # ------------------------------------------------------------------
    def ingest(self, message: BarterCastMessage, now: Optional[float] = None) -> int:
        """Apply a received message; returns the number of records applied.

        ``now`` is the simulated receipt time, recorded into claim lineage
        when provenance is on (the delaying channel of :mod:`repro.faults`
        makes it differ from ``message.created_at``).  When omitted, the
        creation time is used.

        Raises
        ------
        ValueError
            If the message claims to be from the owner itself.
        """
        if message.sender == self.owner:
            raise ValueError("a node cannot ingest its own message")
        self._messages_seen += 1
        if self._prov_on:
            self._msg_id = (
                message.msg_id
                if message.msg_id is not None
                else (message.sender, message.created_at)
            )
            self._received_at = float(
                message.created_at if now is None else now
            )
        sane = message.sane_records()
        self._records_dropped += message.num_records - len(sane)
        if self._prov_on:
            applied = 0
            for record in sane:
                if self._apply_record(message.sender, record, message.created_at):
                    applied += 1
                else:
                    self._records_dropped += 1
        else:
            applied = self._ingest_fast(message.sender, sane, message.created_at)
        if self._m_applied is not None:
            self._m_applied.inc(applied)
            self._m_dropped.inc(message.num_records - applied)
        if self._tr_merge is not None and self._tr_merge.sample():
            self._tr_merge.emit_sampled(
                "ingest",
                sim_time=message.created_at,
                attrs={
                    "owner": self.owner,
                    "reporter": message.sender,
                    "records": message.num_records,
                    "applied": applied,
                },
            )
        return applied

    def _ingest_fast(self, reporter, records, reported_at) -> int:
        """Provenance-off ingest: the claim-update + materialize pipeline of
        :meth:`_apply_record` fused into one loop.

        Gossip ingest is the write hot path of every simulation, and with
        lineage recording off the per-claim work is small enough that the
        method-call and allocation overhead of the layered path dominates.
        This loop produces the **same observable state transitions** —
        identical claim values/timestamps, identical graph writes in
        identical order (so versions, listener events, and stamp touches
        match), identical applied/dropped counts; the only shortcuts are
        unobservable ones (claims are mutated in place instead of
        reallocated, and the single-claim materialize skips the max scan).
        The provenance-on path keeps the layered implementation untouched.
        """
        owner = self.owner
        claims_map = self._claims
        g_set = self._graph.set_transfer
        rts = float(reported_at)
        applied = 0
        dropped = 0
        for record in records:
            c = record.counterparty
            if c == owner:
                # Edges incident to the owner come from the private
                # history only.
                dropped += 1
                continue
            changed = False
            for e0, e1, value in (
                (reporter, c, record.uploaded),
                (c, reporter, record.downloaded),
            ):
                edge = (e0, e1)
                claims = claims_map.get(edge)
                if claims is None:
                    claims = claims_map[edge] = {}
                    existing = None
                else:
                    existing = claims.get(reporter)
                if existing is not None:
                    ets = existing.reported_at
                    if ets > rts:
                        continue  # stale
                    if ets == rts and value <= existing.value:
                        continue  # redelivery / reorder of an equal-ts copy
                    if existing.value == value:
                        existing.reported_at = rts
                        continue  # fresher confirmation of the same total
                    existing.value = float(value)
                    existing.reported_at = rts
                else:
                    claims[reporter] = _Claim(
                        value=float(value), reported_at=rts
                    )
                if len(claims) == 1:
                    m = float(value)
                else:
                    m = max(cl.value for cl in claims.values())
                # set_transfer ensures both nodes exist and silently
                # no-ops when the capacity is unchanged — the exact
                # behaviour _materialize gets from its capacity()
                # pre-check, minus one graph lookup per claim.
                g_set(e0, e1, m)
                changed = True
            if changed:
                applied += 1
            else:
                dropped += 1
        self._records_applied += applied
        self._records_dropped += dropped
        return applied

    def _apply_record(
        self, reporter: PeerId, record: HistoryRecord, reported_at: float
    ) -> bool:
        c = record.counterparty
        if c == self.owner or reporter == self.owner:
            # Edges incident to the owner come from the private history only.
            return False
        changed = False
        # reporter -> counterparty: reporter's claimed upload.
        if self._update_claim((reporter, c), reporter, record.uploaded, reported_at):
            changed = True
        # counterparty -> reporter: reporter's claimed download.
        if self._update_claim((c, reporter), reporter, record.downloaded, reported_at):
            changed = True
        if changed:
            self._records_applied += 1
        return changed

    def _update_claim(
        self,
        edge: Tuple[PeerId, PeerId],
        reporter: PeerId,
        value: float,
        reported_at: float,
    ) -> bool:
        claims = self._claims.setdefault(edge, {})
        existing = claims.get(reporter)
        if existing is not None:
            if existing.reported_at > reported_at:
                if self._prov_on:
                    self._prov.record_stale(self.owner, edge, reporter)
                return False  # stale
            if existing.reported_at == reported_at and value <= existing.value:
                # Redelivered or reordered copy of an equal-timestamp
                # message: the tie rule keeps the max value, so the view
                # is independent of arrival order (delivery idempotency).
                # Lineage likewise stays put — the live claim is unchanged.
                if self._prov_on:
                    self._prov.record_redelivery(self.owner, edge, reporter)
                return False
            if existing.value == value:
                existing.reported_at = reported_at
                if self._prov_on:
                    # A fresher message confirmed the same total: refresh
                    # the lineage to the confirming message (superseded
                    # counts every replaced/confirmed predecessor; a claim
                    # that predates provenance recording counts as one
                    # predecessor of unknown history).
                    old = existing.lineage
                    existing.lineage = lineage = (
                        self._msg_id,
                        self._received_at,
                        old[2] + 1 if old is not None else 1,
                    )
                    self._prov_record_claim(self.owner, edge, reporter, lineage, True)
                return False  # no change
        if self._prov_on:
            if existing is None:
                lineage = (self._msg_id, self._received_at, 0)
            else:
                old = existing.lineage
                lineage = (
                    self._msg_id,
                    self._received_at,
                    old[2] + 1 if old is not None else 1,
                )
            self._prov_record_claim(
                self.owner, edge, reporter, lineage, existing is not None
            )
        else:
            lineage = None
        claims[reporter] = _Claim(
            value=float(value), reported_at=float(reported_at), lineage=lineage
        )
        self._materialize(edge)
        return True

    def _materialize(self, edge: Tuple[PeerId, PeerId]) -> None:
        claims = self._claims.get(edge, {})
        value = max((c.value for c in claims.values()), default=0.0)
        # A claim that does not move the max (e.g. a second reporter making
        # a lower claim) leaves the materialized edge as-is: skip the write
        # so the graph version stays put and no cache invalidation fires.
        # The endpoints are still registered — a zero-value claim marks the
        # peers as known even though it stores no edge.
        if value == self._graph.capacity(edge[0], edge[1]):
            self._graph.add_node(edge[0])
            self._graph.add_node(edge[1])
            return
        self._graph.set_transfer(edge[0], edge[1], value)

    # ------------------------------------------------------------------
    def claimed(self, src: PeerId, dst: PeerId) -> float:
        """The materialized claim for edge ``(src, dst)`` (0 if none)."""
        return self._graph.capacity(src, dst)

    def claim_of(self, reporter: PeerId, src: PeerId, dst: PeerId) -> Optional[float]:
        """``reporter``'s own live claim about edge ``(src, dst)``, if any."""
        claims = self._claims.get((src, dst))
        if claims is None:
            return None
        claim = claims.get(reporter)
        return None if claim is None else claim.value

    def known_edges(self) -> Iterator[Tuple[PeerId, PeerId]]:
        """Directed pairs for which at least one claim is stored."""
        return iter(self._claims)

    def reporters(self) -> Set[PeerId]:
        """Every peer with at least one live claim in this view."""
        seen: Set[PeerId] = set()
        for claims in self._claims.values():
            seen.update(claims)
        return seen

    def forget_reporter(self, reporter: PeerId) -> int:
        """Drop all claims made by ``reporter``; returns how many edges changed.

        Used by failure-injection tests and by future eviction policies.
        """
        changed = 0
        for edge, claims in list(self._claims.items()):
            if reporter in claims:
                del claims[reporter]
                self._materialize(edge)
                changed += 1
                if not claims:
                    del self._claims[edge]
        if self._prov_on and changed:
            self._prov.record_forget(self.owner, reporter, changed)
        return changed

    # ------------------------------------------------------------------
    @property
    def provenance_enabled(self) -> bool:
        """Whether live claims carry lineage records."""
        return self._prov_on

    def lineage_of(
        self, src: PeerId, dst: PeerId
    ) -> Dict[PeerId, ClaimLineage]:
        """Lineage of every live claim about edge ``(src, dst)``.

        Keyed by reporter; empty when provenance is off or nothing is
        known about the pair.  Claims ingested before provenance was
        enabled carry no lineage and are omitted.
        """
        claims = self._claims.get((src, dst))
        if not claims:
            return {}
        return {
            reporter: ClaimLineage(
                reporter=reporter,
                msg_id=claim.lineage[0],
                value=claim.value,
                reported_at=claim.reported_at,
                received_at=claim.lineage[1],
                hops=1,
                superseded=claim.lineage[2],
            )
            for reporter, claim in claims.items()
            if claim.lineage is not None
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SubjectiveSharedHistory owner={self.owner!r} "
            f"edges={len(self._claims)} msgs={self._messages_seen}>"
        )
