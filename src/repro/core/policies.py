"""Reputation policies for BitTorrent integration.

Section 4.2 of the paper defines two policies on top of the standard
tit-for-tat choker:

* **rank policy** — optimistic unchoke slots are assigned to interested
  peers in order of their reputation: "a peer can not get an upload slot
  while peers with a higher reputation are also interested and not yet
  served";
* **ban policy** — "peers do not assign any upload slots to peers that have
  a reputation which is below a certain negative threshold δ".

Plus the implicit baseline: plain BitTorrent with no reputation at all
(:class:`NoPolicy`).

The BitTorrent choker consults the policy at two points:

``allows(node, peer)``
    May ``peer`` receive *any* upload slot (regular or optimistic)?  The
    ban policy answers ``False`` below δ; rank and baseline always allow.

``order_optimistic(node, interested, rng)``
    In what order should optimistic-unchoke candidates be considered?  The
    rank policy sorts by descending reputation; the others shuffle
    uniformly (BitTorrent's round-robin is realized as a fresh random
    order per rotation, which has the same long-run fairness).
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.core.node import BarterCastNode
from repro.sim.rng import RngStream

__all__ = ["ReputationPolicy", "NoPolicy", "RankPolicy", "BanPolicy"]

PeerId = Hashable


class ReputationPolicy:
    """Interface the choker uses to consult BarterCast.

    Policies that act on reputation values accept an optional
    ``stranger_policy`` (:mod:`repro.core.whitewashing`): when provided,
    unknown peers are scored by the stranger prior instead of a flat 0,
    which is the whitewashing countermeasure the paper defers to future
    work.
    """

    #: Tag used in experiment reports ("rank", "ban", "none").
    name = "abstract"

    #: Optional stranger policy consulted for reputation lookups.
    stranger_policy = None

    #: Whether the policy reads reputations at all (drives ``prewarm``).
    uses_reputation = False

    def _reputation(self, node: BarterCastNode, peer: PeerId) -> float:
        if self.stranger_policy is not None:
            return self.stranger_policy.effective_reputation(node, peer)
        return node.reputation_of(peer)

    def prewarm(self, node: Optional[BarterCastNode], peers: List[PeerId]) -> None:
        """Batch-evaluate the reputations of ``peers`` before per-peer calls.

        The choker calls this once per round with the full candidate list;
        reputation-reading policies answer it with one batched kernel pass
        (:meth:`BarterCastNode.reputations_of`), so the subsequent
        ``allows`` / ``order_optimistic`` lookups are cache hits.  Policies
        that ignore reputation inherit the no-op.
        """
        if self.uses_reputation and node is not None and peers:
            node.reputations_of(peers)

    def allows(self, node: Optional[BarterCastNode], peer: PeerId) -> bool:
        """Whether ``peer`` may receive an upload slot from ``node``'s owner."""
        raise NotImplementedError

    def order_optimistic(
        self,
        node: Optional[BarterCastNode],
        interested: List[PeerId],
        rng: RngStream,
    ) -> List[PeerId]:
        """Candidate order for the optimistic unchoke slot (best first)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class NoPolicy(ReputationPolicy):
    """Plain BitTorrent: reputation is ignored entirely."""

    name = "none"

    def allows(self, node: Optional[BarterCastNode], peer: PeerId) -> bool:
        return True

    def order_optimistic(
        self,
        node: Optional[BarterCastNode],
        interested: List[PeerId],
        rng: RngStream,
    ) -> List[PeerId]:
        return rng.shuffled(interested)


class RankPolicy(ReputationPolicy):
    """Optimistic slots in descending reputation order.

    Strangers (reputation ≈ 0) tie; ties are shuffled so newcomers still
    rotate through the optimistic slot as in plain BitTorrent.
    """

    name = "rank"
    uses_reputation = True

    def __init__(self, stranger_policy=None) -> None:
        self.stranger_policy = stranger_policy

    def allows(self, node: Optional[BarterCastNode], peer: PeerId) -> bool:
        return True

    def order_optimistic(
        self,
        node: Optional[BarterCastNode],
        interested: List[PeerId],
        rng: RngStream,
    ) -> List[PeerId]:
        if node is None:
            return rng.shuffled(interested)
        shuffled = rng.shuffled(interested)
        # One batched kernel pass warms the cache; the sort key then reads
        # cache hits (via the stranger policy when one is configured).
        self.prewarm(node, shuffled)
        shuffled.sort(key=lambda p: -self._reputation(node, p))
        return shuffled


class BanPolicy(ReputationPolicy):
    """No upload slots for peers below the threshold δ.

    Parameters
    ----------
    delta:
        The (negative) reputation threshold; the paper evaluates
        δ ∈ {−0.3, −0.5, −0.7} and finds −0.5 a good operating point.

    Banned peers are also excluded from the optimistic rotation.  Among
    allowed peers the optimistic order is uniform, as in plain BitTorrent
    (the ban policy is evaluated separately from the rank policy in the
    paper).
    """

    name = "ban"
    uses_reputation = True

    def __init__(self, delta: float = -0.5, stranger_policy=None) -> None:
        if not -1.0 <= delta <= 0.0:
            raise ValueError(f"delta must be in [-1, 0], got {delta}")
        self.delta = float(delta)
        self.stranger_policy = stranger_policy

    def allows(self, node: Optional[BarterCastNode], peer: PeerId) -> bool:
        if node is None:
            return True
        return self._reputation(node, peer) >= self.delta

    def order_optimistic(
        self,
        node: Optional[BarterCastNode],
        interested: List[PeerId],
        rng: RngStream,
    ) -> List[PeerId]:
        self.prewarm(node, interested)
        allowed = [p for p in interested if self.allows(node, p)]
        return rng.shuffled(allowed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BanPolicy delta={self.delta}>"
