"""Message behaviours: honest peers and protocol-disobeying peers.

The Figure 3 experiments vary the fraction of peers that disobey the
BarterCast *message* protocol (the data-transfer protocol itself is still
followed — these are lazy freeriders with modified gossip behaviour):

* :class:`Ignorer` — sends no BarterCast messages at all (Figure 3(a));
* :class:`SelfishLiar` — claims to have uploaded huge amounts to the peers
  it knows and to have downloaded nothing (Figure 3(b)).

Behaviours are strategy objects plugged into
:class:`~repro.core.node.BarterCastNode`; they only control what the node
*sends*, never how it interprets received messages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Optional

from repro.core.messages import BarterCastMessage, HistoryRecord, select_records

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import BarterCastNode

__all__ = ["MessageBehavior", "HonestBehavior", "Ignorer", "SelfishLiar"]

PeerId = Hashable

#: The fabricated upload total a selfish liar claims per counterparty.
#: "Huge" per the paper; 10 GiB dwarfs any honest weekly transfer total.
LIE_UPLOAD_BYTES = 10.0 * 1024**3


class MessageBehavior:
    """Strategy interface for producing outgoing BarterCast messages."""

    #: Human-readable tag used in experiment reports.
    name = "abstract"

    def make_message(self, node: "BarterCastNode", now: float) -> Optional[BarterCastMessage]:
        """Build the message ``node`` sends at time ``now``.

        Returns ``None`` if the peer sends nothing this round.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class HonestBehavior(MessageBehavior):
    """Protocol-obeying peers: send the paper's selection of true records."""

    name = "honest"

    def make_message(self, node: "BarterCastNode", now: float) -> Optional[BarterCastMessage]:
        records = select_records(node.history, node.config.n_highest, node.config.n_recent)
        return BarterCastMessage(sender=node.peer_id, created_at=now, records=tuple(records))


class Ignorer(MessageBehavior):
    """Peers that ignore the message protocol: they send nothing.

    They still receive and apply other peers' messages (a lazy freerider
    has no reason to blind itself) — the paper's scenario only removes
    their *outgoing* information.
    """

    name = "ignore"

    def make_message(self, node: "BarterCastNode", now: float) -> Optional[BarterCastMessage]:
        return None


class SelfishLiar(MessageBehavior):
    """Peers that lie selfishly about their contribution.

    The paper: "peers lie in a selfish way by claiming they sent huge
    amounts of data to other peers and received nothing."  The liar keeps
    the honest selection of counterparties (so the message looks plausible)
    but rewrites every record to a huge upload and zero download.

    Parameters
    ----------
    lie_upload_bytes:
        The fabricated per-counterparty upload total.
    """

    name = "lie"

    def __init__(self, lie_upload_bytes: float = LIE_UPLOAD_BYTES) -> None:
        if lie_upload_bytes <= 0:
            raise ValueError("lie_upload_bytes must be positive")
        self.lie_upload_bytes = float(lie_upload_bytes)

    def make_message(self, node: "BarterCastNode", now: float) -> Optional[BarterCastMessage]:
        honest = select_records(node.history, node.config.n_highest, node.config.n_recent)
        counterparties = [r.counterparty for r in honest]
        if not counterparties:
            # A liar with an empty history fabricates nothing — it has no
            # counterparties to name (naming unknown ids would not help it:
            # edges toward the evaluator are what matter).
            return None
        records = tuple(
            HistoryRecord(counterparty=c, uploaded=self.lie_upload_bytes, downloaded=0.0)
            for c in counterparties
        )
        return BarterCastMessage(sender=node.peer_id, created_at=now, records=records)
