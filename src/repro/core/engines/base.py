"""The ``ReputationEngine`` interface: one pluggable freeriding defense.

BarterCast's maxflow-over-gossiped-history is *one* way to turn a
subjective transfer graph into reputations; the related work names
rivals (differential-gossip aggregation, private-tracker ratio credit).
This package extracts the reputation surface of
:class:`~repro.core.node.BarterCastNode` — ``reputation_of`` /
``reputations_of`` / ``rank_by_reputation``, cache maintenance, and the
explain/provenance hooks — into an interface so rival mechanisms can be
evaluated under the same simulator, fault harness, and sweep machinery.

Contract (every engine)
-----------------------
* Scores live in ``score_bounds`` (default ``(-1, 1)``); whether the
  endpoints are reachable is declared by ``bounds_closed`` (the fault
  auditor range-checks per engine).  Scores are **never** NaN — a peer
  with no evidence scores exactly ``0.0``.
* ``reputation_of(j)`` is a pure function of the owner's *subjective
  state* (its graph / histories) at call time: engines read what gossip
  delivered, so the fault knobs (loss, duplication, delay, churn wipes)
  apply to every mechanism for free.
* ``reputations_of`` / ``rank_by_reputation`` are batch forms that must
  be value-identical to scalar calls; the rank tie-break (descending
  score, then ``repr`` of the peer id) is shared by every engine so
  stranger rotation stays deterministic per seed.
* ``effective_delta(delta)`` maps the sweep's ban threshold into the
  engine's own score space (the ratio engine bans on a *ratio*
  threshold, not a flow-difference one), so the false-ban measure is
  well-defined per mechanism instead of silently wrong.
* ``evidence_flows(j)`` returns the engine's (in, out) evidence totals
  in bytes — maxflow values for BarterCast, weighted/raw volume sums for
  the aggregation engines — feeding the sweep's inversion digests and
  ``repro explain``.
* ``explain_components(j)`` returns a flat JSON-safe dict decomposing
  the score, for the per-mechanism section of ``repro explain``.

The default engine (``"bartercast"``) delegates to the node's native
maxflow implementation, so the default path stays byte-identical to a
build without this package (pinned by test).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, Iterable, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime cycle
    from repro.core.node import BarterCastNode

__all__ = ["ReputationEngine", "GraphAggregationEngine"]

PeerId = Hashable


class ReputationEngine:
    """One reputation mechanism over a node's subjective state.

    Engines are constructed unattached (picklable-by-name: sweeps carry
    the engine *name* in their scenario and workers rebuild instances),
    then bound to a node with :meth:`attach`.  One engine instance
    serves one node.
    """

    #: Registry / report tag ("bartercast", "gossip", "ratio").
    name = "abstract"

    #: (lo, hi) range every score must fall in (audit invariant 3).
    score_bounds: Tuple[float, float] = (-1.0, 1.0)

    #: Whether the bounds are attainable.  The arctan-scaled engines live
    #: in the *open* interval; the ratio engine reaches ±1 exactly (a
    #: pure leecher is −1), so its auditor check is closed.
    bounds_closed = False

    def __init__(self) -> None:
        self.node: "BarterCastNode" = None  # type: ignore[assignment]

    # ------------------------------------------------------------------
    def attach(self, node: "BarterCastNode") -> "ReputationEngine":
        """Bind this engine to ``node`` and return ``self``."""
        self.node = node
        self._attached(node)
        return self

    def _attached(self, node: "BarterCastNode") -> None:
        """Subclass hook: set up per-node caches after binding."""

    def _check_subject(self, peer: PeerId) -> None:
        if peer == self.node.peer_id:
            raise ValueError("a node does not rate itself")

    # ------------------------------------------------------------------
    # The reputation surface
    # ------------------------------------------------------------------
    def reputation_of(self, peer: PeerId) -> float:
        """The subjective score of ``peer`` from the owner's state."""
        raise NotImplementedError

    def reputations_of(self, peers: Iterable[PeerId]) -> Dict[PeerId, float]:
        """Batch evaluation; ``self`` and duplicates are skipped.

        Value-identical to scalar calls by construction (the default
        loops over :meth:`reputation_of`; engines with a faster batch
        path must preserve the identity).
        """
        out: Dict[PeerId, float] = {}
        me = self.node.peer_id
        for p in peers:
            if p != me and p not in out:
                out[p] = self.reputation_of(p)
        return out

    def rank_by_reputation(self, peers: Iterable[PeerId]) -> List[PeerId]:
        """Peers by descending score, ties broken by ``repr`` of the id —
        the same deterministic tie-break every engine (and the node's
        native path) uses, so stranger rotation is seed-stable."""
        reps = self.reputations_of(peers)
        scored = [(-value, repr(p), p) for p, value in reps.items()]
        scored.sort(key=lambda t: (t[0], t[1]))
        return [p for _, _, p in scored]

    def prewarm(self, peers: List[PeerId]) -> None:
        """Policy hook: batch-evaluate before per-peer ``allows`` calls."""
        if peers:
            self.reputations_of(peers)

    def invalidate_cache(self) -> None:
        """Drop any memoized scores (forces cold re-evaluation)."""

    # ------------------------------------------------------------------
    # Mechanism semantics (per-engine measures and explanations)
    # ------------------------------------------------------------------
    def effective_delta(self, delta: float) -> float:
        """Map the sweep's ban threshold into this engine's score space.

        The default is the identity: ``delta`` is already a score
        threshold for mechanisms scaled like the paper's Equation (1).
        Engines with their own banning convention (the ratio engine's
        private-tracker ratio floor) translate here, so the false-ban
        measure compares mechanisms at *their* operating points.
        """
        return delta

    def evidence_flows(self, subject: PeerId) -> Tuple[float, float]:
        """(inbound, outbound) evidence totals in bytes for ``subject``.

        Whatever "service toward me vs consumed" means under this
        mechanism: maxflow values for BarterCast, (weighted) volume sums
        for the aggregation engines.  Feeds inversion digests.
        """
        raise NotImplementedError

    def explain_components(self, subject: PeerId) -> Dict[str, object]:
        """Flat JSON-safe decomposition of ``reputation_of(subject)``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name}>"


class GraphAggregationEngine(ReputationEngine):
    """Shared base for engines that aggregate over the subjective graph.

    Provides a graph-version-keyed score memo: entries are valid while
    ``graph.version`` is unchanged and are dropped wholesale on the
    first lookup after any write.  That is coarser than the maxflow
    path's dirty-set cache but exact for *any* aggregation (every score
    may depend on every edge), and the measurement workloads — ranking
    rounds and post-run sweeps — query in bursts between writes, where
    the memo serves every repeat lookup.  Cache telemetry lands on the
    node's ``rep_cache_*`` counters so the sweep's cache probes work
    unchanged per mechanism.
    """

    def _attached(self, node: "BarterCastNode") -> None:
        self._memo: Dict[PeerId, float] = {}
        self._memo_version = -1

    def _score(self, subject: PeerId) -> float:
        raise NotImplementedError

    def _sync(self) -> None:
        version = self.node.graph.version
        if self._memo_version != version:
            self.node.rep_cache_invalidations += len(self._memo)
            self._memo.clear()
            self._memo_version = version

    def reputation_of(self, peer: PeerId) -> float:
        self._check_subject(peer)
        self._sync()
        cached = self._memo.get(peer)
        if cached is not None:
            self.node.rep_cache_hits += 1
            return cached
        self.node.rep_cache_misses += 1
        value = self._score(peer)
        self._memo[peer] = value
        return value

    def invalidate_cache(self) -> None:
        self.node.rep_cache_invalidations += len(self._memo)
        self._memo.clear()
        self._memo_version = -1

    @property
    def cache_size(self) -> int:
        """Number of currently memoized scores."""
        return len(self._memo)

    # Helpers shared by the aggregation engines -------------------------
    def _volume_out(self, peer: PeerId) -> float:
        """Total bytes ``peer`` is believed to have uploaded (Σ succ)."""
        graph = self.node.graph
        if not graph.has_node(peer):
            return 0.0
        return float(sum(graph.successors(peer).values()))

    def _volume_in(self, peer: PeerId) -> float:
        """Total bytes ``peer`` is believed to have downloaded (Σ pred)."""
        graph = self.node.graph
        if not graph.has_node(peer):
            return 0.0
        return float(sum(graph.predecessors(peer).values()))
