"""Ratio-credit economy (private-tracker style; PAPERS.md).

Private BitTorrent communities enforce a *share ratio*: each member's
lifetime upload ÷ download, with accounts below a floor (commonly 0.25
.. 0.7) losing access.  As a decentralized analogue, this engine scores
a peer from the owner's subjective graph totals:

    score(j) = (u − d) / (u + d)

with ``u`` = total bytes *j* is believed to have uploaded (to anyone)
and ``d`` = total bytes downloaded.  This is the share ratio squashed
onto [−1, 1] — score s corresponds to ratio (1+s)/(1−s) — making it
rank-equivalent to the tracker's u/d while staying bounded (a tracker's
raw ratio is unbounded above, which no fixed score scale can hold).

Semantics that differ from the arctan engines, on purpose:

* **Closed bounds.**  A pure leecher is exactly −1 and a pure seeder
  exactly +1, so the auditor's range check is ``<=`` for this engine
  (``bounds_closed``).
* **Scale-free.**  Ratio credit ignores volume: 1 MB up / 2 MB down
  scores the same as 1 TB / 2 TB.  ``unit_bytes`` plays no role.
* **Bootstrap grace.**  With no evidence (u = d = 0) the raw formula is
  0/0; the engine defines that as 0.0 — a stranger is neutral, never
  NaN, matching tracker grace periods for new members.  This is also
  what keeps :class:`~repro.core.policies.RankPolicy` well-behaved at
  bootstrap: all-zero scores tie, and the tie-shuffle preserves plain
  BitTorrent's rotation cadence.
* **Own threshold convention.**  Banning is configured as a *ratio*
  floor (``ban_ratio``, default 0.25), mapped into score space by
  :meth:`effective_delta` as (r − 1)/(r + 1); e.g. ratio 0.25 → score
  −0.6.  The sweep's δ (a flow-difference threshold) is ignored — the
  false-ban measure evaluates each mechanism at its native operating
  point.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.core.engines.base import GraphAggregationEngine

__all__ = ["RatioCreditEngine"]

PeerId = Hashable


class RatioCreditEngine(GraphAggregationEngine):
    """Upload/download ratio credit with a configurable ban floor."""

    name = "ratio"
    bounds_closed = True  # pure leecher = −1, pure seeder = +1, exactly

    def __init__(self, ban_ratio: float = 0.25) -> None:
        super().__init__()
        if not 0.0 <= ban_ratio <= 1.0:
            raise ValueError(
                f"ban_ratio must be in [0, 1] (a floor below parity), got {ban_ratio}"
            )
        self.ban_ratio = float(ban_ratio)

    def _score(self, subject: PeerId) -> float:
        up = self._volume_out(subject)
        down = self._volume_in(subject)
        total = up + down
        if total <= 0.0:
            return 0.0  # bootstrap grace: no evidence is neutral, not NaN
        return (up - down) / total

    def effective_delta(self, delta: float) -> float:
        """The ban floor in score space: ratio r ↦ (r − 1)/(r + 1).

        ``delta`` (the sweep's flow-difference threshold) is ignored;
        this engine bans on its configured share-ratio floor.
        """
        r = self.ban_ratio
        return (r - 1.0) / (r + 1.0)

    def evidence_flows(self, subject: PeerId) -> Tuple[float, float]:
        """(total upload bytes, total download bytes) of ``subject``."""
        return self._volume_out(subject), self._volume_in(subject)

    def explain_components(self, subject: PeerId) -> Dict[str, object]:
        up = self._volume_out(subject)
        down = self._volume_in(subject)
        score = self._score(subject)
        return {
            "upload_bytes": up,
            "download_bytes": down,
            "share_ratio": (up / down) if down > 0 else None,
            "ban_ratio": self.ban_ratio,
            "ban_score_threshold": self.effective_delta(0.0),
            "score": score,
        }
