"""The mechanism zoo: pluggable reputation engines (DESIGN.md §15).

Engines are referenced by name everywhere outside this package —
``ScenarioConfig.engine``, ``repro faults --engine``, pickled sweep
tasks — and instantiated per node via :func:`make_engine`.  The name
``"bartercast"`` is special: it is the default, and nodes built with it
skip engine dispatch entirely so the paper's mechanism runs on the
byte-identical native path.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.core.engines.base import GraphAggregationEngine, ReputationEngine
from repro.core.engines.bartercast import BarterCastEngine
from repro.core.engines.gossip import DifferentialGossipEngine
from repro.core.engines.ratio import RatioCreditEngine

__all__ = [
    "ReputationEngine",
    "GraphAggregationEngine",
    "BarterCastEngine",
    "DifferentialGossipEngine",
    "RatioCreditEngine",
    "ENGINES",
    "ENGINE_NAMES",
    "make_engine",
]

#: name -> zero-argument factory (engines with knobs expose them here as
#: constructor defaults; sweeps vary mechanisms, not per-engine tuning).
ENGINES: Dict[str, Callable[[], ReputationEngine]] = {
    "bartercast": BarterCastEngine,
    "gossip": DifferentialGossipEngine,
    "ratio": RatioCreditEngine,
}

#: Registry order, for CLI help and report sections.
ENGINE_NAMES: Tuple[str, ...] = tuple(ENGINES)


def make_engine(name: str) -> ReputationEngine:
    """Instantiate the engine registered under ``name`` (unattached)."""
    try:
        factory = ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; known engines: {', '.join(ENGINES)}"
        ) from None
    return factory()
