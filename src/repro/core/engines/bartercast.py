"""The paper's mechanism as an engine: a facade over the native node path.

The maxflow machinery — dirty-set caches, columnar stamp cache, batched
two-hop kernel — lives in :class:`~repro.core.node.BarterCastNode`
itself and predates the engine interface.  Rather than duplicate it (or
regress its performance behind a generic memo), this engine forwards to
the node's ``_native_*`` methods.  Forwarding to the *native* entry
points, not the public ones, matters: a standalone ``BarterCastEngine``
can be attached to a node whose own dispatch is a rival engine (the
multi-mechanism ``repro explain`` path does exactly this), and calling
the public methods there would recurse into the rival.

The default node (``engine="bartercast"``) does not construct this class
at all — its dispatch slot stays ``None`` and the public methods fall
straight through to the native bodies, keeping the default path
byte-identical to a build without the engines package.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

from repro.core.engines.base import ReputationEngine

__all__ = ["BarterCastEngine"]

PeerId = Hashable


class BarterCastEngine(ReputationEngine):
    """BarterCast: ``arctan(maxflow(j→i) − maxflow(i→j))`` (Equation 1)."""

    name = "bartercast"
    bounds_closed = False  # arctan: the open interval (−1, 1)

    def reputation_of(self, peer: PeerId) -> float:
        return self.node._native_reputation_of(peer)

    def reputations_of(self, peers: Iterable[PeerId]) -> Dict[PeerId, float]:
        return self.node._native_reputations_of(peers)

    def rank_by_reputation(self, peers: Iterable[PeerId]) -> List[PeerId]:
        return self.node._native_rank_by_reputation(peers)

    def invalidate_cache(self) -> None:
        self.node._native_invalidate_cache()

    def evidence_flows(self, subject: PeerId) -> Tuple[float, float]:
        """(maxflow(subject→me), maxflow(me→subject)) in bytes."""
        metric = self.node.config.metric
        graph = self.node.graph
        me = self.node.peer_id
        inflow = metric.maxflow(graph, subject, me)
        outflow = metric.maxflow(graph, me, subject)
        return float(inflow), float(outflow)

    def explain_components(self, subject: PeerId) -> Dict[str, object]:
        inflow, outflow = self.evidence_flows(subject)
        metric = self.node.config.metric
        return {
            "inflow_maxflow_bytes": inflow,
            "outflow_maxflow_bytes": outflow,
            "net_bytes": inflow - outflow,
            "unit_bytes": metric.unit_bytes,
            "kernel": metric.kernel,
            "score": metric.scale(inflow - outflow),
        }
