"""Differential-gossip aggregation (Gupta & Singh, PAPERS.md).

Their mechanism estimates each peer's *net contribution* by aggregating
transfer reports that spread epidemically, discounting information by
how it was learned: a peer trusts its own interactions fully and
gossip-relayed reports less (the "differential" in differential gossip),
which converges toward the global average without flooding the network.

Mapped onto this codebase: the subjective transfer graph *is* the
aggregation state — first-hand edges (incident to the owner, written
from the private history) carry weight 1.0, and every other edge was
learned through BarterCast's gossip layer and carries ``gossip_weight``
(default 0.5).  Because the evidence arrives over the existing
message/channel layer, the fault knobs — loss, duplication, delay, churn
wipes — degrade this engine exactly as they degrade BarterCast, which is
the property the mechanism sweep needs for an apples-to-apples
comparison.  The score is the weighted net contribution pushed through
the same arctan scale as Equation 1 (shared ``unit_bytes``), so the two
arctan engines are threshold-comparable and the sweep's δ applies
unchanged.

Unlike maxflow, this is a *volume* aggregate: it has no path structure,
so a peer's reported uploads count even when no flow path to the owner
exists.  That is the design difference under test — aggregation recovers
coverage faster from sparse gossip but is trivially inflatable by a liar
(no bottleneck capacity), which the sweep's false-ban and inversion
measures expose.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.core.engines.base import GraphAggregationEngine

__all__ = ["DifferentialGossipEngine"]

PeerId = Hashable


class DifferentialGossipEngine(GraphAggregationEngine):
    """Power-aware gossip aggregation: weighted net contribution, arctan-scaled."""

    name = "gossip"
    bounds_closed = False  # arctan: the open interval (−1, 1)

    def __init__(self, gossip_weight: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= gossip_weight <= 1.0:
            raise ValueError(
                f"gossip_weight must be in [0, 1], got {gossip_weight}"
            )
        self.gossip_weight = float(gossip_weight)

    # ------------------------------------------------------------------
    def _weighted_volumes(self, subject: PeerId) -> Tuple[float, float]:
        """(weighted uploads, weighted downloads) of ``subject``.

        Edges incident to the owner are first-hand (weight 1.0); all
        others arrived via gossip (weight ``gossip_weight``).
        """
        graph = self.node.graph
        me = self.node.peer_id
        w = self.gossip_weight
        if not graph.has_node(subject):
            return 0.0, 0.0
        up = 0.0
        for dst, nbytes in graph.successors(subject).items():
            up += nbytes if dst == me else w * nbytes
        down = 0.0
        for src, nbytes in graph.predecessors(subject).items():
            down += nbytes if src == me else w * nbytes
        return up, down

    def _score(self, subject: PeerId) -> float:
        up, down = self._weighted_volumes(subject)
        return self.node.config.metric.scale(up - down)

    # ------------------------------------------------------------------
    def evidence_flows(self, subject: PeerId) -> Tuple[float, float]:
        """(weighted uploads, weighted downloads) of ``subject`` in bytes."""
        return self._weighted_volumes(subject)

    def explain_components(self, subject: PeerId) -> Dict[str, object]:
        up, down = self._weighted_volumes(subject)
        graph = self.node.graph
        me = self.node.peer_id
        first_up = float(graph.capacity(subject, me))
        first_down = float(graph.capacity(me, subject))
        return {
            "weighted_upload_bytes": up,
            "weighted_download_bytes": down,
            "net_bytes": up - down,
            "firsthand_upload_bytes": first_up,
            "firsthand_download_bytes": first_down,
            "gossip_weight": self.gossip_weight,
            "unit_bytes": self.node.config.metric.unit_bytes,
            "score": self.node.config.metric.scale(up - down),
        }
