"""BarterCast: the paper's primary contribution.

The pieces, bottom to top:

* :mod:`repro.core.history` — the tamper-proof *private history* ledger a
  peer keeps of its own transfers.
* :mod:`repro.core.messages` — BarterCast messages: a selection of the
  sender's private history (the ``Nh`` top uploaders to the sender plus the
  ``Nr`` most recently seen peers).
* :mod:`repro.core.sharedhistory` — the *subjective shared history*: the
  store of records received from other peers, with per-reporter claim
  tracking and supersede-by-timestamp semantics.
* :mod:`repro.core.reputation` — the arctan maxflow reputation metric
  ``R_i(j) = arctan(mf(j→i) − mf(i→j)) / (π/2)`` with pluggable maxflow
  kernels and an alternative linear metric for ablations.
* :mod:`repro.core.node` — :class:`~repro.core.node.BarterCastNode`, the
  per-peer agent combining all of the above with reputation caching.
* :mod:`repro.core.policies` — BitTorrent integration policies: *rank*
  (reputation-ordered optimistic unchoking) and *ban* (reputation
  threshold δ), plus the no-reputation baseline.
* :mod:`repro.core.adversary` — protocol-disobeying behaviours used in the
  Figure 3 experiments: peers that ignore the message protocol and peers
  that lie selfishly about their contribution.
"""

from repro.core.history import PrivateHistory, TransferTotals
from repro.core.messages import BarterCastMessage, HistoryRecord, select_records
from repro.core.sharedhistory import SubjectiveSharedHistory
from repro.core.reputation import (
    DEFAULT_UNIT_BYTES,
    MB,
    ReputationMetric,
    system_reputation,
)
from repro.core.node import BarterCastConfig, BarterCastNode
from repro.core.policies import BanPolicy, NoPolicy, RankPolicy, ReputationPolicy
from repro.core.adversary import HonestBehavior, Ignorer, MessageBehavior, SelfishLiar
from repro.core.whitewashing import (
    AdaptiveStrangerPenalty,
    StaticStrangerPenalty,
    StrangerPolicy,
    TrustedIdentities,
    is_stranger,
)

__all__ = [
    "PrivateHistory",
    "TransferTotals",
    "BarterCastMessage",
    "HistoryRecord",
    "select_records",
    "SubjectiveSharedHistory",
    "ReputationMetric",
    "system_reputation",
    "MB",
    "DEFAULT_UNIT_BYTES",
    "BarterCastConfig",
    "BarterCastNode",
    "ReputationPolicy",
    "NoPolicy",
    "RankPolicy",
    "BanPolicy",
    "MessageBehavior",
    "HonestBehavior",
    "Ignorer",
    "SelfishLiar",
    "StrangerPolicy",
    "TrustedIdentities",
    "StaticStrangerPenalty",
    "AdaptiveStrangerPenalty",
    "is_stranger",
]
