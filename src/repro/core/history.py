"""The private history ledger.

Each peer records, per counterparty, the total bytes it has uploaded to and
downloaded from that counterparty, plus the last time the counterparty was
seen.  The paper's security argument rests on this ledger being local and
unforgeable-by-others: the maxflow toward the evaluating peer *i* is always
constrained by *i*'s incoming edges, and those come exclusively from *i*'s
own private history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Tuple

__all__ = ["TransferTotals", "PrivateHistory"]

PeerId = Hashable


@dataclass
class TransferTotals:
    """Aggregated transfer totals with one counterparty.

    Attributes
    ----------
    uploaded:
        Total bytes the ledger owner uploaded *to* the counterparty.
    downloaded:
        Total bytes the ledger owner downloaded *from* the counterparty.
    last_seen:
        Simulated time (seconds) of the most recent interaction.
    """

    uploaded: float = 0.0
    downloaded: float = 0.0
    last_seen: float = 0.0

    @property
    def net(self) -> float:
        """Uploaded minus downloaded (positive: owner gave more)."""
        return self.uploaded - self.downloaded


class PrivateHistory:
    """A peer's own record of its data exchanges.

    Mutations go through :meth:`record_upload` / :meth:`record_download` /
    :meth:`touch`; reads expose per-peer totals and the two selections the
    BarterCast message protocol needs (top uploaders to the owner, most
    recently seen peers).

    Parameters
    ----------
    owner:
        Identifier of the peer this ledger belongs to.
    """

    def __init__(self, owner: PeerId) -> None:
        self.owner = owner
        self._records: Dict[PeerId, TransferTotals] = {}
        self._total_up = 0.0
        self._total_down = 0.0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def record_upload(self, peer: PeerId, nbytes: float, now: float) -> None:
        """Record that the owner uploaded ``nbytes`` to ``peer`` at ``now``."""
        self._validate(peer, nbytes)
        rec = self._get_or_create(peer)
        rec.uploaded += float(nbytes)
        rec.last_seen = max(rec.last_seen, float(now))
        self._total_up += float(nbytes)

    def record_download(self, peer: PeerId, nbytes: float, now: float) -> None:
        """Record that the owner downloaded ``nbytes`` from ``peer`` at ``now``."""
        self._validate(peer, nbytes)
        rec = self._get_or_create(peer)
        rec.downloaded += float(nbytes)
        rec.last_seen = max(rec.last_seen, float(now))
        self._total_down += float(nbytes)

    def touch(self, peer: PeerId, now: float) -> None:
        """Record an interaction with ``peer`` (e.g. a gossip exchange)
        without any transfer, so it counts as "recently seen"."""
        if peer == self.owner:
            raise ValueError("a peer cannot interact with itself")
        rec = self._get_or_create(peer)
        rec.last_seen = max(rec.last_seen, float(now))

    def _validate(self, peer: PeerId, nbytes: float) -> None:
        if peer == self.owner:
            raise ValueError("a peer cannot transfer data with itself")
        if nbytes < 0:
            raise ValueError(f"transfer size must be non-negative, got {nbytes}")

    def _get_or_create(self, peer: PeerId) -> TransferTotals:
        rec = self._records.get(peer)
        if rec is None:
            rec = TransferTotals()
            self._records[peer] = rec
        return rec

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, peer: PeerId) -> TransferTotals:
        """Totals with ``peer`` (zeros if never interacted).

        The returned object is a copy; mutating it does not affect the
        ledger.
        """
        rec = self._records.get(peer)
        if rec is None:
            return TransferTotals()
        return TransferTotals(rec.uploaded, rec.downloaded, rec.last_seen)

    def __contains__(self, peer: PeerId) -> bool:
        return peer in self._records

    def __len__(self) -> int:
        return len(self._records)

    def peers(self) -> Iterator[PeerId]:
        """Iterate over all counterparties."""
        return iter(self._records)

    def items(self) -> Iterator[Tuple[PeerId, TransferTotals]]:
        """Iterate over ``(peer, totals)`` pairs (live objects, do not mutate)."""
        return iter(self._records.items())

    @property
    def total_uploaded(self) -> float:
        """Total bytes uploaded to all counterparties."""
        return self._total_up

    @property
    def total_downloaded(self) -> float:
        """Total bytes downloaded from all counterparties."""
        return self._total_down

    @property
    def net_contribution(self) -> float:
        """Total uploaded minus total downloaded (the paper's x-axis in
        Figure 1(b), there measured on *real* behaviour)."""
        return self._total_up - self._total_down

    # ------------------------------------------------------------------
    # Message-protocol selections
    # ------------------------------------------------------------------
    def top_uploaders(self, n: int) -> List[PeerId]:
        """The ``n`` peers with the highest upload *to the owner*.

        Ties are broken deterministically by peer id representation so the
        protocol is reproducible across runs.
        """
        if n <= 0:
            return []
        ranked = sorted(
            self._records.items(), key=lambda kv: (-kv[1].downloaded, repr(kv[0]))
        )
        return [peer for peer, rec in ranked[:n] if rec.downloaded > 0]

    def most_recent(self, n: int) -> List[PeerId]:
        """The ``n`` most recently seen peers (newest first)."""
        if n <= 0:
            return []
        ranked = sorted(
            self._records.items(), key=lambda kv: (-kv[1].last_seen, repr(kv[0]))
        )
        return [peer for peer, _ in ranked[:n]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PrivateHistory owner={self.owner!r} peers={len(self._records)} "
            f"up={self._total_up:.0f} down={self._total_down:.0f}>"
        )
