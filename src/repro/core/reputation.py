"""The maxflow reputation metric.

Equation (1) of the paper::

    R_i(j) = arctan(maxflow(j, i) - maxflow(i, j)) / (pi / 2)

yielding a subjective reputation in (-1, 1): positive when *j* has (directly
or through at most one intermediary) provided more service toward *i* than
it consumed, negative in the opposite case, near zero for strangers and
newcomers.

Units
-----
The paper motivates arctan with "the difference between 0 and 100 MB is
more significant than the difference between 1000 MB and 1100 MB".  That
places the knee of the arctan near 100 MB: with ``unit_bytes = 100 MiB``
the metric maps 0 → 0.0, 100 MB → 0.5, 1000 MB → 0.94, 1100 MB → 0.94 —
exactly the paper's qualitative shape.  Applied to raw bytes the metric
would saturate at ±1 after a single piece and every ban threshold δ would
behave identically, erasing the Figure 2(c) differences the paper reports.
:class:`ReputationMetric` therefore exposes ``unit_bytes`` (default
``DEFAULT_UNIT_BYTES`` = 100 MiB) and divides the maxflow difference by it
before the arctan.

Kernels
-------
``kernel='two_hop'`` (default) uses the closed-form 2-hop maxflow that the
deployed BarterCast uses; ``'bounded'`` runs depth-limited Ford–Fulkerson
with configurable ``max_hops``; ``'exact'`` runs full Ford–Fulkerson.  The
path-length ablation bench compares them.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, Iterable, Literal, Optional

from repro.graph.batch import maxflow_two_hop_batch
from repro.graph.maxflow import (
    bounded_ford_fulkerson,
    ford_fulkerson,
    maxflow_two_hop,
)
from repro.graph.transfer_graph import TransferGraph

__all__ = ["MB", "DEFAULT_UNIT_BYTES", "ReputationMetric", "system_reputation"]

PeerId = Hashable
KernelName = Literal["two_hop", "bounded", "exact"]

#: One mebibyte in bytes.
MB = float(1024 * 1024)

#: Default scale of the arctan argument: 100 MiB (see module docstring).
DEFAULT_UNIT_BYTES = 100.0 * MB

_HALF_PI = math.pi / 2.0


class ReputationMetric:
    """Computes subjective reputations over a transfer graph.

    Parameters
    ----------
    unit_bytes:
        Scale divisor applied to the maxflow difference before the arctan
        (default 100 MiB; see module docstring).
    kernel:
        Which maxflow kernel to use: ``'two_hop'`` (closed form, default),
        ``'bounded'`` (depth-limited Ford–Fulkerson), or ``'exact'``.
    max_hops:
        Path-length bound for the ``'bounded'`` kernel (default 2).
    scaling:
        ``'arctan'`` (the paper's Equation 1) or ``'linear'``: a clipped
        linear ramp ``clip(diff / linear_range, -1, 1)`` used by the metric
        ablation to demonstrate why arctan is the better choice (a linear
        metric either saturates for newcomers or dwarfs modest contributors,
        depending on ``linear_range``).
    linear_range:
        Full-scale range (in units of ``unit_bytes``) of the linear ramp.

    Examples
    --------
    >>> g = TransferGraph()
    >>> g.add_transfer("j", "i", 100 * MB)
    >>> metric = ReputationMetric()
    >>> abs(metric.reputation(g, "i", "j") - 0.5) < 0.01
    True
    >>> metric.reputation(g, "j", "i") < 0
    True
    """

    def __init__(
        self,
        unit_bytes: float = DEFAULT_UNIT_BYTES,
        kernel: KernelName = "two_hop",
        max_hops: int = 2,
        scaling: Literal["arctan", "linear"] = "arctan",
        linear_range: float = 1000.0,
    ) -> None:
        if unit_bytes <= 0:
            raise ValueError(f"unit_bytes must be positive, got {unit_bytes}")
        if kernel not in ("two_hop", "bounded", "exact"):
            raise ValueError(f"unknown kernel {kernel!r}")
        if scaling not in ("arctan", "linear"):
            raise ValueError(f"unknown scaling {scaling!r}")
        if linear_range <= 0:
            raise ValueError(f"linear_range must be positive, got {linear_range}")
        self.unit_bytes = float(unit_bytes)
        self.kernel: KernelName = kernel
        self.max_hops = int(max_hops)
        self.scaling = scaling
        self.linear_range = float(linear_range)

    # ------------------------------------------------------------------
    def maxflow(self, graph: TransferGraph, source: PeerId, sink: PeerId) -> float:
        """Maxflow value (bytes) from ``source`` to ``sink`` per the kernel."""
        if self.kernel == "two_hop":
            return maxflow_two_hop(graph, source, sink).value
        if self.kernel == "bounded":
            return bounded_ford_fulkerson(
                graph, source, sink, max_hops=self.max_hops
            ).value
        return ford_fulkerson(graph, source, sink).value

    def maxflow_result(
        self,
        graph: TransferGraph,
        source: PeerId,
        sink: PeerId,
        record_paths: bool = False,
    ):
        """The full kernel result, optionally with the path decomposition.

        Used by the explain path (:mod:`repro.obs.explain`); the flow
        value is bit-identical to :meth:`maxflow` either way.
        """
        if self.kernel == "two_hop":
            return maxflow_two_hop(graph, source, sink, record_paths=record_paths)
        if self.kernel == "bounded":
            return bounded_ford_fulkerson(
                graph, source, sink, max_hops=self.max_hops, record_paths=record_paths
            )
        return ford_fulkerson(graph, source, sink, record_paths=record_paths)

    def reputation(self, graph: TransferGraph, i: PeerId, j: PeerId) -> float:
        """The subjective reputation ``R_i(j)`` of peer ``j`` at peer ``i``.

        ``i`` is the evaluating peer (the maxflow sink for service received),
        ``j`` the evaluated peer.
        """
        if i == j:
            raise ValueError("a peer has no reputation at itself")
        inflow = self.maxflow(graph, j, i)
        outflow = self.maxflow(graph, i, j)
        return self.scale(inflow - outflow)

    def reputation_batch(
        self, graph: TransferGraph, i: PeerId, targets: Iterable[PeerId]
    ) -> Dict[PeerId, float]:
        """``R_i(j)`` for every target ``j`` in one pass.

        For the default ``two_hop`` kernel this routes through
        :func:`~repro.graph.batch.maxflow_two_hop_batch`, hoisting the
        owner's neighbourhood lookups out of the per-target loop; results
        are bit-identical to per-target :meth:`reputation` calls.  The
        iterative kernels have no batched form and fall back to the scalar
        path.  ``i`` itself and duplicate targets are skipped.
        """
        if self.kernel == "two_hop":
            scale = self.scale
            return {
                j: scale(inflow - outflow)
                for j, (inflow, outflow) in maxflow_two_hop_batch(
                    graph, i, targets
                ).items()
            }
        out: Dict[PeerId, float] = {}
        for j in targets:
            if j != i and j not in out:
                out[j] = self.reputation(graph, i, j)
        return out

    @property
    def supports_dirty_invalidation(self) -> bool:
        """Whether 2-hop dirty-set cache invalidation is *exact* for this
        metric.

        True only for the ``two_hop`` kernel, where ``R_i(j)`` depends
        exclusively on edges incident to ``i`` or ``j`` (see DESIGN.md,
        "Cache discipline").  The iterative kernels can route flow through
        longer paths, so their consumers must fall back to full
        invalidation on any edge change.
        """
        return self.kernel == "two_hop"

    def scale(self, diff_bytes: float) -> float:
        """Map a byte-valued maxflow difference into (-1, 1)."""
        x = diff_bytes / self.unit_bytes
        if self.scaling == "arctan":
            return math.atan(x) / _HALF_PI
        # linear ablation variant
        return max(-1.0, min(1.0, x / self.linear_range))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReputationMetric kernel={self.kernel} unit={self.unit_bytes:.0f}B "
            f"scaling={self.scaling}>"
        )


def system_reputation(
    reputations: Dict[PeerId, Dict[PeerId, float]], peer: PeerId
) -> float:
    """Equation (2): the average reputation of ``peer`` over all other peers.

    Parameters
    ----------
    reputations:
        Nested mapping ``{evaluator: {evaluated: R_evaluator(evaluated)}}``.
    peer:
        The peer whose system reputation is requested.

    Returns
    -------
    float
        ``mean(R_j(peer) for j != peer)`` over evaluators that have an
        opinion, or 0.0 if none do.
    """
    values = [
        row[peer]
        for evaluator, row in reputations.items()
        if evaluator != peer and peer in row
    ]
    if not values:
        return 0.0
    return sum(values) / len(values)
