"""BarterCast messages and the record-selection rule.

A BarterCast message is a selection of the sender's private history.  The
paper's rule: peer *i* selects the records of the ``Nh`` peers with the
highest upload to *i* as well as the ``Nr`` peers most recently seen by *i*
(the two selections are deduplicated; the paper uses ``Nh = Nr = 10``).

Each :class:`HistoryRecord` is a *claim by the sender* about one ordered
pair: "I uploaded ``uploaded`` bytes to ``counterparty`` and downloaded
``downloaded`` bytes from it, in total".  Records carry running totals, not
deltas, so a newer record from the same reporter about the same
counterparty supersedes the older one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Sequence

from repro.core.history import PrivateHistory

__all__ = ["HistoryRecord", "BarterCastMessage", "select_records"]

PeerId = Hashable


@dataclass(frozen=True, slots=True)
class HistoryRecord:
    """One private-history entry as carried in a message.

    Attributes
    ----------
    counterparty:
        The peer the sender exchanged data with.
    uploaded:
        Total bytes the *sender claims* to have uploaded to ``counterparty``.
    downloaded:
        Total bytes the *sender claims* to have downloaded from it.
    """

    counterparty: PeerId
    uploaded: float
    downloaded: float

    def is_sane(self) -> bool:
        """Basic well-formedness: finite, non-negative totals."""
        return (
            self.uploaded >= 0.0
            and self.downloaded >= 0.0
            and self.uploaded == self.uploaded  # not NaN
            and self.downloaded == self.downloaded
            and self.uploaded != float("inf")
            and self.downloaded != float("inf")
        )


@dataclass(frozen=True, slots=True)
class BarterCastMessage:
    """A BarterCast gossip message.

    Attributes
    ----------
    sender:
        The reporting peer; every record is a claim by this peer.
    created_at:
        Simulated creation time; receivers use it for supersede-by-
        timestamp semantics.
    records:
        The selected history records.
    msg_id:
        Message identity shared by provenance and dissemination tracing.
        ``None`` until the sender stamps one
        (:meth:`~repro.core.node.BarterCastNode.create_message` always
        uses ``(sender, sequence)``); receivers treat it as opaque and
        never use it for supersede decisions — only lineage records and
        dissemination DAGs carry it.
    parent_id:
        Causal envelope: the ``msg_id`` of the sender's previous message
        (``None`` for the sender's first message).  Chains a sender's
        messages into a per-origin causal spine; receivers ignore it.
    hops:
        Causal envelope: how many gossip hops the carried claims have
        travelled.  BarterCast never forwards received claims, so every
        message on the wire is firsthand (``hops == 1``); the field
        exists so forwarding overlays (and the planned daemon) share the
        same envelope.  Receivers ignore it for supersede decisions.
    """

    sender: PeerId
    created_at: float
    records: tuple = field(default_factory=tuple)
    msg_id: Hashable = None
    parent_id: Hashable = None
    hops: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "records", tuple(self.records))

    @property
    def num_records(self) -> int:
        """Number of records carried."""
        return len(self.records)

    def sane_records(self) -> List[HistoryRecord]:
        """The subset of records that pass basic validation.

        Receivers drop malformed records (negative or non-finite totals,
        self-referential counterparties) rather than rejecting the whole
        message, mirroring the defensive parsing of the deployed client.
        """
        return [
            r
            for r in self.records
            if isinstance(r, HistoryRecord)
            and r.is_sane()
            and r.counterparty != self.sender
        ]


def select_records(
    history: PrivateHistory,
    n_highest: int,
    n_recent: int,
) -> List[HistoryRecord]:
    """Apply the paper's selection rule to a private history.

    Returns records for the union of the ``n_highest`` top uploaders to the
    owner and the ``n_recent`` most recently seen peers, preserving the
    top-uploader-first order and deduplicating.
    """
    chosen: List[PeerId] = []
    seen = set()
    for peer in history.top_uploaders(n_highest):
        if peer not in seen:
            seen.add(peer)
            chosen.append(peer)
    for peer in history.most_recent(n_recent):
        if peer not in seen:
            seen.add(peer)
            chosen.append(peer)
    records = []
    for peer in chosen:
        totals = history.get(peer)
        records.append(
            HistoryRecord(
                counterparty=peer,
                uploaded=totals.uploaded,
                downloaded=totals.downloaded,
            )
        )
    return records


def make_message(
    history: PrivateHistory,
    now: float,
    n_highest: int,
    n_recent: int,
) -> BarterCastMessage:
    """Build an honest BarterCast message from ``history`` at time ``now``."""
    return BarterCastMessage(
        sender=history.owner,
        created_at=now,
        records=tuple(select_records(history, n_highest, n_recent)),
    )
