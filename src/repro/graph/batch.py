"""Batched 2-hop maxflow: all of one peer's candidates in a single pass.

The rank/ban policies evaluate ``R_i(j)`` for every unchoke candidate *j*
every choke round.  The scalar kernel (:func:`~repro.graph.maxflow
.maxflow_two_hop`) re-fetches the owner's in/out neighbourhoods, re-checks
node membership, and allocates a :class:`~repro.graph.maxflow.FlowResult`
for each of the ``2 * len(targets)`` flow queries.  This module hoists all
of that out of the per-target loop: the owner's neighbourhood views, their
sizes, and their bound ``.get`` methods are looked up once and reused for
the whole batch.

Bit-identical guarantee
-----------------------
:func:`maxflow_two_hop_batch` mirrors the scalar kernel exactly — the same
"scan the smaller neighbourhood" branch choice and the same accumulation
order (insertion order of the underlying adjacency dicts) — so a batched
reputation equals the scalar one *bitwise*, not just approximately.  The
property tests in ``tests/test_reputation_cache.py`` pin this.

Columnar dispatch: when the graph is a :class:`~repro.graph.columnar
.ColumnarTransferGraph`, large batches are routed to the vectorized array
kernel (:func:`~repro.graph.columnar.two_hop_batch_arrays`), which is
bit-identical by construction (same branch choices, same summation order —
see that module's docstring).  Small batches — a handful of cache misses
per choke round — go to the row-direct loop
(:func:`~repro.graph.columnar.two_hop_batch_rows`) instead: the array
kernel's fixed numpy overhead dominates at that size, and skipping it also
avoids rebuilding a structurally-stale CSR for a few lookups.  The generic
dict loop below still runs unmodified on either backend (the columnar
graph's ``successors``/``predecessors`` return snapshot dicts in the same
iteration order); it remains the oracle the columnar twins are pinned to.
"""

from __future__ import annotations

import time as _time
from typing import Dict, Hashable, Iterable, Tuple

from repro.graph.columnar import (
    ARRAY_MIN_TARGETS,
    ColumnarTransferGraph,
    two_hop_batch_arrays,
    two_hop_batch_rows,
)
from repro.graph.maxflow import KERNEL_INVOCATIONS, _two_hop_paths
from repro.graph.transfer_graph import TransferGraph
from repro.obs import profile as _profile

__all__ = ["maxflow_two_hop_batch"]

PeerId = Hashable

KERNEL_INVOCATIONS.setdefault("maxflow_two_hop_batch", 0)
KERNEL_INVOCATIONS.setdefault("maxflow_two_hop_batch_targets", 0)
KERNEL_INVOCATIONS.setdefault("maxflow_two_hop_batch_columnar", 0)
KERNEL_INVOCATIONS.setdefault("maxflow_two_hop_batch_rows", 0)


def maxflow_two_hop_batch(
    graph: TransferGraph,
    owner: PeerId,
    targets: Iterable[PeerId],
    record_paths: bool = False,
) -> Dict[PeerId, Tuple]:
    """2-hop maxflows between ``owner`` and every target, one graph pass each.

    Parameters
    ----------
    graph:
        The subjective transfer graph of ``owner``.
    owner:
        The evaluating peer ``i`` (maxflow endpoint for both directions).
    targets:
        Candidate peers ``j``; duplicates and ``owner`` itself are skipped.
    record_paths:
        When True, each entry additionally carries the exact 2-hop path
        decompositions of both directions (the explain path; the online
        flag-off loops below are untouched).

    Returns
    -------
    dict
        ``{j: (inflow, outflow)}`` where ``inflow = maxflow2(j -> owner)``
        (service received, directly or via one intermediary) and
        ``outflow = maxflow2(owner -> j)`` (service provided).  Each value
        is bit-identical to the corresponding scalar
        :func:`~repro.graph.maxflow.maxflow_two_hop` call.  With
        ``record_paths`` the entries are ``(inflow, outflow, in_paths,
        out_paths)`` with tuples of
        :class:`~repro.graph.maxflow.FlowPath`; the flow values stay
        bit-identical (the recording twin mirrors the accumulation
        order).
    """
    prof = _profile.ACTIVE
    if prof is None:
        return _two_hop_batch_impl(graph, owner, targets, record_paths, None)
    t0 = _time.perf_counter()
    try:
        return _two_hop_batch_impl(graph, owner, targets, record_paths, prof)
    finally:
        prof.observe_kernel("maxflow_two_hop_batch", _time.perf_counter() - t0)


def _two_hop_batch_impl(
    graph: TransferGraph,
    owner: PeerId,
    targets: Iterable[PeerId],
    record_paths: bool,
    prof,
) -> Dict[PeerId, Tuple]:
    results: Dict[PeerId, Tuple] = {}
    KERNEL_INVOCATIONS["maxflow_two_hop_batch"] += 1
    if not graph.has_node(owner):
        empty = (0.0, 0.0, (), ()) if record_paths else (0.0, 0.0)
        for j in targets:
            if j != owner:
                results[j] = empty
        return results
    if record_paths:
        for j in targets:
            if j == owner or j in results:
                continue
            if not graph.has_node(j):
                results[j] = (0.0, 0.0, (), ())
                continue
            inflow, in_paths = _two_hop_paths(graph, j, owner)
            outflow, out_paths = _two_hop_paths(graph, owner, j)
            results[j] = (inflow, outflow, in_paths, out_paths)
        KERNEL_INVOCATIONS["maxflow_two_hop_batch_targets"] += len(results)
        return results

    if isinstance(graph, ColumnarTransferGraph):
        uniq = [j for j in dict.fromkeys(targets) if j != owner]
        # A stale CSR costs O(E) to rebuild while the dict-view loop costs
        # O(degree) per target, so rebuilding only pays off when the batch
        # is a sizable fraction of the edge count.  A fresh CSR is free to
        # reuse — bulk-loaded graphs and repeated cold sweeps take this
        # branch (see ColumnarTransferGraph.build_csr).
        if graph.csr_fresh or (
            len(uniq) >= ARRAY_MIN_TARGETS
            and len(uniq) * 128 >= graph.num_edges
        ):
            KERNEL_INVOCATIONS["maxflow_two_hop_batch_columnar"] += 1
            if prof is None:
                results = two_hop_batch_arrays(graph, owner, uniq)
            else:
                t0 = _time.perf_counter()
                results = two_hop_batch_arrays(graph, owner, uniq)
                prof.observe_kernel(
                    "two_hop_batch_arrays", _time.perf_counter() - t0
                )
        else:
            KERNEL_INVOCATIONS["maxflow_two_hop_batch_rows"] += 1
            if prof is None:
                results = two_hop_batch_rows(graph, owner, uniq)
            else:
                t0 = _time.perf_counter()
                results = two_hop_batch_rows(graph, owner, uniq)
                prof.observe_kernel(
                    "two_hop_batch_rows", _time.perf_counter() - t0
                )
        KERNEL_INVOCATIONS["maxflow_two_hop_batch_targets"] += len(results)
        return results

    out_i = graph.successors(owner)
    in_i = graph.predecessors(owner)
    len_out_i = len(out_i)
    len_in_i = len(in_i)
    out_i_get = out_i.get
    in_i_get = in_i.get
    successors = graph.successors
    predecessors = graph.predecessors
    has_node = graph.has_node

    for j in targets:
        if j == owner or j in results:
            continue
        if not has_node(j):
            results[j] = (0.0, 0.0)
            continue

        # inflow = maxflow2(j -> owner): direct edge plus, per intermediate
        # v, min(c(j, v), c(v, owner)), scanning the smaller side.
        out_j = successors(j)
        inflow = out_j.get(owner, 0.0)
        if len(out_j) <= len_in_i:
            for v, c_sv in out_j.items():
                if v == owner:
                    continue
                c_vt = in_i_get(v)
                if c_vt:
                    inflow += min(c_sv, c_vt)
        else:
            for v, c_vt in in_i.items():
                if v == j:
                    continue
                c_sv = out_j.get(v)
                if c_sv:
                    inflow += min(c_sv, c_vt)

        # outflow = maxflow2(owner -> j), same shape with roles swapped.
        in_j = predecessors(j)
        outflow = out_i_get(j, 0.0)
        if len_out_i <= len(in_j):
            for v, c_sv in out_i.items():
                if v == j:
                    continue
                c_vt = in_j.get(v)
                if c_vt:
                    outflow += min(c_sv, c_vt)
        else:
            for v, c_vt in in_j.items():
                if v == owner:
                    continue
                c_sv = out_i_get(v)
                if c_sv:
                    outflow += min(c_sv, c_vt)

        results[j] = (inflow, outflow)
    KERNEL_INVOCATIONS["maxflow_two_hop_batch_targets"] += len(results)
    return results
