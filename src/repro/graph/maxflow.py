"""Maxflow kernels.

Three implementations of maximum flow over a :class:`~repro.graph
.transfer_graph.TransferGraph`, all taking edge weights (aggregated bytes)
as capacities:

``ford_fulkerson``
    The paper's Algorithm 1: classic Ford–Fulkerson with depth-first
    augmenting-path search on the residual network.  Exact maximum flow.

``bounded_ford_fulkerson``
    Ford–Fulkerson where the DFS only considers augmenting paths of at most
    ``max_hops`` edges.  With ``max_hops=2`` this is the computation the
    paper describes ("our implementation only regards paths with a maximum
    length of two").

``maxflow_two_hop``
    Closed form for the 2-hop bounded flow::

        maxflow2(s, t) = c(s, t) + sum over v != s, t of min(c(s, v), c(v, t))

    Correctness argument: every augmenting path of length <= 2 is either the
    direct edge ``s->t`` or ``s->v->t`` for a distinct intermediate ``v``.
    Distinct 2-hop paths share no edges, and residual *reverse* edges can
    never participate: a reverse edge into ``s`` or out of ``t`` cannot lie
    on a simple s->t path, and a reverse edge ``s->v`` (created by flow
    ``v->s``) would require an earlier augmenting path ending in ``s``,
    which does not exist.  Hence the bounded problem decomposes per
    intermediate node and the closed form is exact.  This is O(min in/out
    degree) per query and is the kernel BarterCast uses online.

All kernels return a :class:`FlowResult` carrying the flow value and, for
the iterative kernels, the per-edge flow assignment for inspection.

Path attribution (``record_paths=True``)
----------------------------------------
Every kernel can additionally record the augmenting paths it applied as
:class:`FlowPath` entries (path nodes, routed flow, bottleneck edge,
per-edge residual capacities).  For the 2-hop kernels the decomposition
is *exact and unique*: the closed form routes ``c(s,t)`` on the direct
edge and ``min(c(s,v), c(v,t))`` through each intermediary ``v``, and
because distinct ≤2-hop paths are edge-disjoint (module docstring), the
recorded path flows always sum to the flow value and removing one
intermediary's path gives the exact flow of the graph without it —
leave-one-out deltas need no re-solve (:func:`leave_one_out_values`).
Recording is off by default and the flag-off code paths are untouched,
so the online kernels stay byte-identical to the seed implementation.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.graph.transfer_graph import TransferGraph
from repro.obs import profile as _profile

__all__ = [
    "FlowPath",
    "FlowResult",
    "ford_fulkerson",
    "bounded_ford_fulkerson",
    "maxflow_two_hop",
    "leave_one_out_values",
    "kernel_invocations",
    "snapshot_kernel_invocations",
    "kernel_invocations_delta",
    "merge_kernel_invocations",
    "reset_kernel_invocations",
]

PeerId = Hashable
Edge = Tuple[PeerId, PeerId]

#: Process-wide kernel invocation counters (always-on: one dict increment
#: per kernel call, negligible next to the kernel itself).  The
#: observability layer snapshots deltas around a run and publishes them as
#: ``rep.kernel.*`` gauges; :mod:`repro.graph.batch` registers its own key
#: here too.
KERNEL_INVOCATIONS: Dict[str, int] = {
    "ford_fulkerson": 0,
    "bounded_ford_fulkerson": 0,
    "maxflow_two_hop": 0,
}


def kernel_invocations() -> Dict[str, int]:
    """A copy of the cumulative per-kernel invocation counters."""
    return dict(KERNEL_INVOCATIONS)


def snapshot_kernel_invocations() -> Dict[str, int]:
    """An immutable-by-copy snapshot of the counters, for later deltas.

    Pair with :func:`kernel_invocations_delta` to attribute kernel calls
    to one section of work (a simulation run, a sweep task) without
    resetting the process-wide totals.
    """
    return dict(KERNEL_INVOCATIONS)


def kernel_invocations_delta(baseline: Mapping[str, int]) -> Dict[str, int]:
    """Per-kernel calls since ``baseline`` (a prior snapshot).

    Kernels registered after the snapshot (e.g. the batch kernel key on
    first use) count from zero.  Only non-zero deltas are returned.
    """
    return {
        kernel: count - baseline.get(kernel, 0)
        for kernel, count in KERNEL_INVOCATIONS.items()
        if count - baseline.get(kernel, 0)
    }


def merge_kernel_invocations(delta: Mapping[str, int]) -> None:
    """Fold a delta from another process into this process's counters.

    The parallel sweep runner ships each worker's
    :func:`kernel_invocations_delta` back with its task result and merges
    it here, so the parent's counters stay truthful under multi-process
    fan-out.  Deltas must be non-negative.
    """
    for kernel, count in delta.items():
        if count < 0:
            raise ValueError(f"negative kernel delta for {kernel!r}: {count}")
        KERNEL_INVOCATIONS[kernel] = KERNEL_INVOCATIONS.get(kernel, 0) + count


def reset_kernel_invocations() -> None:
    """Zero every kernel invocation counter (tests/benchmarks only)."""
    for key in KERNEL_INVOCATIONS:
        KERNEL_INVOCATIONS[key] = 0


@dataclass(frozen=True)
class FlowPath:
    """One augmenting path of a recorded flow decomposition.

    Attributes
    ----------
    nodes:
        The path vertices, source first, sink last (``(s, t)`` for the
        direct edge, ``(s, v, t)`` for a 2-hop path via ``v``).
    flow:
        Bytes routed along this path.
    bottleneck:
        The capacity-limiting edge (the first edge attaining the path's
        bottleneck residual at selection time).
    residuals:
        Residual capacity of each path edge *after* this path's flow was
        routed (same order as the edges of ``nodes``); the bottleneck
        edge's entry is 0 up to float rounding.
    """

    nodes: Tuple[PeerId, ...]
    flow: float
    bottleneck: Edge
    residuals: Tuple[float, ...]

    @property
    def intermediaries(self) -> Tuple[PeerId, ...]:
        """The interior vertices (empty for a direct edge)."""
        return self.nodes[1:-1]

    def to_json(self) -> dict:
        """JSON-safe rendering for ``--export``."""
        return {
            "nodes": list(self.nodes),
            "flow": self.flow,
            "bottleneck": list(self.bottleneck),
            "residuals": list(self.residuals),
        }


@dataclass
class FlowResult:
    """Outcome of a maxflow computation.

    Attributes
    ----------
    value:
        The maximum flow from source to sink (bytes).
    source, sink:
        The query endpoints.
    flows:
        Per-edge flow assignment ``{(i, j): f}`` with ``f > 0``; empty for
        the closed-form kernel (which never materializes flows).
    augmenting_paths:
        Number of augmenting paths applied (0 for the closed form).
    paths:
        The recorded path decomposition; empty unless the kernel was
        called with ``record_paths=True``.  For ≤2-hop kernels the path
        flows sum to ``value`` exactly (see module docstring).
    """

    value: float
    source: PeerId
    sink: PeerId
    flows: Dict[Edge, float] = field(default_factory=dict)
    augmenting_paths: int = 0
    paths: Tuple[FlowPath, ...] = ()

    def __float__(self) -> float:
        return self.value


def leave_one_out_values(result: FlowResult) -> Dict[PeerId, float]:
    """Flow value without each intermediary, from recorded paths alone.

    Returns ``{v: flow value if v were removed}`` for every interior
    vertex of every recorded path.  No re-solve happens: each
    intermediary's contribution is the sum of the flows of the paths
    passing through it.  For ≤2-hop decompositions this is **exact** —
    distinct paths are edge-disjoint, so deleting ``v`` removes exactly
    its own paths and frees no capacity elsewhere.  For longer-hop
    results (``ford_fulkerson`` with ``record_paths=True``) removing a
    vertex may allow re-routing, so the returned value is only a lower
    bound on the true flow without ``v``.

    Raises
    ------
    ValueError
        If ``result`` carries no recorded paths but has nonzero value
        (i.e. the kernel was not asked to record).
    """
    if not result.paths and result.value != 0.0:
        raise ValueError("FlowResult has no recorded paths (record_paths=False?)")
    through: Dict[PeerId, float] = {}
    for path in result.paths:
        for v in path.nodes[1:-1]:
            through[v] = through.get(v, 0.0) + path.flow
    return {v: result.value - f for v, f in through.items()}


class _Residual:
    """Residual network for Ford–Fulkerson.

    Stores residual capacities ``r[i][j]`` starting from the original
    capacities; pushing flow ``f`` on ``(i, j)`` decrements ``r[i][j]`` and
    increments ``r[j][i]`` (lines 8–9 of the paper's Algorithm 1).
    """

    def __init__(self, graph: TransferGraph) -> None:
        self.r: Dict[PeerId, Dict[PeerId, float]] = {}
        for i, j, w in graph.edges():
            self.r.setdefault(i, {})[j] = self.r.get(i, {}).get(j, 0.0) + w
            self.r.setdefault(j, {}).setdefault(i, 0.0)

    def push(self, path: List[PeerId], amount: float) -> None:
        for a, b in zip(path, path[1:]):
            self.r[a][b] -= amount
            self.r[b][a] = self.r[b].get(a, 0.0) + amount

    def bottleneck(self, path: List[PeerId]) -> float:
        return min(self.r[a][b] for a, b in zip(path, path[1:]))

    def find_path_dfs(
        self, source: PeerId, sink: PeerId, max_hops: Optional[int], eps: float
    ) -> Optional[List[PeerId]]:
        """Depth-first search for an augmenting path with residual > eps.

        ``max_hops`` limits the number of edges on the path (None = no
        limit).  Iterative DFS to avoid recursion limits on long chains.
        """
        if source not in self.r:
            return None
        # Stack of (node, path_so_far); visited set prevents cycles.
        stack: List[Tuple[PeerId, List[PeerId]]] = [(source, [source])]
        visited = {source}
        while stack:
            node, path = stack.pop()
            if max_hops is not None and len(path) - 1 >= max_hops:
                continue
            for nbr, cap in self.r.get(node, {}).items():
                if cap <= eps or nbr in visited:
                    continue
                new_path = path + [nbr]
                if nbr == sink:
                    return new_path
                visited.add(nbr)
                stack.append((nbr, new_path))
        return None


def _run_ford_fulkerson(
    graph: TransferGraph,
    source: PeerId,
    sink: PeerId,
    max_hops: Optional[int],
    eps: float,
    record_paths: bool = False,
) -> FlowResult:
    if source == sink:
        raise ValueError("source and sink must differ")
    result = FlowResult(value=0.0, source=source, sink=sink)
    if not graph.has_node(source) or not graph.has_node(sink):
        return result
    residual = _Residual(graph)
    flows: Dict[Edge, float] = {}
    recorded: List[FlowPath] = []
    while True:
        path = residual.find_path_dfs(source, sink, max_hops, eps)
        if path is None:
            break
        amount = residual.bottleneck(path)
        residual.push(path, amount)
        if record_paths:
            edges = list(zip(path, path[1:]))
            after = tuple(residual.r[a][b] for a, b in edges)
            # First edge whose post-push residual hit (near) zero is the
            # bottleneck that limited this augmentation.
            bottleneck = edges[min(range(len(after)), key=after.__getitem__)]
            recorded.append(
                FlowPath(
                    nodes=tuple(path),
                    flow=amount,
                    bottleneck=bottleneck,
                    residuals=after,
                )
            )
        for a, b in zip(path, path[1:]):
            # Net flow bookkeeping: pushing on (a, b) cancels flow on (b, a)
            # first (the "reverse direction" decrease of Algorithm 1 line 9).
            reverse = flows.get((b, a), 0.0)
            if reverse >= amount:
                flows[(b, a)] = reverse - amount
                if flows[(b, a)] == 0.0:
                    del flows[(b, a)]
            else:
                if reverse > 0:
                    del flows[(b, a)]
                flows[(a, b)] = flows.get((a, b), 0.0) + amount - reverse
        result.value += amount
        result.augmenting_paths += 1
    result.flows = flows
    if record_paths:
        result.paths = tuple(recorded)
    return result


def ford_fulkerson(
    graph: TransferGraph,
    source: PeerId,
    sink: PeerId,
    *,
    eps: float = 1e-9,
    record_paths: bool = False,
) -> FlowResult:
    """Exact maximum flow via Ford–Fulkerson with DFS path search.

    This is Algorithm 1 of the paper.  ``eps`` is the minimum residual
    capacity an edge must have to be traversed; with byte-valued capacities
    the default is effectively "any positive capacity".

    ``record_paths`` attaches the applied augmenting paths to the result;
    note that for unbounded hops the decomposition is not unique and
    leave-one-out deltas derived from it are only lower bounds.

    Complexity: O(E * f / eps) in pathological real-valued cases, but
    transfer graphs have integral byte weights in practice and the DFS
    terminates quickly on the small local graphs BarterCast builds.
    """
    KERNEL_INVOCATIONS["ford_fulkerson"] += 1
    prof = _profile.ACTIVE
    if prof is None:
        return _run_ford_fulkerson(
            graph, source, sink, max_hops=None, eps=eps, record_paths=record_paths
        )
    t0 = _time.perf_counter()
    try:
        return _run_ford_fulkerson(
            graph, source, sink, max_hops=None, eps=eps, record_paths=record_paths
        )
    finally:
        prof.observe_kernel("ford_fulkerson", _time.perf_counter() - t0)


def bounded_ford_fulkerson(
    graph: TransferGraph,
    source: PeerId,
    sink: PeerId,
    *,
    max_hops: int = 2,
    eps: float = 1e-9,
    record_paths: bool = False,
) -> FlowResult:
    """Maximum flow over augmenting paths of at most ``max_hops`` edges.

    With ``max_hops=2`` this matches the deployed BarterCast computation;
    larger bounds trade accuracy against cost (see the path-length ablation
    bench).  Note that for ``max_hops >= 3`` the greedy path-limited
    Ford–Fulkerson is a heuristic — the length-bounded maxflow problem is
    NP-hard in general — but for ``max_hops <= 2`` it is exact (see module
    docstring).
    """
    if max_hops < 1:
        raise ValueError(f"max_hops must be >= 1, got {max_hops}")
    KERNEL_INVOCATIONS["bounded_ford_fulkerson"] += 1
    prof = _profile.ACTIVE
    if prof is None:
        return _run_ford_fulkerson(
            graph, source, sink, max_hops=max_hops, eps=eps, record_paths=record_paths
        )
    t0 = _time.perf_counter()
    try:
        return _run_ford_fulkerson(
            graph, source, sink, max_hops=max_hops, eps=eps, record_paths=record_paths
        )
    finally:
        prof.observe_kernel("bounded_ford_fulkerson", _time.perf_counter() - t0)


def maxflow_two_hop(
    graph: TransferGraph,
    source: PeerId,
    sink: PeerId,
    *,
    record_paths: bool = False,
) -> FlowResult:
    """Closed-form 2-hop bounded maxflow (BarterCast's online kernel).

    Evaluates ``c(s,t) + sum_v min(c(s,v), c(v,t))`` by scanning the smaller
    of the source's out-neighbourhood and the sink's in-neighbourhood.

    ``record_paths`` additionally returns the (unique, exact) 2-hop path
    decomposition; the flag-off fast path is untouched.
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    KERNEL_INVOCATIONS["maxflow_two_hop"] += 1
    prof = _profile.ACTIVE
    if prof is not None:
        t0 = _time.perf_counter()
        try:
            return _two_hop_impl(graph, source, sink, record_paths)
        finally:
            prof.observe_kernel("maxflow_two_hop", _time.perf_counter() - t0)
    return _two_hop_impl(graph, source, sink, record_paths)


def _two_hop_impl(
    graph: TransferGraph, source: PeerId, sink: PeerId, record_paths: bool
) -> FlowResult:
    if not graph.has_node(source) or not graph.has_node(sink):
        return FlowResult(value=0.0, source=source, sink=sink)
    if record_paths:
        total, paths = _two_hop_paths(graph, source, sink)
        return FlowResult(
            value=total,
            source=source,
            sink=sink,
            augmenting_paths=len(paths),
            paths=paths,
        )
    out_s = graph.successors(source)
    in_t = graph.predecessors(sink)
    total = out_s.get(sink, 0.0)
    # Scan the smaller neighbourhood for the intersection.
    if len(out_s) <= len(in_t):
        for v, c_sv in out_s.items():
            if v == sink:
                continue
            c_vt = in_t.get(v)
            if c_vt:
                total += min(c_sv, c_vt)
    else:
        for v, c_vt in in_t.items():
            if v == source:
                continue
            c_sv = out_s.get(v)
            if c_sv:
                total += min(c_sv, c_vt)
    return FlowResult(value=total, source=source, sink=sink)


def _two_hop_paths(
    graph: TransferGraph, source: PeerId, sink: PeerId
) -> Tuple[float, Tuple[FlowPath, ...]]:
    """The recording twin of the closed form: ``(value, paths)``.

    Mirrors the scalar kernel's branch choice and accumulation order
    exactly, so the recorded value is bit-identical to the flag-off call
    (floating-point addition order matters).  Shared by the scalar and
    batch kernels; callers maintain the invocation counters.
    """
    out_s = graph.successors(source)
    in_t = graph.predecessors(sink)
    paths: List[FlowPath] = []
    c_st = out_s.get(sink, 0.0)
    total = c_st
    if c_st:
        # The direct edge always routes its full capacity.
        paths.append(
            FlowPath(
                nodes=(source, sink),
                flow=c_st,
                bottleneck=(source, sink),
                residuals=(0.0,),
            )
        )
    if len(out_s) <= len(in_t):
        for v, c_sv in out_s.items():
            if v == sink:
                continue
            c_vt = in_t.get(v)
            if c_vt:
                f = min(c_sv, c_vt)
                total += f
                paths.append(
                    FlowPath(
                        nodes=(source, v, sink),
                        flow=f,
                        bottleneck=(source, v) if c_sv <= c_vt else (v, sink),
                        residuals=(c_sv - f, c_vt - f),
                    )
                )
    else:
        for v, c_vt in in_t.items():
            if v == source:
                continue
            c_sv = out_s.get(v)
            if c_sv:
                f = min(c_sv, c_vt)
                total += f
                paths.append(
                    FlowPath(
                        nodes=(source, v, sink),
                        flow=f,
                        bottleneck=(source, v) if c_sv <= c_vt else (v, sink),
                        residuals=(c_sv - f, c_vt - f),
                    )
                )
    return total, tuple(paths)
