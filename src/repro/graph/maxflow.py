"""Maxflow kernels.

Three implementations of maximum flow over a :class:`~repro.graph
.transfer_graph.TransferGraph`, all taking edge weights (aggregated bytes)
as capacities:

``ford_fulkerson``
    The paper's Algorithm 1: classic Ford–Fulkerson with depth-first
    augmenting-path search on the residual network.  Exact maximum flow.

``bounded_ford_fulkerson``
    Ford–Fulkerson where the DFS only considers augmenting paths of at most
    ``max_hops`` edges.  With ``max_hops=2`` this is the computation the
    paper describes ("our implementation only regards paths with a maximum
    length of two").

``maxflow_two_hop``
    Closed form for the 2-hop bounded flow::

        maxflow2(s, t) = c(s, t) + sum over v != s, t of min(c(s, v), c(v, t))

    Correctness argument: every augmenting path of length <= 2 is either the
    direct edge ``s->t`` or ``s->v->t`` for a distinct intermediate ``v``.
    Distinct 2-hop paths share no edges, and residual *reverse* edges can
    never participate: a reverse edge into ``s`` or out of ``t`` cannot lie
    on a simple s->t path, and a reverse edge ``s->v`` (created by flow
    ``v->s``) would require an earlier augmenting path ending in ``s``,
    which does not exist.  Hence the bounded problem decomposes per
    intermediate node and the closed form is exact.  This is O(min in/out
    degree) per query and is the kernel BarterCast uses online.

All kernels return a :class:`FlowResult` carrying the flow value and, for
the iterative kernels, the per-edge flow assignment for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.graph.transfer_graph import TransferGraph

__all__ = [
    "FlowResult",
    "ford_fulkerson",
    "bounded_ford_fulkerson",
    "maxflow_two_hop",
    "kernel_invocations",
    "snapshot_kernel_invocations",
    "kernel_invocations_delta",
    "merge_kernel_invocations",
    "reset_kernel_invocations",
]

PeerId = Hashable
Edge = Tuple[PeerId, PeerId]

#: Process-wide kernel invocation counters (always-on: one dict increment
#: per kernel call, negligible next to the kernel itself).  The
#: observability layer snapshots deltas around a run and publishes them as
#: ``rep.kernel.*`` gauges; :mod:`repro.graph.batch` registers its own key
#: here too.
KERNEL_INVOCATIONS: Dict[str, int] = {
    "ford_fulkerson": 0,
    "bounded_ford_fulkerson": 0,
    "maxflow_two_hop": 0,
}


def kernel_invocations() -> Dict[str, int]:
    """A copy of the cumulative per-kernel invocation counters."""
    return dict(KERNEL_INVOCATIONS)


def snapshot_kernel_invocations() -> Dict[str, int]:
    """An immutable-by-copy snapshot of the counters, for later deltas.

    Pair with :func:`kernel_invocations_delta` to attribute kernel calls
    to one section of work (a simulation run, a sweep task) without
    resetting the process-wide totals.
    """
    return dict(KERNEL_INVOCATIONS)


def kernel_invocations_delta(baseline: Mapping[str, int]) -> Dict[str, int]:
    """Per-kernel calls since ``baseline`` (a prior snapshot).

    Kernels registered after the snapshot (e.g. the batch kernel key on
    first use) count from zero.  Only non-zero deltas are returned.
    """
    return {
        kernel: count - baseline.get(kernel, 0)
        for kernel, count in KERNEL_INVOCATIONS.items()
        if count - baseline.get(kernel, 0)
    }


def merge_kernel_invocations(delta: Mapping[str, int]) -> None:
    """Fold a delta from another process into this process's counters.

    The parallel sweep runner ships each worker's
    :func:`kernel_invocations_delta` back with its task result and merges
    it here, so the parent's counters stay truthful under multi-process
    fan-out.  Deltas must be non-negative.
    """
    for kernel, count in delta.items():
        if count < 0:
            raise ValueError(f"negative kernel delta for {kernel!r}: {count}")
        KERNEL_INVOCATIONS[kernel] = KERNEL_INVOCATIONS.get(kernel, 0) + count


def reset_kernel_invocations() -> None:
    """Zero every kernel invocation counter (tests/benchmarks only)."""
    for key in KERNEL_INVOCATIONS:
        KERNEL_INVOCATIONS[key] = 0


@dataclass
class FlowResult:
    """Outcome of a maxflow computation.

    Attributes
    ----------
    value:
        The maximum flow from source to sink (bytes).
    source, sink:
        The query endpoints.
    flows:
        Per-edge flow assignment ``{(i, j): f}`` with ``f > 0``; empty for
        the closed-form kernel (which never materializes flows).
    augmenting_paths:
        Number of augmenting paths applied (0 for the closed form).
    """

    value: float
    source: PeerId
    sink: PeerId
    flows: Dict[Edge, float] = field(default_factory=dict)
    augmenting_paths: int = 0

    def __float__(self) -> float:
        return self.value


class _Residual:
    """Residual network for Ford–Fulkerson.

    Stores residual capacities ``r[i][j]`` starting from the original
    capacities; pushing flow ``f`` on ``(i, j)`` decrements ``r[i][j]`` and
    increments ``r[j][i]`` (lines 8–9 of the paper's Algorithm 1).
    """

    def __init__(self, graph: TransferGraph) -> None:
        self.r: Dict[PeerId, Dict[PeerId, float]] = {}
        for i, j, w in graph.edges():
            self.r.setdefault(i, {})[j] = self.r.get(i, {}).get(j, 0.0) + w
            self.r.setdefault(j, {}).setdefault(i, 0.0)

    def push(self, path: List[PeerId], amount: float) -> None:
        for a, b in zip(path, path[1:]):
            self.r[a][b] -= amount
            self.r[b][a] = self.r[b].get(a, 0.0) + amount

    def bottleneck(self, path: List[PeerId]) -> float:
        return min(self.r[a][b] for a, b in zip(path, path[1:]))

    def find_path_dfs(
        self, source: PeerId, sink: PeerId, max_hops: Optional[int], eps: float
    ) -> Optional[List[PeerId]]:
        """Depth-first search for an augmenting path with residual > eps.

        ``max_hops`` limits the number of edges on the path (None = no
        limit).  Iterative DFS to avoid recursion limits on long chains.
        """
        if source not in self.r:
            return None
        # Stack of (node, path_so_far); visited set prevents cycles.
        stack: List[Tuple[PeerId, List[PeerId]]] = [(source, [source])]
        visited = {source}
        while stack:
            node, path = stack.pop()
            if max_hops is not None and len(path) - 1 >= max_hops:
                continue
            for nbr, cap in self.r.get(node, {}).items():
                if cap <= eps or nbr in visited:
                    continue
                new_path = path + [nbr]
                if nbr == sink:
                    return new_path
                visited.add(nbr)
                stack.append((nbr, new_path))
        return None


def _run_ford_fulkerson(
    graph: TransferGraph,
    source: PeerId,
    sink: PeerId,
    max_hops: Optional[int],
    eps: float,
) -> FlowResult:
    if source == sink:
        raise ValueError("source and sink must differ")
    result = FlowResult(value=0.0, source=source, sink=sink)
    if not graph.has_node(source) or not graph.has_node(sink):
        return result
    residual = _Residual(graph)
    flows: Dict[Edge, float] = {}
    while True:
        path = residual.find_path_dfs(source, sink, max_hops, eps)
        if path is None:
            break
        amount = residual.bottleneck(path)
        residual.push(path, amount)
        for a, b in zip(path, path[1:]):
            # Net flow bookkeeping: pushing on (a, b) cancels flow on (b, a)
            # first (the "reverse direction" decrease of Algorithm 1 line 9).
            reverse = flows.get((b, a), 0.0)
            if reverse >= amount:
                flows[(b, a)] = reverse - amount
                if flows[(b, a)] == 0.0:
                    del flows[(b, a)]
            else:
                if reverse > 0:
                    del flows[(b, a)]
                flows[(a, b)] = flows.get((a, b), 0.0) + amount - reverse
        result.value += amount
        result.augmenting_paths += 1
    result.flows = flows
    return result


def ford_fulkerson(
    graph: TransferGraph, source: PeerId, sink: PeerId, *, eps: float = 1e-9
) -> FlowResult:
    """Exact maximum flow via Ford–Fulkerson with DFS path search.

    This is Algorithm 1 of the paper.  ``eps`` is the minimum residual
    capacity an edge must have to be traversed; with byte-valued capacities
    the default is effectively "any positive capacity".

    Complexity: O(E * f / eps) in pathological real-valued cases, but
    transfer graphs have integral byte weights in practice and the DFS
    terminates quickly on the small local graphs BarterCast builds.
    """
    KERNEL_INVOCATIONS["ford_fulkerson"] += 1
    return _run_ford_fulkerson(graph, source, sink, max_hops=None, eps=eps)


def bounded_ford_fulkerson(
    graph: TransferGraph,
    source: PeerId,
    sink: PeerId,
    *,
    max_hops: int = 2,
    eps: float = 1e-9,
) -> FlowResult:
    """Maximum flow over augmenting paths of at most ``max_hops`` edges.

    With ``max_hops=2`` this matches the deployed BarterCast computation;
    larger bounds trade accuracy against cost (see the path-length ablation
    bench).  Note that for ``max_hops >= 3`` the greedy path-limited
    Ford–Fulkerson is a heuristic — the length-bounded maxflow problem is
    NP-hard in general — but for ``max_hops <= 2`` it is exact (see module
    docstring).
    """
    if max_hops < 1:
        raise ValueError(f"max_hops must be >= 1, got {max_hops}")
    KERNEL_INVOCATIONS["bounded_ford_fulkerson"] += 1
    return _run_ford_fulkerson(graph, source, sink, max_hops=max_hops, eps=eps)


def maxflow_two_hop(graph: TransferGraph, source: PeerId, sink: PeerId) -> FlowResult:
    """Closed-form 2-hop bounded maxflow (BarterCast's online kernel).

    Evaluates ``c(s,t) + sum_v min(c(s,v), c(v,t))`` by scanning the smaller
    of the source's out-neighbourhood and the sink's in-neighbourhood.
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    KERNEL_INVOCATIONS["maxflow_two_hop"] += 1
    if not graph.has_node(source) or not graph.has_node(sink):
        return FlowResult(value=0.0, source=source, sink=sink)
    out_s = graph.successors(source)
    in_t = graph.predecessors(sink)
    total = out_s.get(sink, 0.0)
    # Scan the smaller neighbourhood for the intersection.
    if len(out_s) <= len(in_t):
        for v, c_sv in out_s.items():
            if v == sink:
                continue
            c_vt = in_t.get(v)
            if c_vt:
                total += min(c_sv, c_vt)
    else:
        for v, c_vt in in_t.items():
            if v == source:
                continue
            c_sv = out_s.get(v)
            if c_sv:
                total += min(c_sv, c_vt)
    return FlowResult(value=total, source=source, sink=sink)
