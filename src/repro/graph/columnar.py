"""The columnar transfer-graph backend: flat arrays instead of dict-of-dicts.

:class:`ColumnarTransferGraph` duck-types the full
:class:`~repro.graph.transfer_graph.TransferGraph` API (same mutation
semantics, same version/no-op discipline, same listener contract) but
stores the graph in a flat **append-only edge-slot log**:

* peers are interned to dense int indices (:class:`~repro.graph.interner
  .PeerInterner`; indices are never reused — see that module's contract);
* every first write to a directed pair appends one *slot* carrying
  ``(src_idx, dst_idx, value)``; later value changes update the slot in
  place; setting an edge to zero kills the slot (value ``0.0``, tombstone)
  and a later re-add appends a **new** slot at the end of the log;
* per-node adjacency rows are lists of slot ids in append order.

On demand the log is materialized into CSR-style arrays
(``indptr`` / ``indices`` / ``data``) in **both** orientations, which is
what the vectorized 2-hop kernel (:func:`two_hop_batch_arrays`) consumes.

Bit-identity with the dict backend
----------------------------------
The dict backend iterates adjacency rows in dict-insertion order, and
float addition is not associative, so reproducing its reputations *bit for
bit* requires reproducing its per-row iteration order exactly.  The slot
log does: a dict row's insertion order is the order in which its edges
were first stored (with delete + re-add moving an edge to the row end),
which is exactly ascending slot order — and the CSR build uses a *stable*
argsort by endpoint, which preserves ascending slot order within each row.
Ascending slot order is therefore the backend's **canonical summation
order**: deterministic across runs, rebuilds, compactions and ``--jobs``
counts, and equal to the dict oracle's order.  (Summing in ascending
*interned-index* order instead would be deterministic too, but would break
bit-identity with the dict oracle; see DESIGN.md §13.)

Snapshot views: :meth:`successors` / :meth:`predecessors` return fresh
dicts (in slot order) rather than live views.  The scalar kernels and the
dict-path batch kernel only hold these views across read-only sections, so
they compute bit-identical flows on either backend.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Mapping, Tuple

import numpy as np

from repro.graph.interner import PeerInterner

__all__ = [
    "ColumnarTransferGraph",
    "two_hop_batch_arrays",
    "two_hop_batch_rows",
    "ARRAY_MIN_TARGETS",
]

PeerId = Hashable

EdgeListener = Callable[[PeerId, PeerId], None]

#: Batch size at which the dispatcher in :mod:`repro.graph.batch` switches
#: from the dict-view loop to the array kernel.  Small batches (a few
#: cache misses per choke round) are faster through the plain loop because
#: the array kernel's fixed numpy call overhead dominates; the threshold
#: also bounds how often a structurally-stale CSR is rebuilt.
ARRAY_MIN_TARGETS = 32

#: Compaction trigger: tombstoned slots are dropped from the log once they
#: outnumber live slots (and there are enough of them to matter).
_COMPACT_MIN_DEAD = 1024


class _CSR:
    """One materialized dual-orientation CSR snapshot of the slot log."""

    __slots__ = (
        "n",
        "out_indptr",
        "out_dst",
        "out_val",
        "in_indptr",
        "in_src",
        "in_val",
    )

    def __init__(self, n, out_indptr, out_dst, out_val, in_indptr, in_src, in_val):
        self.n = n
        self.out_indptr = out_indptr
        self.out_dst = out_dst
        self.out_val = out_val
        self.in_indptr = in_indptr
        self.in_src = in_src
        self.in_val = in_val


class ColumnarTransferGraph:
    """A directed, weighted transfer graph over a columnar edge-slot log.

    Drop-in replacement for :class:`~repro.graph.transfer_graph
    .TransferGraph` (selected per node via ``BarterCastNode(
    graph_backend="columnar")``); the dict backend remains the oracle the
    property tests compare against.

    Examples
    --------
    >>> g = ColumnarTransferGraph()
    >>> g.add_transfer("a", "b", 1000)
    >>> g.add_transfer("a", "b", 500)
    >>> g.capacity("a", "b")
    1500.0
    >>> g.capacity("b", "a")
    0.0
    """

    def __init__(self) -> None:
        self._interner = PeerInterner()
        self._live: Dict[PeerId, None] = {}
        # Append-only slot log (python lists: O(1) append, cheap scalar
        # reads on the ingest hot path; numpy-ified at CSR build time).
        self._slot_src: List[int] = []
        self._slot_dst: List[int] = []
        self._slot_val: List[float] = []
        # Adjacency rows: per interned index, slot ids in append order
        # (may contain tombstones; readers filter value > 0).
        self._out_rows: List[List[int]] = []
        self._in_rows: List[List[int]] = []
        # (src_peer, dst_peer) -> live slot id.  Keyed by peer ids, not
        # interned indices, so capacity() needs no interner lookups.
        self._edge_slot: Dict[Tuple[PeerId, PeerId], int] = {}
        self._dead_slots = 0
        self._total_bytes = 0.0
        self._version = 0
        self._listeners: List[EdgeListener] = []
        #: Per-interned-index version of the last effective incident edge
        #: change (-1 = never touched).  The reputation stamp-cache
        #: compares cached-at stamps against this instead of subscribing a
        #: per-edge listener.  A python list, not a numpy array: the write
        #: path updates two entries per edge change, and scalar numpy
        #: stores are several times the cost of list stores.
        self._touch: List[int] = []
        # Lazily materialized CSR snapshot, keyed by version.
        self._csr: _CSR = None
        self._csr_version = -1
        # Bulk loads (from_edge_arrays) defer the python-side structures
        # until a mutation or row-path read needs them.
        self._rows_ready = True
        self._lazy: Tuple[np.ndarray, np.ndarray, np.ndarray] = None

    # ------------------------------------------------------------------
    # Change notification (same contract as the dict backend)
    # ------------------------------------------------------------------
    def subscribe(self, listener: EdgeListener) -> None:
        """Register ``listener(src, dst)`` to fire on every edge change."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: EdgeListener) -> None:
        """Remove a previously registered listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, src: PeerId, dst: PeerId) -> None:
        for listener in self._listeners:
            listener(src, dst)

    # ------------------------------------------------------------------
    # Interning / stamp support
    # ------------------------------------------------------------------
    @property
    def interner(self) -> PeerInterner:
        """The peer-id interner (indices are stable across churn)."""
        return self._interner

    def peer_index(self, peer: PeerId) -> int:
        """Interned index of ``peer`` (-1 if never seen)."""
        return self._interner.lookup(peer)

    def node_touch(self, index: int) -> int:
        """Version of the last effective edge change incident to ``index``
        (-1 if none ever happened)."""
        return self._touch[index]

    def touch_array(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`node_touch` gather."""
        touch = self._touch
        return np.fromiter(
            (touch[i] for i in indices.tolist()),
            dtype=np.int64,
            count=indices.shape[0],
        )

    def _intern_node(self, peer: PeerId) -> int:
        idx = self._interner.intern(peer)
        while len(self._touch) <= idx:
            self._touch.append(-1)
        if self._rows_ready:
            while len(self._out_rows) <= idx:
                self._out_rows.append([])
                self._in_rows.append([])
        return idx

    def _ensure_rows(self) -> None:
        """Materialize the python-side structures after a bulk load."""
        if self._rows_ready:
            return
        src_np, dst_np, val_np = self._lazy
        src_l = src_np.tolist()
        dst_l = dst_np.tolist()
        self._slot_src = src_l
        self._slot_dst = dst_l
        self._slot_val = val_np.tolist()
        n = len(self._interner)
        out_rows: List[List[int]] = [[] for _ in range(n)]
        in_rows: List[List[int]] = [[] for _ in range(n)]
        peer = self._interner.peer
        edge_slot: Dict[Tuple[PeerId, PeerId], int] = {}
        for slot, (s, d) in enumerate(zip(src_l, dst_l)):
            out_rows[s].append(slot)
            in_rows[d].append(slot)
            edge_slot[(peer(s), peer(d))] = slot
        self._out_rows = out_rows
        self._in_rows = in_rows
        self._edge_slot = edge_slot
        self._rows_ready = True
        self._lazy = None

    # ------------------------------------------------------------------
    # Mutation (same semantics and version discipline as the dict backend)
    # ------------------------------------------------------------------
    def add_node(self, node: PeerId) -> None:
        """Ensure ``node`` exists (possibly with no edges)."""
        if node in self._live:
            return
        self._ensure_rows()
        self._intern_node(node)
        self._live[node] = None
        self._version += 1

    def _ensure_live(self, node: PeerId) -> int:
        """:meth:`add_node` fused with the interned-index lookup (write
        hot path: one dict probe for the already-known common case)."""
        if not self._rows_ready:
            self._ensure_rows()
        idx = self._interner.lookup(node)
        if idx < 0:
            idx = self._intern_node(node)
            self._live[node] = None
            self._version += 1
        elif node not in self._live:
            self._live[node] = None
            self._version += 1
        return idx

    def add_transfer(self, src: PeerId, dst: PeerId, nbytes: float) -> None:
        """Accumulate ``nbytes`` uploaded by ``src`` to ``dst``.

        Raises
        ------
        ValueError
            If ``nbytes`` is negative or ``src == dst``.
        """
        if nbytes < 0:
            raise ValueError(f"transfer size must be non-negative, got {nbytes}")
        if src == dst:
            raise ValueError(f"self-transfer rejected for node {src!r}")
        si = self._ensure_live(src)
        di = self._ensure_live(dst)
        if nbytes == 0:
            return
        # Same arithmetic as the dict backend: old + float(nbytes), with
        # old = 0.0 for a fresh edge.
        amount = float(nbytes)
        key = (src, dst)
        slot = self._edge_slot.get(key)
        if slot is None:
            self._append_slot(si, di, 0.0 + amount, key)
        else:
            self._slot_val[slot] = self._slot_val[slot] + amount
        self._total_bytes += amount
        self._version = v = self._version + 1
        touch = self._touch
        touch[si] = v
        touch[di] = v
        if self._listeners:
            self._notify(src, dst)

    def set_transfer(self, src: PeerId, dst: PeerId, nbytes: float) -> None:
        """Overwrite the aggregate for edge ``(src, dst)``.

        Writing the stored value is a no-op (no version bump, no listener),
        exactly like the dict backend.
        """
        if nbytes < 0:
            raise ValueError(f"transfer size must be non-negative, got {nbytes}")
        if src == dst:
            raise ValueError(f"self-transfer rejected for node {src!r}")
        key = (src, dst)
        slot = self._edge_slot.get(key)
        if slot is not None:
            # Live edge: both endpoints are necessarily known and live, so
            # the node bookkeeping is skipped and the interned indices come
            # from the slot itself (ingest fast path — most claim updates
            # re-write an existing edge).
            old = self._slot_val[slot]
            si = self._slot_src[slot]
            di = self._slot_dst[slot]
        else:
            si = self._ensure_live(src)
            di = self._ensure_live(dst)
            old = 0.0
        new = float(nbytes)
        if new == old:
            return
        if new > 0:
            if slot is None:
                self._append_slot(si, di, new, key)
            else:
                self._slot_val[slot] = new
        else:
            # Kill the slot: tombstone in the log, drop from the edge map
            # and both rows so a later re-add appends at the row end
            # (matching dict delete + re-insert order).  Eager row pruning
            # keeps ``len(row)`` equal to the live degree, which the batch
            # kernels' scan-the-smaller-side branch choice depends on.
            self._slot_val[slot] = 0.0
            del self._edge_slot[key]
            self._out_rows[si].remove(slot)
            self._in_rows[di].remove(slot)
            self._dead_slots += 1
            self._maybe_compact()
        self._total_bytes += new - old
        self._version = v = self._version + 1
        touch = self._touch
        touch[si] = v
        touch[di] = v
        if self._listeners:
            self._notify(src, dst)

    def _append_slot(
        self, si: int, di: int, value: float, key: Tuple[PeerId, PeerId]
    ) -> None:
        slot = len(self._slot_val)
        self._slot_src.append(si)
        self._slot_dst.append(di)
        self._slot_val.append(value)
        self._out_rows[si].append(slot)
        self._in_rows[di].append(slot)
        self._edge_slot[key] = slot

    def remove_node(self, node: PeerId) -> None:
        """Delete ``node`` and all incident edges (no-op if absent)."""
        if node not in self._live:
            return
        self._ensure_rows()
        idx = self._interner.lookup(node)
        vals = self._slot_val
        peer = self._interner.peer
        touched: List[Tuple[PeerId, PeerId, int]] = []
        # Out-edges first, then in-edges, each in row (slot) order — the
        # same notification order as the dict backend's pop loops.
        for slot in self._out_rows[idx]:
            w = vals[slot]
            if w <= 0.0:
                continue
            di = self._slot_dst[slot]
            other = peer(di)
            vals[slot] = 0.0
            del self._edge_slot[(node, other)]
            self._in_rows[di].remove(slot)
            self._dead_slots += 1
            self._total_bytes -= w
            touched.append((node, other, di))
        self._out_rows[idx] = []
        for slot in self._in_rows[idx]:
            w = vals[slot]
            if w <= 0.0:
                continue
            si = self._slot_src[slot]
            other = peer(si)
            vals[slot] = 0.0
            del self._edge_slot[(other, node)]
            self._out_rows[si].remove(slot)
            self._dead_slots += 1
            self._total_bytes -= w
            touched.append((other, node, si))
        self._in_rows[idx] = []
        del self._live[node]
        self._version += 1
        v = self._version
        self._touch[idx] = v
        for _, _, other in touched:
            self._touch[other] = v
        self._maybe_compact()
        for a, b, _ in touched:
            self._notify(a, b)

    # ------------------------------------------------------------------
    # Log compaction
    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        if (
            self._dead_slots >= _COMPACT_MIN_DEAD
            and self._dead_slots * 2 > len(self._slot_val)
        ):
            self.compact()

    def compact(self) -> int:
        """Drop tombstoned slots from the log; returns how many were removed.

        Slot ids are renumbered but their **relative order is preserved**,
        so row iteration order — and therefore every reputation — is
        unchanged.  The interner is untouched: interned indices survive
        compaction (pinned by ``tests/test_columnar.py``).
        """
        self._ensure_rows()
        if self._dead_slots == 0:
            return 0
        old_vals = self._slot_val
        remap = [-1] * len(old_vals)
        new_src: List[int] = []
        new_dst: List[int] = []
        new_val: List[float] = []
        for slot, w in enumerate(old_vals):
            if w > 0.0:
                remap[slot] = len(new_val)
                new_src.append(self._slot_src[slot])
                new_dst.append(self._slot_dst[slot])
                new_val.append(w)
        removed = len(old_vals) - len(new_val)
        self._slot_src = new_src
        self._slot_dst = new_dst
        self._slot_val = new_val
        self._out_rows = [
            [remap[s] for s in row if remap[s] >= 0] for row in self._out_rows
        ]
        self._in_rows = [
            [remap[s] for s in row if remap[s] >= 0] for row in self._in_rows
        ]
        peer = self._interner.peer
        self._edge_slot = {
            (peer(s), peer(d)): slot
            for slot, (s, d) in enumerate(zip(new_src, new_dst))
        }
        self._dead_slots = 0
        # Purely representational: no version bump (no listener fires, no
        # cache invalidates), but any CSR snapshot holds stale slot-free
        # copies anyway, so it stays valid.
        return removed

    # ------------------------------------------------------------------
    # CSR materialization
    # ------------------------------------------------------------------
    @property
    def csr_fresh(self) -> bool:
        """Whether the materialized CSR snapshot matches the current state."""
        return self._csr_version == self._version

    def build_csr(self) -> None:
        """Materialize the CSR snapshot now (idempotent).

        The batch dispatcher only amortizes a rebuild over large target
        batches; callers that know a burst of queries is coming on a graph
        that will not change in between — the scalability experiment, a
        cold sweep after a bulk load — can pay the O(E) sort once here and
        have every following batch take the array-kernel path.
        """
        self._ensure_csr()

    def _ensure_csr(self) -> _CSR:
        if self._csr_version == self._version:
            return self._csr
        n = len(self._interner)
        if self._rows_ready:
            src = np.asarray(self._slot_src, dtype=np.int64)
            dst = np.asarray(self._slot_dst, dtype=np.int64)
            val = np.asarray(self._slot_val, dtype=np.float64)
            if self._dead_slots:
                live = val > 0.0
                src = src[live]
                dst = dst[live]
                val = val[live]
        else:
            src, dst, val = self._lazy
        # Stable sorts preserve ascending slot order within each row: the
        # canonical summation order (module docstring).
        order_out = np.argsort(src, kind="stable")
        order_in = np.argsort(dst, kind="stable")
        out_counts = np.bincount(src, minlength=n)
        in_counts = np.bincount(dst, minlength=n)
        csr = _CSR(
            n=n,
            out_indptr=np.concatenate(([0], np.cumsum(out_counts))),
            out_dst=dst[order_out],
            out_val=val[order_out],
            in_indptr=np.concatenate(([0], np.cumsum(in_counts))),
            in_src=src[order_in],
            in_val=val[order_in],
        )
        self._csr = csr
        self._csr_version = self._version
        return csr

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def capacity(self, src: PeerId, dst: PeerId) -> float:
        """Bytes uploaded by ``src`` to ``dst`` (0.0 if no edge)."""
        if not self._rows_ready:
            self._ensure_rows()
        slot = self._edge_slot.get((src, dst))
        return self._slot_val[slot] if slot is not None else 0.0

    def successors(self, node: PeerId) -> Mapping[PeerId, float]:
        """``{dst: bytes}`` for edges out of ``node``, in slot order.

        Unlike the dict backend this is a snapshot, not a live view; the
        kernels only hold it across read-only sections.
        """
        idx = self._interner.lookup(node)
        if idx < 0 or node not in self._live:
            return {}
        if self._csr_version == self._version:
            c = self._csr
            s, e = c.out_indptr[idx], c.out_indptr[idx + 1]
            if s == e:
                return {}
            peer = self._interner.peer
            return {
                peer(d): w
                for d, w in zip(c.out_dst[s:e].tolist(), c.out_val[s:e].tolist())
            }
        self._ensure_rows()
        vals = self._slot_val
        dsts = self._slot_dst
        peer = self._interner.peer
        out: Dict[PeerId, float] = {}
        for slot in self._out_rows[idx]:
            w = vals[slot]
            if w > 0.0:
                out[peer(dsts[slot])] = w
        return out

    def predecessors(self, node: PeerId) -> Mapping[PeerId, float]:
        """``{src: bytes}`` for edges into ``node``, in slot order."""
        idx = self._interner.lookup(node)
        if idx < 0 or node not in self._live:
            return {}
        if self._csr_version == self._version:
            c = self._csr
            s, e = c.in_indptr[idx], c.in_indptr[idx + 1]
            if s == e:
                return {}
            peer = self._interner.peer
            return {
                peer(d): w
                for d, w in zip(c.in_src[s:e].tolist(), c.in_val[s:e].tolist())
            }
        self._ensure_rows()
        vals = self._slot_val
        srcs = self._slot_src
        peer = self._interner.peer
        out: Dict[PeerId, float] = {}
        for slot in self._in_rows[idx]:
            w = vals[slot]
            if w > 0.0:
                out[peer(srcs[slot])] = w
        return out

    def has_node(self, node: PeerId) -> bool:
        """Whether ``node`` is present."""
        return node in self._live

    def nodes(self) -> Iterator[PeerId]:
        """Iterate over all nodes (insertion order, like the dict backend)."""
        return iter(self._live)

    def edges(self) -> Iterator[Tuple[PeerId, PeerId, float]]:
        """Iterate over ``(src, dst, bytes)`` triples in node/slot order."""
        self._ensure_rows()
        vals = self._slot_val
        dsts = self._slot_dst
        lookup = self._interner.lookup
        peer = self._interner.peer
        for node in self._live:
            for slot in self._out_rows[lookup(node)]:
                w = vals[slot]
                if w > 0.0:
                    yield node, peer(dsts[slot]), w

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._live)

    @property
    def num_edges(self) -> int:
        """Number of positive-weight directed edges."""
        if not self._rows_ready:
            return int(self._lazy[2].shape[0])
        return len(self._edge_slot)

    @property
    def total_bytes(self) -> float:
        """Sum of all edge weights."""
        return self._total_bytes

    @property
    def version(self) -> int:
        """Monotone counter bumped on every *effective* mutation."""
        return self._version

    def in_degree(self, node: PeerId) -> int:
        """Number of incoming edges of ``node``."""
        return len(self.predecessors(node))

    def out_degree(self, node: PeerId) -> int:
        """Number of outgoing edges of ``node``."""
        return len(self.successors(node))

    def net_flow(self, node: PeerId) -> float:
        """Total bytes uploaded minus total bytes downloaded by ``node``.

        Sequential python summation in row order — the same accumulation
        order as the dict backend.
        """
        up = sum(self.successors(node).values())
        down = sum(self.predecessors(node).values())
        return up - down

    # ------------------------------------------------------------------
    # Interop / serialization
    # ------------------------------------------------------------------
    def copy(self) -> "ColumnarTransferGraph":
        """A deep copy (fresh, compact slot log)."""
        g = ColumnarTransferGraph()
        for node in self._live:
            g.add_node(node)
        for src, dst, w in self.edges():
            g.add_transfer(src, dst, w)
        return g

    def to_dict(self) -> dict:
        """A JSON-serializable representation."""
        return {
            "nodes": list(self._live),
            "edges": [[src, dst, w] for src, dst, w in self.edges()],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ColumnarTransferGraph":
        """Inverse of :meth:`to_dict`."""
        g = cls()
        for node in data.get("nodes", []):
            g.add_node(node)
        for src, dst, w in data.get("edges", []):
            g.add_transfer(src, dst, w)
        return g

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[PeerId, PeerId, float]]
    ) -> "ColumnarTransferGraph":
        """Build a graph from an iterable of ``(src, dst, bytes)``."""
        g = cls()
        for src, dst, w in edges:
            g.add_transfer(src, dst, w)
        return g

    @classmethod
    def from_edge_arrays(
        cls,
        num_peers: int,
        src: np.ndarray,
        dst: np.ndarray,
        val: np.ndarray,
    ) -> "ColumnarTransferGraph":
        """Bulk-load a graph over int peers ``0..num_peers-1`` from arrays.

        The 100k-peer / 10M-edge scalability bench point uses this to skip
        per-edge python overhead entirely: the arrays become the slot log
        directly (array order = slot order = summation order), and the
        python-side row/slot-map structures are materialized lazily only
        if the graph is later mutated.

        ``(src, dst)`` pairs must be unique, self-loop free, with strictly
        positive weights — the caller's synthetic generator guarantees it
        and a cheap vectorized check enforces it.
        """
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        val = np.ascontiguousarray(val, dtype=np.float64)
        if not (src.shape == dst.shape == val.shape):
            raise ValueError("src/dst/val arrays must have identical shapes")
        if src.size:
            if int(src.min()) < 0 or int(max(src.max(), dst.max())) >= num_peers:
                raise ValueError("peer indices out of range")
            if bool((src == dst).any()):
                raise ValueError("self-transfers rejected")
            if not bool((val > 0).all()):
                raise ValueError("edge weights must be positive")
        g = cls()
        g._interner.extend(range(num_peers))
        g._live = dict.fromkeys(range(num_peers))
        g._touch = [1] * num_peers
        g._rows_ready = False
        g._lazy = (src, dst, val)
        g._total_bytes = float(val.sum())
        g._version = 1
        return g

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` with ``capacity`` attributes."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(self._live)
        g.add_weighted_edges_from(self.edges(), weight="capacity")
        return g

    def __contains__(self, node: PeerId) -> bool:
        return node in self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ColumnarTransferGraph nodes={self.num_nodes} "
            f"edges={self.num_edges} bytes={self._total_bytes:.0f}>"
        )


# ----------------------------------------------------------------------
# The vectorized 2-hop batch kernel
# ----------------------------------------------------------------------
def _concat_ranges(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Positions of the concatenation of ``[starts[i], starts[i]+lens[i])``."""
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    shift = np.concatenate(([0], np.cumsum(lens[:-1])))
    return np.arange(total, dtype=np.int64) + np.repeat(starts - shift, lens)


def two_hop_batch_rows(
    graph: ColumnarTransferGraph, owner: PeerId, targets: List[PeerId]
) -> Dict[PeerId, Tuple[float, float]]:
    """Row-direct twin of the dict-view batch loop for small batches.

    ``targets`` must already be deduplicated and owner-free, and ``owner``
    must be present in the graph (the dispatcher guarantees both).  This
    is the same scan as the generic loop in :mod:`repro.graph.batch` —
    identical branch choices (row length equals snapshot length), the same
    per-term order (row order is dict insertion order), and the same
    arithmetic — but it walks the slot rows with interned-index keys
    instead of materializing peer-keyed snapshot dicts per target, which
    is what makes a cache-miss handful cheap enough to skip the O(E) CSR
    rebuild entirely.
    """
    if not graph._rows_ready:
        graph._ensure_rows()
    lookup = graph._interner.lookup
    live = graph._live
    out_rows = graph._out_rows
    in_rows = graph._in_rows
    s_src = graph._slot_src
    s_dst = graph._slot_dst
    s_val = graph._slot_val
    es_get = graph._edge_slot.get
    oi = lookup(owner)
    out_i_idx = {s_dst[s]: s_val[s] for s in out_rows[oi]}
    in_i_idx = {s_src[s]: s_val[s] for s in in_rows[oi]}
    len_out_i = len(out_i_idx)
    len_in_i = len(in_i_idx)
    out_i_get = out_i_idx.get
    in_i_get = in_i_idx.get

    results: Dict[PeerId, Tuple[float, float]] = {}
    for j in targets:
        ji = lookup(j)
        if ji < 0 or j not in live:
            results[j] = (0.0, 0.0)
            continue

        out_row_j = out_rows[ji]
        slot = es_get((j, owner))
        inflow = s_val[slot] if slot is not None else 0.0
        if len(out_row_j) <= len_in_i:
            for s in out_row_j:
                v = s_dst[s]
                if v == oi:
                    continue
                c_vt = in_i_get(v)
                if c_vt:
                    inflow += min(s_val[s], c_vt)
        else:
            out_j_idx = {s_dst[s]: s_val[s] for s in out_row_j}
            for v, c_vt in in_i_idx.items():
                if v == ji:
                    continue
                c_sv = out_j_idx.get(v)
                if c_sv:
                    inflow += min(c_sv, c_vt)

        in_row_j = in_rows[ji]
        slot = es_get((owner, j))
        outflow = s_val[slot] if slot is not None else 0.0
        if len_out_i <= len(in_row_j):
            in_j_idx = {s_src[s]: s_val[s] for s in in_row_j}
            for v, c_sv in out_i_idx.items():
                if v == ji:
                    continue
                c_vt = in_j_idx.get(v)
                if c_vt:
                    outflow += min(c_sv, c_vt)
        else:
            for s in in_row_j:
                v = s_src[s]
                if v == oi:
                    continue
                c_sv = out_i_get(v)
                if c_sv:
                    outflow += min(c_sv, s_val[s])

        results[j] = (inflow, outflow)
    return results


def two_hop_batch_arrays(
    graph: ColumnarTransferGraph, owner: PeerId, targets: List[PeerId]
) -> Dict[PeerId, Tuple[float, float]]:
    """Array-kernel twin of :func:`repro.graph.batch.maxflow_two_hop_batch`.

    ``targets`` must already be deduplicated and owner-free, and ``owner``
    must be present in the graph (the dispatcher guarantees both).
    Returns ``{j: (inflow, outflow)}`` with every float **bit-identical**
    to the dict-backend scalar kernel.

    How bit-identity is kept (the derivation is in DESIGN.md §13): the
    closed form ``maxflow2(s, t) = c(s, t) + Σ_v min(c(s, v), c(v, t))``
    is evaluated per target by replicating the scalar kernel's
    scan-the-smaller-side branch choice, emitting the min-terms of each
    target in exactly the scalar scan order, and accumulating them with
    ``np.bincount`` — which adds weights sequentially in entry order
    (pairwise ``np.sum`` would not reproduce the scalar fold).  Terms the
    scalar kernel skips (``v == owner``, missing lookup edges) evaluate to
    ``min(·, 0.0) = 0.0`` here, and adding ``0.0`` to a non-negative
    partial sum is bitwise-neutral, so no masking of those terms is
    needed; only target-membership masks are applied.
    """
    csr = graph._ensure_csr()
    n = csr.n
    inter = graph._interner
    oi = inter.lookup(owner)
    m0 = len(targets)
    if m0 == 0:
        return {}
    t_idx = np.fromiter((inter.lookup(j) for j in targets), dtype=np.int64, count=m0)
    known = t_idx >= 0
    T = t_idx[known]
    m = int(T.shape[0])
    if m == 0:
        return {j: (0.0, 0.0) for j in targets}

    out_indptr = csr.out_indptr
    in_indptr = csr.in_indptr

    # Owner rows, densified: dense_in[v] = c(v, owner), dense_out[v] = c(owner, v).
    s_in, e_in = int(in_indptr[oi]), int(in_indptr[oi + 1])
    in_o_src = csr.in_src[s_in:e_in]
    in_o_val = csr.in_val[s_in:e_in]
    s_out, e_out = int(out_indptr[oi]), int(out_indptr[oi + 1])
    out_o_dst = csr.out_dst[s_out:e_out]
    out_o_val = csr.out_val[s_out:e_out]
    dense_in = np.zeros(n)
    dense_in[in_o_src] = in_o_val
    dense_out = np.zeros(n)
    dense_out[out_o_dst] = out_o_val
    len_in_o = e_in - s_in
    len_out_o = e_out - s_out

    deg_out_t = out_indptr[T + 1] - out_indptr[T]
    deg_in_t = in_indptr[T + 1] - in_indptr[T]
    # Branch choice, exactly as the scalar kernel:
    #   inflow:  scan out_j if len(out_j) <= len(in_o)  (A) else scan in_o (B)
    #   outflow: scan out_o if len(out_o) <= len(in_j)  (C) else scan in_j (D)
    isA = deg_out_t <= len_in_o
    isC = len_out_o <= deg_in_t
    seg_all = np.arange(m, dtype=np.int64)
    seeds_in = dense_in[T]  # c(j, owner): the direct-edge seed, summed first
    seeds_out = dense_out[T]  # c(owner, j)

    # Target-position scatter for the owner-row-scan branches.
    pos = np.full(n, -1, dtype=np.int64)
    pos[T] = seg_all

    # Branch A: per-target scan of out_j rows (row order).
    a_starts = out_indptr[T[isA]]
    a_lens = deg_out_t[isA]
    idxA = _concat_ranges(a_starts, a_lens)
    segA = np.repeat(seg_all[isA], a_lens)
    termsA = np.minimum(csr.out_val[idxA], dense_in[csr.out_dst[idxA]])

    # Branch B: per-target scan of the owner's in-row.  Emitted v-major
    # (l over the owner row), which is ascending-l per target — the scalar
    # scan order.  Entries come from the in-rows of each v (they hold the
    # needed c(j, v) capacities); membership masks keep only branch-B
    # targets.
    isB = ~isA
    b_starts = in_indptr[in_o_src]
    b_lens = in_indptr[in_o_src + 1] - b_starts
    idxB = _concat_ranges(b_starts, b_lens)
    srcB = csr.in_src[idxB]
    posB = pos[srcB]
    maskB = posB >= 0
    if maskB.any():
        maskB &= isB[np.where(maskB, posB, 0)]
    termsB = np.minimum(csr.in_val[idxB], np.repeat(in_o_val, b_lens))[maskB]
    segB = posB[maskB]

    inflow = np.bincount(
        np.concatenate((seg_all, segA, segB)),
        weights=np.concatenate((seeds_in, termsA, termsB)),
        minlength=m,
    )

    # Branch C: per-target scan of the owner's out-row (mirror of B).
    c_starts = out_indptr[out_o_dst]
    c_lens = out_indptr[out_o_dst + 1] - c_starts
    idxC = _concat_ranges(c_starts, c_lens)
    dstC = csr.out_dst[idxC]
    posC = pos[dstC]
    maskC = posC >= 0
    if maskC.any():
        maskC &= isC[np.where(maskC, posC, 0)]
    termsC = np.minimum(np.repeat(out_o_val, c_lens), csr.out_val[idxC])[maskC]
    segC = posC[maskC]

    # Branch D: per-target scan of in_j rows (mirror of A).
    isD = ~isC
    d_starts = in_indptr[T[isD]]
    d_lens = deg_in_t[isD]
    idxD = _concat_ranges(d_starts, d_lens)
    segD = np.repeat(seg_all[isD], d_lens)
    termsD = np.minimum(dense_out[csr.in_src[idxD]], csr.in_val[idxD])

    outflow = np.bincount(
        np.concatenate((seg_all, segC, segD)),
        weights=np.concatenate((seeds_out, termsC, termsD)),
        minlength=m,
    )

    infl = inflow.tolist()
    outfl = outflow.tolist()
    results: Dict[PeerId, Tuple[float, float]] = {}
    k = 0
    for j, good in zip(targets, known.tolist()):
        if good:
            results[j] = (infl[k], outfl[k])
            k += 1
        else:
            results[j] = (0.0, 0.0)
    return results
