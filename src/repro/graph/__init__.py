"""Transfer graphs and maxflow kernels.

The BarterCast reputation of peer *j* at peer *i* is computed from maxflows
on *i*'s subjective local graph, whose directed edge ``(a, b)`` carries the
total number of bytes *a* is believed to have uploaded to *b*.

Three maxflow kernels are provided (all in :mod:`repro.graph.maxflow`):

* :func:`~repro.graph.maxflow.ford_fulkerson` — the paper's Algorithm 1,
  classic Ford–Fulkerson with depth-first augmenting-path search;
* :func:`~repro.graph.maxflow.bounded_ford_fulkerson` — the same algorithm
  with augmenting paths restricted to at most ``max_hops`` edges;
* :func:`~repro.graph.maxflow.maxflow_two_hop` — a closed-form O(degree)
  evaluation of the 2-hop-bounded maxflow, which is what the deployed
  BarterCast implementation uses.

Plus the batched form (:mod:`repro.graph.batch`):

* :func:`~repro.graph.batch.maxflow_two_hop_batch` — both directed 2-hop
  maxflows between one owner and many candidates in a single pass, with
  the owner's neighbourhood lookups hoisted out of the per-target loop;
  bit-identical to per-target ``maxflow_two_hop`` calls.

Two interchangeable graph backends:

* :class:`~repro.graph.transfer_graph.TransferGraph` — dict-of-dicts, the
  reference oracle every property test compares against;
* :class:`~repro.graph.columnar.ColumnarTransferGraph` — flat columnar
  edge-slot log with numpy CSR materialization and a vectorized batch
  kernel, bit-identical to the oracle and built for 100k-peer scale.
"""

from repro.graph.transfer_graph import TransferGraph
from repro.graph.columnar import ColumnarTransferGraph, two_hop_batch_arrays
from repro.graph.interner import PeerInterner
from repro.graph.batch import maxflow_two_hop_batch
from repro.graph.maxflow import (
    FlowPath,
    FlowResult,
    bounded_ford_fulkerson,
    ford_fulkerson,
    kernel_invocations,
    kernel_invocations_delta,
    leave_one_out_values,
    maxflow_two_hop,
    merge_kernel_invocations,
    reset_kernel_invocations,
    snapshot_kernel_invocations,
)

__all__ = [
    "TransferGraph",
    "ColumnarTransferGraph",
    "PeerInterner",
    "two_hop_batch_arrays",
    "FlowPath",
    "FlowResult",
    "ford_fulkerson",
    "bounded_ford_fulkerson",
    "maxflow_two_hop",
    "leave_one_out_values",
    "maxflow_two_hop_batch",
    "kernel_invocations",
    "snapshot_kernel_invocations",
    "kernel_invocations_delta",
    "merge_kernel_invocations",
    "reset_kernel_invocations",
]
