"""Peer-id interning: hashable identifiers to dense int indices.

The columnar graph backend (:mod:`repro.graph.columnar`) stores adjacency
in flat numpy arrays indexed by *interned* peer ids.  Peers in BarterCast
are arbitrary hashables (int peer ids in the simulator, string permids in
the deployed client), so a small bijection layer maps them to dense
``0..n-1`` indices.

Stability contract
------------------
An index, once assigned, is **never reused and never remapped**: churn
(``remove_node``, ``forget_reporter`` wipes) and edge-log compaction leave
the interner untouched.  Consumers may therefore hold interned indices
across arbitrary graph mutations — the reputation stamp-cache in
:class:`~repro.core.node.BarterCastNode` and the CSR snapshots both rely
on this.  The tests in ``tests/test_columnar.py`` pin the contract.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List

__all__ = ["PeerInterner"]

PeerId = Hashable


class PeerInterner:
    """A grow-only bijection ``peer id <-> dense int index``.

    Examples
    --------
    >>> interner = PeerInterner()
    >>> interner.intern("permid:aa")
    0
    >>> interner.intern(7)
    1
    >>> interner.intern("permid:aa")
    0
    >>> interner.peer(1)
    7
    >>> interner.lookup("unknown")
    -1
    """

    __slots__ = ("_index", "_peers")

    def __init__(self) -> None:
        self._index: Dict[PeerId, int] = {}
        self._peers: List[PeerId] = []

    def intern(self, peer: PeerId) -> int:
        """The index of ``peer``, assigning the next free one if new."""
        idx = self._index.get(peer)
        if idx is None:
            idx = len(self._peers)
            self._index[peer] = idx
            self._peers.append(peer)
        return idx

    def lookup(self, peer: PeerId) -> int:
        """The index of ``peer``, or ``-1`` if it was never interned."""
        return self._index.get(peer, -1)

    def peer(self, index: int) -> PeerId:
        """The peer id interned at ``index``.

        Raises
        ------
        IndexError
            If ``index`` was never assigned.
        """
        return self._peers[index]

    def extend(self, peers: Iterable[PeerId]) -> None:
        """Intern ``peers`` in order (bulk-load fast path)."""
        for peer in peers:
            self.intern(peer)

    def copy(self) -> "PeerInterner":
        """An independent interner with the same assignments."""
        fresh = PeerInterner()
        fresh._index = dict(self._index)
        fresh._peers = list(self._peers)
        return fresh

    def __len__(self) -> int:
        return len(self._peers)

    def __contains__(self, peer: PeerId) -> bool:
        return peer in self._index

    def __iter__(self) -> Iterator[PeerId]:
        return iter(self._peers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PeerInterner size={len(self._peers)}>"
