"""The directed transfer graph.

Nodes are peer identifiers (any hashable, typically ``int`` peer ids or
string permids); a directed edge ``(i, j)`` with weight ``w`` records that
``i`` is believed to have uploaded ``w`` bytes to ``j`` in total.

The graph is the *subjective* data structure at the centre of BarterCast:
each peer maintains its own instance built from its private history plus
records received in BarterCast messages.  Operations are therefore
incremental (``add_transfer``/``set_transfer``) and read-heavy
(``successors``/``predecessors``/``capacity`` are on the maxflow hot path).

Implementation: double adjacency dictionaries (
``out[i] -> {j: bytes}`` and ``in_[j] -> {i: bytes}``), giving O(1)
edge lookups in both directions and O(degree) neighbourhood scans, which is
exactly what the 2-hop maxflow closed form needs.

Change notification: consumers that cache derived values (the reputation
cache in :class:`~repro.core.node.BarterCastNode`) can :meth:`subscribe
<TransferGraph.subscribe>` an edge listener ``fn(src, dst)`` that fires on
every *effective* edge change — a write that leaves the stored weight
unchanged fires nothing and does not bump :attr:`~TransferGraph.version`,
so subscribers learn which edges moved instead of conservatively assuming
everything did.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Mapping, Tuple

__all__ = ["TransferGraph"]

PeerId = Hashable

#: Callback invoked with the endpoints of an edge whose weight changed.
EdgeListener = Callable[[PeerId, PeerId], None]


class TransferGraph:
    """A directed, weighted graph of aggregated byte transfers.

    Weights are non-negative floats (bytes).  Zero-weight edges are not
    stored: setting an edge to 0 removes it, so iteration only ever visits
    edges that can carry flow.

    Examples
    --------
    >>> g = TransferGraph()
    >>> g.add_transfer("a", "b", 1000)
    >>> g.add_transfer("a", "b", 500)
    >>> g.capacity("a", "b")
    1500.0
    >>> g.capacity("b", "a")
    0.0
    """

    def __init__(self) -> None:
        self._out: Dict[PeerId, Dict[PeerId, float]] = {}
        self._in: Dict[PeerId, Dict[PeerId, float]] = {}
        self._total_bytes = 0.0
        self._version = 0
        self._listeners: List[EdgeListener] = []

    # ------------------------------------------------------------------
    # Change notification
    # ------------------------------------------------------------------
    def subscribe(self, listener: EdgeListener) -> None:
        """Register ``listener(src, dst)`` to fire on every edge change.

        Listeners fire after the mutation is applied, once per directed
        edge whose stored weight actually changed (no-op writes are
        silent).  Listeners must not mutate the graph.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: EdgeListener) -> None:
        """Remove a previously registered listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, src: PeerId, dst: PeerId) -> None:
        for listener in self._listeners:
            listener(src, dst)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: PeerId) -> None:
        """Ensure ``node`` exists (possibly with no edges)."""
        if node not in self._out:
            self._out[node] = {}
            self._in[node] = {}
            self._version += 1

    def add_transfer(self, src: PeerId, dst: PeerId, nbytes: float) -> None:
        """Accumulate ``nbytes`` uploaded by ``src`` to ``dst``.

        Raises
        ------
        ValueError
            If ``nbytes`` is negative or ``src == dst`` (self-transfers
            carry no reputation information and are rejected).
        """
        if nbytes < 0:
            raise ValueError(f"transfer size must be non-negative, got {nbytes}")
        if src == dst:
            raise ValueError(f"self-transfer rejected for node {src!r}")
        if nbytes == 0:
            self.add_node(src)
            self.add_node(dst)
            return
        self.add_node(src)
        self.add_node(dst)
        self._out[src][dst] = self._out[src].get(dst, 0.0) + float(nbytes)
        self._in[dst][src] = self._in[dst].get(src, 0.0) + float(nbytes)
        self._total_bytes += float(nbytes)
        self._version += 1
        self._notify(src, dst)

    def set_transfer(self, src: PeerId, dst: PeerId, nbytes: float) -> None:
        """Overwrite the aggregate for edge ``(src, dst)``.

        Used when a received BarterCast record supersedes an older record
        for the same ordered pair (records carry totals, not deltas).
        Writing the value already stored is a no-op: the version counter
        does not move and no listener fires.
        """
        if nbytes < 0:
            raise ValueError(f"transfer size must be non-negative, got {nbytes}")
        if src == dst:
            raise ValueError(f"self-transfer rejected for node {src!r}")
        self.add_node(src)
        self.add_node(dst)
        new = float(nbytes)
        old = self._out[src].get(dst, 0.0)
        if new == old:
            return
        if new > 0:
            self._out[src][dst] = new
            self._in[dst][src] = new
        else:
            del self._out[src][dst]
            del self._in[dst][src]
        self._total_bytes += new - old
        self._version += 1
        self._notify(src, dst)

    def remove_node(self, node: PeerId) -> None:
        """Delete ``node`` and all incident edges (no-op if absent)."""
        if node not in self._out:
            return
        touched: List[Tuple[PeerId, PeerId]] = []
        for dst, w in self._out.pop(node).items():
            del self._in[dst][node]
            self._total_bytes -= w
            touched.append((node, dst))
        for src, w in self._in.pop(node).items():
            del self._out[src][node]
            self._total_bytes -= w
            touched.append((src, node))
        self._version += 1
        for src, dst in touched:
            self._notify(src, dst)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def capacity(self, src: PeerId, dst: PeerId) -> float:
        """Bytes uploaded by ``src`` to ``dst`` (0.0 if no edge)."""
        row = self._out.get(src)
        if row is None:
            return 0.0
        return row.get(dst, 0.0)

    def successors(self, node: PeerId) -> Mapping[PeerId, float]:
        """Read-only view of ``{dst: bytes}`` for edges out of ``node``."""
        return self._out.get(node, {})

    def predecessors(self, node: PeerId) -> Mapping[PeerId, float]:
        """Read-only view of ``{src: bytes}`` for edges into ``node``."""
        return self._in.get(node, {})

    def has_node(self, node: PeerId) -> bool:
        """Whether ``node`` is present."""
        return node in self._out

    def nodes(self) -> Iterator[PeerId]:
        """Iterate over all nodes."""
        return iter(self._out)

    def edges(self) -> Iterator[Tuple[PeerId, PeerId, float]]:
        """Iterate over ``(src, dst, bytes)`` triples."""
        for src, row in self._out.items():
            for dst, w in row.items():
                yield src, dst, w

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Number of positive-weight directed edges."""
        return sum(len(row) for row in self._out.values())

    @property
    def total_bytes(self) -> float:
        """Sum of all edge weights."""
        return self._total_bytes

    @property
    def version(self) -> int:
        """Monotone counter bumped on every *effective* mutation.

        Writes that leave the stored state unchanged (e.g. ``set_transfer``
        to the current value) do not move it.  Wholesale reputation caches
        key on this; dirty-set caches subscribe to edge events instead.
        """
        return self._version

    def in_degree(self, node: PeerId) -> int:
        """Number of incoming edges of ``node``."""
        return len(self._in.get(node, {}))

    def out_degree(self, node: PeerId) -> int:
        """Number of outgoing edges of ``node``."""
        return len(self._out.get(node, {}))

    def net_flow(self, node: PeerId) -> float:
        """Total bytes uploaded minus total bytes downloaded by ``node``."""
        up = sum(self._out.get(node, {}).values())
        down = sum(self._in.get(node, {}).values())
        return up - down

    # ------------------------------------------------------------------
    # Interop / serialization
    # ------------------------------------------------------------------
    def copy(self) -> "TransferGraph":
        """A deep copy (fresh adjacency dicts)."""
        g = TransferGraph()
        for node in self._out:
            g.add_node(node)
        for src, dst, w in self.edges():
            g.add_transfer(src, dst, w)
        return g

    def to_dict(self) -> dict:
        """A JSON-serializable representation."""
        return {
            "nodes": list(self._out.keys()),
            "edges": [[src, dst, w] for src, dst, w in self.edges()],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TransferGraph":
        """Inverse of :meth:`to_dict`."""
        g = cls()
        for node in data.get("nodes", []):
            g.add_node(node)
        for src, dst, w in data.get("edges", []):
            g.add_transfer(src, dst, w)
        return g

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[PeerId, PeerId, float]]) -> "TransferGraph":
        """Build a graph from an iterable of ``(src, dst, bytes)``."""
        g = cls()
        for src, dst, w in edges:
            g.add_transfer(src, dst, w)
        return g

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` with ``capacity`` edge attributes.

        Used by the test suite to cross-validate the maxflow kernels.
        """
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(self._out.keys())
        g.add_weighted_edges_from(self.edges(), weight="capacity")
        return g

    def __contains__(self, node: PeerId) -> bool:
        return node in self._out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TransferGraph nodes={self.num_nodes} edges={self.num_edges} "
            f"bytes={self._total_bytes:.0f}>"
        )
