"""Choke-round-shaped reputation-engine benchmark.

The workload interleaves gossip ingestion with batch candidate ranking —
exactly what a BarterCast peer does between choke rounds: every round a
handful of BarterCast messages land (each touching a few far-away edges of
the subjective graph), then the rank/ban policy scores the same swarm's
candidate list.

Five engine variants run the identical workload (same messages, same
candidates, same order):

* ``wholesale_scalar`` — the pre-incremental baseline: version-keyed
  full cache clears + one scalar kernel call per candidate;
* ``wholesale_batch`` — full clears, but misses evaluated in one batched
  kernel pass;
* ``dirty_scalar`` — event-driven dirty-set invalidation, scalar misses;
* ``dirty_batch`` — dirty sets + batched misses (the dict-backend
  default);
* ``columnar_batch`` — the columnar graph backend: stamp-cache dirty
  invalidation + vectorized array kernel for large miss batches.

Every variant must produce bit-identical reputations every round; the
headline numbers are the wholesale_scalar / dirty_batch ratio (acceptance
floor: 3x) and the wholesale_scalar / columnar_batch ratio (acceptance
floor: 10x).  Results land in ``BENCH_reputation.json`` at the repository
root to continue the perf trajectory.

A second section replays the shipped ``dirty_batch`` configuration four
ways — observability off, metrics on, metrics + sampled tracing, and
provenance (claim-lineage) recording — to pin the instrumentation
overhead: the disabled path must time like the plain variant (the
cached-``None`` guards cost one attribute check), and the reputations
must stay bit-identical in all four.

Full-scale runs also embed a ``smoke_reference`` section: the same
bench at ``--bench-smoke`` scale on the reference machine.  The CI
regression gate (``benchmarks/check_bench_regression.py``) reruns the
smoke scale and compares *speedup ratios* against this reference —
ratios cancel host speed, so the committed full-scale artifact stays
meaningful across machines.

Run standalone (``python benchmarks/bench_reputation_cache.py [--smoke]``)
or via pytest (``pytest benchmarks/bench_reputation_cache.py -m bench
[--bench-smoke]``).
"""

from __future__ import annotations

import gc
import io
import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import pytest

from repro.core.messages import BarterCastMessage, HistoryRecord
from repro.core.node import BarterCastNode
from repro.core.reputation import MB
from repro.obs import MetricsRegistry, Observability, ProvenanceRecorder, TraceEmitter
from repro.sim.rng import RngRegistry

pytestmark = pytest.mark.bench

OWNER = -1
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_reputation.json"


@dataclass
class WorkloadConfig:
    """Shape of the mixed gossip + ranking workload."""

    num_peers: int
    degree: int
    rounds: int
    gossip_per_round: int
    candidates: int
    seed: int = 7
    repeats: int = 3


SMOKE = WorkloadConfig(
    num_peers=150, degree=6, rounds=6, gossip_per_round=3, candidates=10, repeats=1
)
# Full scale re-shaped when the columnar backend landed: 4000 peers
# (2x the old 2000, so kernel arithmetic dominates the baseline instead
# of timer noise), 800 candidates (a busy swarm ranks a large slice of
# the known population every choke round — the query-dominant regime the
# reputation engine exists to serve), and 2 gossip messages per round
# (the paper's protocol exchanges one message per ~poll; gossip volume
# is identical for every variant, so keeping it realistic rather than
# inflated stops ingest cost from masking the query-path differences
# this benchmark compares).
FULL = WorkloadConfig(
    num_peers=4000, degree=16, rounds=80, gossip_per_round=2, candidates=800
)


def _build_workload(cfg: WorkloadConfig):
    """Pre-generate the identical event stream every variant replays.

    Returns ``(bootstrap, rounds, candidates)``: the initial view-building
    messages, the per-round gossip message lists, and the fixed candidate
    list (one swarm's interested peers).
    """
    rng = RngRegistry(cfg.seed).stream("bench-repcache")
    gen = rng.generator

    def message(sender: int, created_at: float, scale: float) -> BarterCastMessage:
        counterparties = gen.integers(0, cfg.num_peers, size=cfg.degree)
        records = tuple(
            HistoryRecord(
                counterparty=int(c),
                uploaded=float(gen.uniform(1, 500)) * MB * scale,
                downloaded=float(gen.uniform(1, 500)) * MB * scale,
            )
            for c in counterparties
            if int(c) != sender
        )
        return BarterCastMessage(sender=sender, created_at=created_at, records=records)

    bootstrap = [message(pid, created_at=0.0, scale=1.0) for pid in range(cfg.num_peers)]
    rounds = [
        [
            message(
                int(gen.integers(0, cfg.num_peers)),
                created_at=float(r + 1),
                # Growing totals: supersede earlier claims with larger ones
                # so each message genuinely moves edges.
                scale=1.0 + 0.1 * (r + 1),
            )
            for _ in range(cfg.gossip_per_round)
        ]
        for r in range(cfg.rounds)
    ]
    candidates = [int(c) for c in gen.choice(cfg.num_peers, size=cfg.candidates, replace=False)]
    return bootstrap, rounds, candidates


def _fresh_node(
    cfg: WorkloadConfig,
    cache_mode: str,
    bootstrap,
    obs: Optional[Observability] = None,
    provenance: Optional[ProvenanceRecorder] = None,
    backend: str = "dict",
) -> BarterCastNode:
    node = BarterCastNode(
        OWNER,
        cache_mode=cache_mode,
        obs=obs,
        provenance=provenance,
        graph_backend=backend,
    )
    gen = RngRegistry(cfg.seed).stream("bench-own-history").generator
    for pid in range(min(40, cfg.num_peers)):
        node.record_download(pid, float(gen.uniform(10, 1000)) * MB, now=0.0)
        node.record_upload(pid, float(gen.uniform(10, 1000)) * MB, now=0.0)
    for msg in bootstrap:
        node.receive_message(msg)
    return node


def _run_variant(
    cfg: WorkloadConfig,
    cache_mode: str,
    batched: bool,
    workload,
    obs: Optional[Observability] = None,
    provenance: Optional[ProvenanceRecorder] = None,
    backend: str = "dict",
) -> Tuple[float, List[Tuple[float, ...]], Dict[str, int]]:
    """Replay the workload; returns (seconds, per-round reputation rows,
    telemetry counters)."""
    bootstrap, rounds, candidates = workload
    node = _fresh_node(
        cfg, cache_mode, bootstrap, obs=obs, provenance=provenance, backend=backend
    )
    rows: List[Tuple[float, ...]] = []
    t0 = time.perf_counter()
    for messages in rounds:
        for msg in messages:
            node.receive_message(msg)
        if batched:
            reps = node.reputations_of(candidates)
        else:
            reps = {c: node.reputation_of(c) for c in candidates}
        rows.append(tuple(reps[c] for c in candidates))
    elapsed = time.perf_counter() - t0
    telemetry = {
        "hits": node.rep_cache_hits,
        "misses": node.rep_cache_misses,
        "invalidations": node.rep_cache_invalidations,
    }
    return elapsed, rows, telemetry


VARIANTS = {
    "wholesale_scalar": ("wholesale", False, "dict"),
    "wholesale_batch": ("wholesale", True, "dict"),
    "dirty_scalar": ("dirty", False, "dict"),
    "dirty_batch": ("dirty", True, "dict"),
    "columnar_batch": ("dirty", True, "columnar"),
}


def run_bench(cfg: WorkloadConfig) -> dict:
    """Run all variants on one pre-generated workload; best-of-``repeats``
    timing, bitwise result comparison."""
    workload = _build_workload(cfg)
    results: Dict[str, dict] = {}
    reference_rows = None
    for name, (cache_mode, batched, backend) in VARIANTS.items():
        best = float("inf")
        telemetry: Dict[str, int] = {}
        for _ in range(cfg.repeats):
            elapsed, rows, telemetry = _run_variant(
                cfg, cache_mode, batched, workload, backend=backend
            )
            best = min(best, elapsed)
            if reference_rows is None:
                reference_rows = rows
            elif rows != reference_rows:
                raise AssertionError(
                    f"variant {name} produced different reputations than baseline"
                )
        results[name] = {"seconds": best, **telemetry}
    baseline = results["wholesale_scalar"]["seconds"]
    return {
        "workload": asdict(cfg),
        "variants": results,
        "speedup_dirty_batch": baseline / results["dirty_batch"]["seconds"],
        "speedup_dirty_scalar": baseline / results["dirty_scalar"]["seconds"],
        "speedup_wholesale_batch": baseline / results["wholesale_batch"]["seconds"],
        "speedup_columnar_batch": baseline / results["columnar_batch"]["seconds"],
        "identical_reputations": True,
    }


def run_obs_overhead(cfg: WorkloadConfig, workload=None) -> dict:
    """Time the shipped dirty_batch configuration under four obs modes.

    ``obs_off`` is the exact same configuration as the ``dirty_batch``
    variant above, so its timing doubles as the disabled-path overhead
    probe; ``metrics_on`` adds a live registry; ``metrics_trace`` adds a
    sampled in-memory trace on top; ``provenance_on`` records claim
    lineage (the ``repro explain`` substrate) with no other obs legs.
    All four must produce bit-identical reputation rows.
    """
    if workload is None:
        workload = _build_workload(cfg)

    def make_obs(name: str) -> Optional[Observability]:
        if name in ("obs_off", "provenance_on"):
            return None
        if name == "metrics_on":
            return Observability(metrics=MetricsRegistry())
        # Sampled tracing into an in-memory sink: measures the emit path
        # without benchmarking the filesystem.
        return Observability(
            metrics=MetricsRegistry(),
            tracer=TraceEmitter(io.StringIO(), default_rate=0.01, seed=cfg.seed),
        )

    timings: Dict[str, float] = {}
    reference_rows = None
    for name in ("obs_off", "metrics_on", "metrics_trace", "provenance_on"):
        best = float("inf")
        for _ in range(cfg.repeats):
            elapsed, rows, _ = _run_variant(
                cfg, "dirty", True, workload,
                obs=make_obs(name),
                provenance=ProvenanceRecorder() if name == "provenance_on" else None,
            )
            best = min(best, elapsed)
            if reference_rows is None:
                reference_rows = rows
            elif rows != reference_rows:
                raise AssertionError(
                    f"obs mode {name} changed the computed reputations"
                )
        timings[name] = best
    off = timings["obs_off"]
    return {
        "seconds": timings,
        "overhead_metrics_pct": (timings["metrics_on"] / off - 1.0) * 100.0,
        "overhead_trace_pct": (timings["metrics_trace"] / off - 1.0) * 100.0,
        "overhead_provenance_pct": (timings["provenance_on"] / off - 1.0) * 100.0,
        "identical_reputations": True,
    }


def run_telemetry_overhead(repeats: int = 3) -> dict:
    """Sim-level cost of the time-dimension telemetry (timeseries + profiler).

    The node-level workload above never builds a simulator, so it cannot
    see the profiler's phase contexts or the timeseries sampling event;
    this probe runs a whole tiny figure-1 simulation plain and with both
    legs on.  Best-of-``repeats`` per mode cancels warmup, and both modes
    must produce bit-identical figure series (the telemetry-off run is
    already pinned byte-identical by ``tests/test_timeseries.py``).
    """
    from repro.experiments import ScenarioConfig, run_fig1
    from repro.obs import make_observability
    from repro.obs.profile import activate

    scenario = ScenarioConfig.tiny(seed=7)

    def fingerprint(result) -> tuple:
        return (
            tuple(result.sharer_reputation.tolist()),
            tuple(result.freerider_reputation.tolist()),
            result.spearman,
        )

    timings: Dict[str, float] = {}
    reference = None
    for mode in ("plain", "telemetry"):
        best = float("inf")
        for _ in range(repeats):
            if mode == "telemetry":
                obs = make_observability(profile=True, timeseries=-1.0)
                t0 = time.perf_counter()
                with activate(obs.profiler):
                    result = run_fig1(scenario, obs=obs)
                elapsed = time.perf_counter() - t0
            else:
                t0 = time.perf_counter()
                result = run_fig1(scenario)
                elapsed = time.perf_counter() - t0
            best = min(best, elapsed)
            if reference is None:
                reference = fingerprint(result)
            elif fingerprint(result) != reference:
                raise AssertionError(
                    f"telemetry mode {mode} changed the figure series"
                )
        timings[mode] = best
    return {
        "scenario": "fig1-tiny",
        "seconds": timings,
        "overhead_telemetry_pct": (
            (timings["telemetry"] / timings["plain"] - 1.0) * 100.0
        ),
        "identical_results": True,
    }


def run_dissemination_overhead(repeats: int = 2, profile: str = "fast") -> dict:
    """Sim-level cost of dissemination recording, plus the always-on
    envelope stamp.

    Two probes.  (1) The figure-1 simulation plain vs with a
    :class:`~repro.obs.dissemination.DisseminationRecorder` attached;
    recording is append-only and consumes no RNG, so the results must be
    bit-identical and the overhead within the 10% telemetry budget.  The
    default scenario is the ``fast`` profile — the smallest profile
    actually used for figures, where a run is ~13s and the ratio is
    stable to ~2%.  The ``tiny`` CI shrink is the wrong denominator for
    a budget gate twice over: it is sub-second (scheduler and
    frequency-scaling noise alone swing pairs by +-8%, straddling the
    gate) and gossip-dominated (the per-message hook is a much larger
    *fraction* there than in any run users measure).  The modes still
    run as interleaved pairs (plain, recording, ...) with
    best-of-``repeats`` per mode on process CPU time, so neighbour load
    and one-sided spikes are discarded.
    (2) A node-level microbench isolating the causal envelope:
    ``create_message`` now stamps ``msg_id``/``parent_id`` on *every*
    message (recording on or off), so the stamp rides every run — its
    per-message cost over the raw ``make_message`` path must be ~0.
    """
    from repro.experiments import ScenarioConfig, run_fig1
    from repro.obs import make_observability

    scenario = (
        ScenarioConfig.tiny(seed=7) if profile == "tiny" else ScenarioConfig.fast(seed=7)
    )

    def fingerprint(result) -> tuple:
        return (
            tuple(result.sharer_reputation.tolist()),
            tuple(result.freerider_reputation.tolist()),
            result.spearman,
        )

    timings: Dict[str, float] = {"plain": float("inf"), "recording": float("inf")}
    reference = None
    # Freeze the pre-existing heap for the timed region.  Recording
    # triggers more cyclic-GC passes than a plain run (its columns
    # retain what the plain run frees), and each pass scans whatever
    # else the process has built up — in the regression gate that is the
    # residue of the reputation benches, which inflates the measured
    # overhead well past what a fresh process (the real CLI) ever pays.
    gc.collect()
    gc.freeze()
    try:
        for _ in range(repeats):
            for mode in ("plain", "recording"):
                obs = (
                    make_observability(dissemination=True)
                    if mode == "recording"
                    else None
                )
                t0 = time.process_time()
                result = run_fig1(scenario, obs=obs)
                elapsed = time.process_time() - t0
                timings[mode] = min(timings[mode], elapsed)
                if reference is None:
                    reference = fingerprint(result)
                elif fingerprint(result) != reference:
                    raise AssertionError(
                        f"dissemination mode {mode} changed the figure series"
                    )
    finally:
        gc.unfreeze()

    # Envelope microbench: same node, same selection work; the only
    # difference is the stamp (one replace + one attribute write).
    bootstrap, _, _ = _build_workload(SMOKE)
    node = _fresh_node(SMOKE, "dirty", bootstrap)
    n = 2000
    t0 = time.perf_counter()
    for i in range(n):
        node.behavior.make_message(node, float(i))
    raw_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for i in range(n):
        msg = node.create_message(float(i))
    stamped_s = time.perf_counter() - t0
    assert msg is not None and msg.msg_id == (OWNER, node.messages_sent)

    return {
        "scenario": f"fig1-{profile}",
        "seconds": timings,
        "overhead_dissemination_pct": (
            (timings["recording"] / timings["plain"] - 1.0) * 100.0
        ),
        "envelope_stamp_us_per_message": max(0.0, stamped_s - raw_s) / n * 1e6,
        "envelope_stamp_overhead_pct": (stamped_s / raw_s - 1.0) * 100.0,
        "identical_results": True,
    }


def write_results(payload: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


#: Smoke-scale config used for the committed ``smoke_reference`` section
#: and by the CI regression gate; more repeats than CI smoke so the
#: committed ratio is stable.
SMOKE_REFERENCE = WorkloadConfig(
    num_peers=150, degree=6, rounds=6, gossip_per_round=3, candidates=10, repeats=3
)


def smoke_reference() -> dict:
    """The smoke-scale ratios embedded in the full artifact (the CI
    regression gate's same-scale comparison baseline)."""
    smoke = run_bench(SMOKE_REFERENCE)
    return {
        "workload": smoke["workload"],
        "speedup_dirty_batch": smoke["speedup_dirty_batch"],
        "speedup_columnar_batch": smoke["speedup_columnar_batch"],
        "seconds": {
            name: variant["seconds"] for name, variant in smoke["variants"].items()
        },
    }


def test_bench_reputation_cache(bench_smoke, tmp_path):
    cfg = SMOKE if bench_smoke else FULL
    payload = run_bench(cfg)
    payload["instrumentation"] = run_obs_overhead(cfg)
    payload["telemetry"] = run_telemetry_overhead(
        repeats=1 if bench_smoke else 3
    )
    payload["dissemination"] = run_dissemination_overhead(
        repeats=1 if bench_smoke else 2,
        profile="tiny" if bench_smoke else "fast",
    )
    if not bench_smoke:
        payload["smoke_reference"] = smoke_reference()
    # Smoke numbers are meaningless as a perf record: never let a CI-sized
    # run clobber the committed full-scale artifact.
    write_results(payload, tmp_path / "BENCH_reputation.json" if bench_smoke else RESULT_PATH)
    assert payload["identical_reputations"]
    assert payload["instrumentation"]["identical_reputations"]
    assert payload["telemetry"]["identical_results"]
    assert payload["dissemination"]["identical_results"]
    for variant in payload["variants"].values():
        assert variant["seconds"] > 0
    if not bench_smoke:
        # Acceptance floor: the incremental engine is >= 3x faster than the
        # wholesale-invalidation baseline on the mixed workload.
        assert payload["speedup_dirty_batch"] >= 3.0
        # The columnar backend must clear 10x on the same workload.
        assert payload["speedup_columnar_batch"] >= 10.0
        # The disabled instrumentation path must time like the plain
        # dirty_batch variant (same configuration, same workload): the
        # cached-None guards are one attribute check per block.  Lenient
        # band to absorb timing noise.
        ratio = (
            payload["instrumentation"]["seconds"]["obs_off"]
            / payload["variants"]["dirty_batch"]["seconds"]
        )
        assert 0.75 <= ratio <= 1.25, f"disabled-obs path drifted: ratio={ratio:.3f}"
        # Lineage recording rides the gossip hot path.  The fused
        # provenance-off ingest loop roughly halved the baseline this
        # overhead is measured against, so the *relative* ceiling is
        # looser than the pre-fusion 15% even though the absolute cost of
        # recording lineage is unchanged (provenance-on deliberately keeps
        # the layered ingest path).
        assert payload["instrumentation"]["overhead_provenance_pct"] < 60.0
        # Time-dimension telemetry budget: timeseries sampling plus the
        # phase/kernel profiler must stay within 10% of a plain run.
        assert payload["telemetry"]["overhead_telemetry_pct"] < 10.0
        # Dissemination recording shares the same budget, and the
        # always-on envelope stamp must be noise over raw message
        # creation (record selection dominates it by orders of
        # magnitude).
        assert payload["dissemination"]["overhead_dissemination_pct"] < 10.0
        assert payload["dissemination"]["envelope_stamp_overhead_pct"] < 25.0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny CI-sized run")
    args = parser.parse_args()
    cfg = SMOKE if args.smoke else FULL
    payload = run_bench(cfg)
    payload["instrumentation"] = run_obs_overhead(cfg)
    payload["telemetry"] = run_telemetry_overhead(repeats=1 if args.smoke else 3)
    payload["dissemination"] = run_dissemination_overhead(
        repeats=1 if args.smoke else 3
    )
    if not args.smoke:
        payload["smoke_reference"] = smoke_reference()
        write_results(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
