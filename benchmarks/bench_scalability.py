"""Future-work scalability: BarterCast state at up to 100,000 peers.

Measures reputation-query and gossip-ingestion cost as the subjective
view grows, and asserts the property that makes the mechanism
"lightweight and practically feasible": query latency is bounded by peer
degree, not view size.
"""

import pytest

from repro.analysis.ascii_plot import render_table
from repro.experiments.scalability import run_scalability

SIZES = (1_000, 10_000, 50_000, 100_000)


@pytest.fixture(scope="module")
def scaling():
    return run_scalability(sizes=SIZES, seed=42)


def test_bench_scalability_sweep(benchmark):
    result = benchmark.pedantic(
        run_scalability,
        kwargs={"sizes": (1_000, 10_000), "queries": 100, "seed": 42},
        rounds=1,
        iterations=1,
    )
    assert len(result.points) == 2


def test_scalability_curve(scaling, capsys):
    rows = [
        (p.num_peers, p.num_edges, p.query_us, p.ingest_us)
        for p in scaling.points
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                ["known peers", "edges", "query us", "ingest us/record"],
                rows,
                "{:.1f}",
            )
        )
    # 100k peers ingested and queryable.
    assert scaling.points[-1].num_peers == 100_000
    assert scaling.points[-1].num_edges > 100_000


def test_query_cost_is_degree_bounded(scaling):
    """100x more peers must not cost anywhere near 100x per query —
    the 2-hop closed form scans endpoint neighbourhoods only."""
    assert scaling.query_growth_factor() < 20.0


def test_queries_stay_sub_millisecond(scaling):
    assert scaling.points[-1].query_us < 1000.0
