"""Scalability of the subjective view: BarterCast state at up to 100,000 peers.

Two measurement families:

* **Gossip-grown curves** (``run_scalability``): a node's view grows by
  ingesting bounded-size gossip messages, then answers scalar/batch/warm
  reputation queries.  The dict backend is measured at small sizes, the
  columnar backend up to the paper's 100k-peer target.
* **Synthetic bulk-load point**: a 100k-peer / 10M-edge subjective graph
  loaded straight into the columnar backend's edge-slot log
  (``ColumnarTransferGraph.from_edge_arrays``), CSR materialization timed
  separately, batch queries answered by the array kernel.  Gossip alone
  cannot grow a view this dense in reasonable benchmark time; the bulk
  path shows the storage and kernel themselves hold up at that scale.

Run as a script to (re)generate the committed ``BENCH_scalability.json``:
each point runs in its own subprocess so ``ru_maxrss`` is a faithful
per-point peak-RSS figure rather than the orchestrator's high-water mark.

The pytest entry points below stay cheap and assert the headline claim —
query latency bounded by degree, not view size.
"""

import json
import resource
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.ascii_plot import render_table
from repro.experiments.scalability import run_scalability

pytestmark = pytest.mark.bench

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scalability.json"

SIZES = (1_000, 10_000, 50_000, 100_000)

#: Gossip-grown measurement points: dict stays at small sizes (it is the
#: oracle, not the scaling backend), columnar goes to the paper's target.
GROWN_POINTS = [
    ("dict", 1_000),
    ("dict", 10_000),
    ("columnar", 1_000),
    ("columnar", 10_000),
    ("columnar", 50_000),
    ("columnar", 100_000),
]

SYNTHETIC_PEERS = 100_000
SYNTHETIC_EDGES = 10_000_000


# ---------------------------------------------------------------------------
# Per-point measurements (each runs inside its own subprocess)
# ---------------------------------------------------------------------------


def _peak_rss_mb() -> float:
    """Peak resident set size of this process in MiB (linux: KiB units)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def measure_grown(backend: str, size: int, seed: int = 42) -> dict:
    """One gossip-grown point: grow a fresh view to ``size`` peers."""
    t0 = time.perf_counter()
    result = run_scalability(sizes=(size,), seed=seed, backend=backend)
    total_s = time.perf_counter() - t0
    p = result.points[-1]
    return {
        "kind": "grown",
        "backend": backend,
        "num_peers": p.num_peers,
        "num_edges": p.num_edges,
        "ingest_us_per_record": p.ingest_us,
        "query_us": p.query_us,
        "batch_query_us": p.batch_query_us,
        "warm_query_us": p.warm_query_us,
        "csr_build_ms": p.csr_build_ms,
        "total_seconds": total_s,
        "peak_rss_mb": _peak_rss_mb(),
    }


def measure_synthetic(
    num_peers: int = SYNTHETIC_PEERS,
    num_edges: int = SYNTHETIC_EDGES,
    queries: int = 200,
    seed: int = 42,
) -> dict:
    """The bulk-load point: ``num_edges`` unique random edges at once."""
    from repro.core.reputation import MB
    from repro.graph.batch import maxflow_two_hop_batch
    from repro.graph.columnar import ColumnarTransferGraph

    gen = np.random.default_rng(seed)
    # Oversample, then keep the first num_edges unique non-loop pairs.
    want = int(num_edges * 1.2) + 16
    src = gen.integers(0, num_peers, size=want, dtype=np.int64)
    dst = gen.integers(0, num_peers, size=want, dtype=np.int64)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    _, first = np.unique(src * num_peers + dst, return_index=True)
    first.sort()
    first = first[:num_edges]
    src, dst = src[first], dst[first]
    val = gen.uniform(1.0, 500.0, size=src.shape[0]) * MB

    t0 = time.perf_counter()
    graph = ColumnarTransferGraph.from_edge_arrays(num_peers, src, dst, val)
    load_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    graph.build_csr()
    csr_build_s = time.perf_counter() - t0

    owner = 0
    targets = [int(t) for t in gen.integers(1, num_peers, size=queries)]
    t0 = time.perf_counter()
    results = maxflow_two_hop_batch(graph, owner, targets)
    batch_query_us = (time.perf_counter() - t0) / queries * 1e6
    assert len(results) == len(set(targets))

    return {
        "kind": "synthetic",
        "backend": "columnar",
        "num_peers": num_peers,
        "num_edges": int(graph.num_edges),
        "bulk_load_seconds": load_s,
        "csr_build_seconds": csr_build_s,
        "batch_query_us": batch_query_us,
        "peak_rss_mb": _peak_rss_mb(),
    }


def _run_point_subprocess(spec: dict) -> dict:
    """Run one measurement point in a fresh interpreter (clean RSS)."""
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--point", json.dumps(spec)],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def run_full(smoke: bool = False) -> dict:
    """All points, one subprocess each; returns the artifact payload."""
    if smoke:
        grown = [("dict", 500), ("columnar", 500)]
        synthetic = {"kind": "synthetic", "num_peers": 2_000, "num_edges": 50_000}
    else:
        grown = GROWN_POINTS
        synthetic = {
            "kind": "synthetic",
            "num_peers": SYNTHETIC_PEERS,
            "num_edges": SYNTHETIC_EDGES,
        }
    points = []
    for backend, size in grown:
        spec = {"kind": "grown", "backend": backend, "size": size}
        points.append(_run_point_subprocess(spec))
    synthetic_point = _run_point_subprocess(synthetic)
    return {
        "seed": 42,
        "grown": points,
        "synthetic": synthetic_point,
    }


def _execute_point(spec: dict) -> dict:
    if spec["kind"] == "grown":
        return measure_grown(spec["backend"], spec["size"])
    return measure_synthetic(
        num_peers=spec["num_peers"], num_edges=spec["num_edges"]
    )


# ---------------------------------------------------------------------------
# Pytest entry points (cheap; the committed artifact comes from __main__)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def scaling():
    return run_scalability(sizes=(1_000, 10_000), seed=42, backend="columnar")


def test_bench_scalability_sweep(benchmark):
    result = benchmark.pedantic(
        run_scalability,
        kwargs={
            "sizes": (1_000, 10_000),
            "queries": 100,
            "seed": 42,
            "backend": "columnar",
        },
        rounds=1,
        iterations=1,
    )
    assert len(result.points) == 2


def test_scalability_curve(scaling, capsys):
    rows = [
        (p.num_peers, p.num_edges, p.query_us, p.batch_query_us, p.ingest_us)
        for p in scaling.points
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                ["known peers", "edges", "query us", "batch us", "ingest us/record"],
                rows,
                "{:.1f}",
            )
        )
    assert scaling.points[-1].num_peers == 10_000
    assert scaling.points[-1].num_edges > 10_000


def test_query_cost_is_degree_bounded(scaling):
    """10x more peers must not cost anywhere near 10x per query —
    the 2-hop closed form scans endpoint neighbourhoods only."""
    assert scaling.query_growth_factor() < 20.0


def test_queries_stay_sub_millisecond(scaling):
    assert scaling.points[-1].query_us < 1000.0


def test_backends_agree_at_smoke_scale():
    """Grown curves are bit-identical across backends (the columnar
    backend changes costs, never values) — checked on the cheap sizes."""
    a = run_scalability(sizes=(500,), queries=50, seed=7, backend="dict")
    b = run_scalability(sizes=(500,), queries=50, seed=7, backend="columnar")
    assert a.points[-1].num_edges == b.points[-1].num_edges


def test_synthetic_point_smoke():
    point = measure_synthetic(num_peers=1_000, num_edges=20_000, queries=25)
    assert point["num_edges"] == 20_000
    assert point["batch_query_us"] > 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes, no write")
    parser.add_argument("--point", help="internal: one measurement spec (JSON)")
    args = parser.parse_args()
    if args.point:
        print(json.dumps(_execute_point(json.loads(args.point))))
        sys.exit(0)
    payload = run_full(smoke=args.smoke)
    if not args.smoke:
        RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
