"""Ablation: the path-length bound of the maxflow computation.

The paper limits augmenting paths to length 2, citing the small-world
property of P2P transfer graphs (98 % of peer pairs within two hops).
This bench quantifies, on a crawl-scale subjective graph, (a) how much
flow value the bound gives up relative to exact maxflow, and (b) how much
cheaper it is — the trade the paper claims is worth making.
"""

import numpy as np
import pytest

from repro.deployment.crawl import MeasurementCrawl
from repro.deployment.network import DeploymentNetwork, DeploymentParams
from repro.graph.maxflow import bounded_ford_fulkerson, ford_fulkerson, maxflow_two_hop


@pytest.fixture(scope="module")
def crawl_graph():
    """The measurement peer's subjective graph after a (small) crawl."""
    network = DeploymentNetwork(DeploymentParams(num_peers=500), seed=11)
    result = MeasurementCrawl(network, seed=11).run()
    return result.node.graph, network.measurement_id, result.seen_peers[:60]


def test_bench_pathlen_two_hop(benchmark, crawl_graph):
    graph, me, targets = crawl_graph
    benchmark(lambda: [maxflow_two_hop(graph, t, me).value for t in targets])


def test_bench_pathlen_bounded_k2(benchmark, crawl_graph):
    graph, me, targets = crawl_graph
    benchmark(
        lambda: [bounded_ford_fulkerson(graph, t, me, max_hops=2).value for t in targets]
    )


def test_bench_pathlen_exact(benchmark, crawl_graph):
    graph, me, targets = crawl_graph
    benchmark(lambda: [ford_fulkerson(graph, t, me).value for t in targets])


def test_two_hop_coverage_and_bound(crawl_graph, capsys):
    """Where the small-world claim holds and where it does not.

    The paper cites 98 % of *actively bartering* peer pairs being within
    two hops — a property of dense community transfer graphs.  A thin
    measurement vantage over a sparse synthetic deployment covers far
    fewer pairs (measured below), which is exactly why Figure 4(b) has a
    large ≈0 mass: most judgments at a single peer rest on direct history
    or fail closed to 0, never on long speculative paths.  The bound
    itself (2-hop ≤ exact) must hold everywhere.
    """
    graph, me, targets = crawl_graph
    two_hop = np.array([maxflow_two_hop(graph, t, me).value for t in targets])
    exact = np.array([ford_fulkerson(graph, t, me).value for t in targets])
    reachable = exact > 0
    assert (two_hop <= exact + 1e-6).all()
    if reachable.any():
        pair_coverage = float((two_hop[reachable] > 0).mean())
        value_coverage = float(two_hop[reachable].sum() / exact[reachable].sum())
        with capsys.disabled():
            print()
            print(f"reachable targets: {int(reachable.sum())}/{len(targets)}  "
                  f"pair coverage: {pair_coverage:.2f}  value coverage: {value_coverage:.3f}")
        # Sparse-vantage coverage is real but partial.
        assert pair_coverage > 0.15
