"""Ablation: the peer-sampling service.

The paper treats the PSS as transparent to BarterCast ("the actual
implementation of such a service is transparent to BarterCast").  This
ablation verifies that claim empirically: running the same community with
the epidemic BuddyCast sampler vs an ideal global-knowledge oracle must
yield the same qualitative reputation outcome (sharers above freeriders),
with BuddyCast paying only a modest information deficit.
"""

import numpy as np
import pytest

from repro.bittorrent.simulator import CommunitySimulator
from repro.core.policies import NoPolicy
from repro.experiments import ScenarioConfig


def run_with_pss(kind: str, seed: int = 31):
    scenario = ScenarioConfig.tiny(seed=seed)
    trace = scenario.make_trace()
    roles = scenario.make_roles(trace)
    sim = CommunitySimulator(
        trace,
        roles,
        policy=NoPolicy(),
        config=scenario.bt_config,
        bc_config=scenario.bc_config,
        seed=seed,
        pss=kind,
    )
    sim.run()
    snap = sim.system_reputation_snapshot()
    sharer = float(np.mean([snap[p] for p in roles.sharers]))
    freerider = float(np.mean([snap[p] for p in roles.freeriders]))
    knowledge = float(np.mean([sim.nodes[p].known_peers for p in roles.subjects]))
    return {
        "separation": sharer - freerider,
        "knowledge": knowledge,
        "messages": sum(n.messages_received for n in sim.nodes.values()),
    }


@pytest.fixture(scope="module")
def outcomes():
    return {kind: run_with_pss(kind) for kind in ("buddycast", "oracle")}


def test_bench_pss_buddycast(benchmark):
    result = benchmark.pedantic(run_with_pss, args=("buddycast",), rounds=1, iterations=1)
    assert result["messages"] > 0


def test_pss_transparency(outcomes, capsys):
    with capsys.disabled():
        print()
        for kind, o in outcomes.items():
            print(
                f"{kind:10s} separation={o['separation']:+.4f} "
                f"avg known peers={o['knowledge']:.1f} messages={o['messages']}"
            )
    # Both samplers produce the qualitative result...
    for o in outcomes.values():
        assert o["separation"] > 0.0
    # ...and the epidemic sampler is within 2x of the oracle's information
    # spread (partial views cost something, but not the outcome).
    assert outcomes["buddycast"]["knowledge"] > 0.4 * outcomes["oracle"]["knowledge"]
