"""Micro-benchmarks of the simulation substrate.

Event-queue throughput and gossip-round cost bound how far the community
simulator scales (the paper's future work targets 100,000 peers; these
numbers say what that costs on this kernel).
"""

import pytest

from repro.core.node import BarterCastNode
from repro.core.reputation import MB
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


def test_bench_event_queue_throughput(benchmark):
    """Schedule+fire cycles per second on a busy queue."""

    def run():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return count

    assert benchmark(run) == 10_000


def test_bench_message_exchange(benchmark):
    """Full gossip exchange (create + ingest both ways) between two mature
    nodes with busy histories."""
    rng = RngRegistry(5).stream("bench")
    a = BarterCastNode("a")
    b = BarterCastNode("b")
    for i in range(200):
        a.record_download(f"p{i}", rng.uniform(1, 500) * MB, now=float(i))
        b.record_upload(f"q{i}", rng.uniform(1, 500) * MB, now=float(i))

    def exchange():
        msg_a = a.create_message(now=1000.0)
        msg_b = b.create_message(now=1000.0)
        applied = b.receive_message(msg_a) + a.receive_message(msg_b)
        return applied

    benchmark(exchange)


def test_bench_reputation_query_cached(benchmark):
    """Repeated reputation queries hit the per-version cache."""
    node = BarterCastNode("me")
    for i in range(100):
        node.record_download(f"p{i}", 100 * MB, now=float(i))

    def query():
        return node.reputation_of("p50")

    benchmark(query)


def test_bench_reputation_query_cold(benchmark):
    """Worst case: the graph changes between queries (cache miss)."""
    node = BarterCastNode("me")
    for i in range(100):
        node.record_download(f"p{i}", 100 * MB, now=float(i))
    counter = [0]

    def query():
        counter[0] += 1
        node.record_download("p0", 1.0, now=1e6 + counter[0])  # invalidate
        return node.reputation_of("p50")

    benchmark(query)
