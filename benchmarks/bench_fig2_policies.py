"""Figure 2: effectiveness of the rank and ban policies.

Regenerates the three panels on one paired population and checks the
paper's orderings:

* the ban policy suppresses freerider download speed relative to the
  no-policy baseline;
* ban suppresses freeriders more than rank does (panel a vs b);
* the δ sweep (panel c) is ordered: a stricter threshold (closer to 0)
  suppresses freeriders at least as much as a laxer one.
"""

import numpy as np
import pytest

from repro.core.policies import NoPolicy
from repro.experiments import build_simulation, run_fig2
from repro.experiments.report import report_fig2

KB = 1024.0


def final_defined(series):
    vals = series[~np.isnan(series)]
    return vals[-1] if vals.size else float("nan")


@pytest.fixture(scope="module")
def fig2_result(scenario):
    return run_fig2(scenario)


@pytest.fixture(scope="module")
def baseline_speeds(scenario):
    """No-policy reference speeds on the same population."""
    sim = build_simulation(scenario, policy=NoPolicy())
    stats = sim.run()
    return {
        "sharers": stats.group_mean_speed(sim.roles.sharers) / KB,
        "freeriders": stats.group_mean_speed(sim.roles.freeriders) / KB,
    }


def test_fig2a_rank(benchmark, scenario, fig2_result, capsys):
    result = benchmark.pedantic(run_fig2, args=(scenario,), kwargs={"deltas": (-0.5,)},
                                rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(report_fig2(fig2_result))
    # Rank policy produces speed series for both groups.
    assert np.isfinite(final_defined(result.rank["sharers"]))
    assert np.isfinite(final_defined(result.rank["freeriders"]))


def test_fig2b_ban(fig2_result, baseline_speeds):
    """Ban policy suppresses freeriders vs the no-policy baseline.

    Compare like for like: the final value of the cumulative speed series
    is exactly the whole-run aggregate the baseline reports.
    """
    ban_fr = final_defined(fig2_result.ban["freeriders"])
    assert ban_fr < baseline_speeds["freeriders"]


def test_fig2b_ban_stronger_than_rank(fig2_result):
    """Paper: 'the ban policy is therefore clearly superior'."""
    ban_fr = final_defined(fig2_result.ban["freeriders"])
    rank_fr = final_defined(fig2_result.rank["freeriders"])
    assert ban_fr <= rank_fr + 1e-9


def test_fig2c_delta_sweep(fig2_result):
    """Panel (c): freerider speed ordered by threshold strictness."""
    sweep = {d: np.nanmean(s) for d, s in fig2_result.delta_sweep.items()}
    # delta closer to 0 = stricter = slower freeriders.
    assert sweep[-0.3] <= sweep[-0.5] + 25.0  # small tolerance (KBps)
    assert sweep[-0.5] <= sweep[-0.7] + 25.0
