"""Figure 1: contribution versus reputation.

Regenerates both panels and checks the paper's qualitative claims:

* 1(a) — the average system reputation of sharers and freeriders diverges,
  sharers above freeriders;
* 1(b) — a peer's system reputation is consistent with its real net
  contribution (strong positive rank correlation).
"""

import numpy as np
import pytest

from repro.experiments import run_fig1
from repro.experiments.report import report_fig1


@pytest.fixture(scope="module")
def fig1_result(scenario):
    return run_fig1(scenario)


def test_fig1a(benchmark, scenario, capsys):
    """Panel (a): reputation divergence of sharers vs freeriders."""
    result = benchmark.pedantic(run_fig1, args=(scenario,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(report_fig1(result))
    # Sharers end above freeriders (paper: curves diverge quickly).
    assert result.final_separation > 0.0
    # Freeriders end negative, sharers non-negative on average.
    assert result.freerider_reputation[-1] < result.sharer_reputation[-1]


def test_fig1b(fig1_result):
    """Panel (b): reputation vs net contribution is consistent."""
    # Monotone consistency: the paper's scatter shows a clear monotone
    # relationship; Spearman rank correlation captures it.
    assert fig1_result.spearman > 0.6
    # The relationship has the right sign everywhere that matters: the
    # most negative contributors must not out-rank the most positive.
    order = np.argsort(fig1_result.net_contribution_gb)
    bottom = fig1_result.system_reputation[order[: max(1, len(order) // 4)]]
    top = fig1_result.system_reputation[order[-max(1, len(order) // 4):]]
    assert bottom.mean() < top.mean()


def test_fig1a_divergence_is_early(fig1_result):
    """The paper: 'the reputations quickly diverge'. By mid-run the groups
    must already be ordered."""
    mid = len(fig1_result.times_days) // 2
    assert fig1_result.sharer_reputation[mid] > fig1_result.freerider_reputation[mid]
