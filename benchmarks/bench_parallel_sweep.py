"""Parallel sweep benchmark: serial vs ``--jobs 2`` / ``--jobs 4``.

The workload is the fused ``all`` task pool — fig1, every fig2 policy
condition, both fig3 panels, fig4 — exactly what ``python -m repro.cli
all --jobs N`` fans out.  Each jobs level runs the identical task list;
the benchmark records wall-clock per level and verifies the payloads are
**bit-identical** across levels (the runner's core guarantee; see
DESIGN.md §8).

Honesty note: the speedup is bounded by the host — ``cpu_count`` is
recorded in the artifact, and the full-scale speedup floor is only
asserted when at least 4 cores are actually available.  On a 1-core
container the pooled runs are *slower* (fork + pickling overhead with no
parallelism to pay for it) and the artifact records that truthfully.

Run standalone (``python benchmarks/bench_parallel_sweep.py [--smoke]``)
or via pytest (``pytest benchmarks/bench_parallel_sweep.py -m bench
[--bench-smoke]``).  Full-scale results land in ``BENCH_parallel.json``
at the repository root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np
import pytest

from repro.experiments import ScenarioConfig
from repro.experiments.fig2 import fig2_tasks
from repro.experiments.fig3 import fig3_tasks
from repro.parallel import ParallelRunner, fig1_task, fig4_task, run_sweep

pytestmark = pytest.mark.bench

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

#: Full scale: the ``all --profile fast`` pool; smoke: tiny + fewer levels.
FULL_JOBS = (1, 2, 4)
SMOKE_JOBS = (1, 2)


def sweep_tasks(scenario: ScenarioConfig, fig4_peers: int) -> List[Any]:
    """The fused ``all`` task pool (mirrors ``cli._all_parallel``)."""
    return (
        [fig1_task(scenario)]
        + fig2_tasks(scenario)
        + fig3_tasks(scenario, "ignore")
        + fig3_tasks(scenario, "lie")
        + [fig4_task(fig4_peers, scenario.seed)]
    )


def _payloads_equal(a: Any, b: Any) -> bool:
    """Deep equality across the payload shapes the executors return
    (dicts/tuples/lists of scalars and numpy arrays; NaN == NaN)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and np.array_equal(a, b, equal_nan=a.dtype.kind == "f")
        )
    if isinstance(a, dict):
        return (
            isinstance(b, dict)
            and a.keys() == b.keys()
            and all(_payloads_equal(a[k], b[k]) for k in a)
        )
    if isinstance(a, (list, tuple)):
        return (
            isinstance(b, (list, tuple))
            and len(a) == len(b)
            and all(_payloads_equal(x, y) for x, y in zip(a, b))
        )
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)
    return bool(a == b)


def _results_equal(a: Any, b: Any) -> bool:
    """Compare two payloads, descending into result dataclasses."""
    if hasattr(a, "__dict__") and not isinstance(a, (dict, list, tuple, np.ndarray)):
        return type(a) is type(b) and _payloads_equal(vars(a), vars(b))
    return _payloads_equal(a, b)


def run_bench(scenario: ScenarioConfig, fig4_peers: int, jobs_levels) -> Dict[str, Any]:
    tasks = sweep_tasks(scenario, fig4_peers)
    timings: Dict[str, float] = {}
    reference: Optional[List[Any]] = None
    identical = True
    for jobs in jobs_levels:
        runner = ParallelRunner(jobs=jobs) if jobs > 1 else None
        t0 = time.perf_counter()
        payloads = run_sweep(tasks, runner=runner)
        timings[f"jobs_{jobs}"] = time.perf_counter() - t0
        if reference is None:
            reference = payloads
        else:
            identical = identical and len(payloads) == len(reference) and all(
                _results_equal(p, r) for p, r in zip(payloads, reference)
            )
    serial = timings["jobs_1"]
    return {
        "profile": scenario.name,
        "tasks": len(tasks),
        "cpu_count": os.cpu_count(),
        "seconds": timings,
        "speedups": {
            level: serial / seconds
            for level, seconds in timings.items()
            if level != "jobs_1"
        },
        "identical_payloads": identical,
    }


def write_results(payload: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_bench_parallel_sweep(bench_smoke, tmp_path):
    if bench_smoke:
        payload = run_bench(ScenarioConfig.tiny(), fig4_peers=200, jobs_levels=SMOKE_JOBS)
        write_results(payload, tmp_path / "BENCH_parallel.json")
    else:
        payload = run_bench(ScenarioConfig.fast(), fig4_peers=1000, jobs_levels=FULL_JOBS)
        write_results(payload)
    assert payload["identical_payloads"]
    for seconds in payload["seconds"].values():
        assert seconds > 0
    # The speedup floor only means something with real cores under it.
    if not bench_smoke and (os.cpu_count() or 1) >= 4:
        assert payload["speedups"]["jobs_4"] >= 2.5


if __name__ == "__main__":  # pragma: no cover - manual entry point
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny CI-sized run")
    args = parser.parse_args()
    if args.smoke:
        payload = run_bench(ScenarioConfig.tiny(), fig4_peers=200, jobs_levels=SMOKE_JOBS)
    else:
        payload = run_bench(ScenarioConfig.fast(), fig4_peers=1000, jobs_levels=FULL_JOBS)
        write_results(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
