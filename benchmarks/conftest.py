"""Shared fixtures for the benchmark suite.

Every figure bench runs on the ``fast`` scenario profile (seconds-to-
minutes per condition) and prints the regenerated series in the paper's
format; EXPERIMENTS.md records a full-scale (``paper`` profile) run made
through the CLI.  Micro-benchmarks measure the hot kernels directly.
"""

from __future__ import annotations

import pytest

from repro.experiments import ScenarioConfig


def pytest_addoption(parser):
    parser.addoption(
        "--profile",
        action="store",
        default="fast",
        choices=("tiny", "fast", "paper"),
        help="scenario scale for the figure benchmarks",
    )
    parser.addoption(
        "--bench-smoke",
        action="store_true",
        default=False,
        help="run marker-gated benches at a tiny CI-sized scale",
    )


@pytest.fixture(scope="session")
def scenario(request) -> ScenarioConfig:
    """The scenario profile all figure benches share."""
    return ScenarioConfig.named(request.config.getoption("--profile"), seed=42)


@pytest.fixture(scope="session")
def bench_smoke(request) -> bool:
    """Whether ``--bench-smoke`` was passed (shrink workloads for CI)."""
    return bool(request.config.getoption("--bench-smoke"))
