"""Ablation: the reputation metric's scaling function and unit.

The paper motivates arctan scaling ("a modest contribution of a new peer
significantly affects its reputation, and is not dwarfed in comparison
with the most active peers").  This ablation compares arctan against a
clipped-linear alternative on a deployment crawl, and sweeps the arctan
unit, reporting how well newcomers with modest contributions are
separated from heavy hitters.
"""

import numpy as np
import pytest

from repro.core.node import BarterCastConfig
from repro.core.reputation import MB, ReputationMetric
from repro.deployment.crawl import MeasurementCrawl
from repro.deployment.network import DeploymentNetwork, DeploymentParams


@pytest.fixture(scope="module")
def network():
    return DeploymentNetwork(DeploymentParams(num_peers=600), seed=31)


def crawl_with_metric(network, metric):
    cfg = BarterCastConfig(metric=metric)
    return MeasurementCrawl(network, bc_config=cfg, seed=31).run()


def test_bench_metric_arctan(benchmark, network):
    result = benchmark.pedantic(
        crawl_with_metric,
        args=(network, ReputationMetric(scaling="arctan")),
        rounds=1,
        iterations=1,
    )
    assert result.messages_logged > 0


def test_arctan_separates_modest_contributions(capsys):
    """A 50 MB newcomer contribution moves arctan reputation visibly,
    while a linear metric sized for the heavy hitters barely registers it."""
    arctan = ReputationMetric(scaling="arctan")
    # Linear ramp sized to cover the heavy hitters (full scale ~ 100 GB).
    linear = ReputationMetric(scaling="linear", unit_bytes=MB, linear_range=100_000.0)
    modest = 50 * MB
    heavy = 50_000 * MB
    with capsys.disabled():
        print()
        print("diff      arctan   linear")
        for diff in (modest, 10 * modest, heavy):
            print(f"{diff/MB:7.0f}MB  {arctan.scale(diff):.4f}  {linear.scale(diff):.4f}")
    assert arctan.scale(modest) > 10 * linear.scale(modest)
    # ... while both still rank the heavy hitter above the newcomer.
    assert arctan.scale(heavy) > arctan.scale(modest)


def test_unit_sweep_preserves_sign_fractions(network, capsys):
    """The negative/zero/positive split of the deployment CDF is robust to
    the unit choice (sign is unit-invariant); only magnitudes move."""
    fractions = {}
    for unit in (10 * MB, 100 * MB, 1024 * MB):
        result = crawl_with_metric(network, ReputationMetric(unit_bytes=unit))
        fractions[unit] = result.reputation_cdf_fractions(eps=1e-6)
    with capsys.disabled():
        print()
        for unit, f in fractions.items():
            print(
                f"unit={unit/MB:6.0f}MB  neg={f['negative']:.3f} "
                f"zero={f['zero']:.3f} pos={f['positive']:.3f}"
            )
    negs = [f["negative"] for f in fractions.values()]
    assert max(negs) - min(negs) < 0.02
