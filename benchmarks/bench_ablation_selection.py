"""Ablation: the message-selection windows Nh / Nr.

The paper fixes ``Nh = Nr = 10`` without sweeping them.  This ablation
runs the deployment crawl with different window sizes and reports how the
measurement peer's *coverage* (fraction of seen peers with a non-zero
reputation) and the rank consistency between reputation and ground-truth
net contribution respond — i.e., how much information the gossip selection
actually carries.
"""

import numpy as np
import pytest

from repro.analysis.stats import spearman_r
from repro.core.node import BarterCastConfig
from repro.deployment.crawl import MeasurementCrawl
from repro.deployment.network import DeploymentNetwork, DeploymentParams

WINDOWS = (2, 5, 10, 20)


@pytest.fixture(scope="module")
def network():
    return DeploymentNetwork(DeploymentParams(num_peers=800), seed=23)


def crawl_with_windows(network, n):
    cfg = BarterCastConfig(n_highest=n, n_recent=n)
    return MeasurementCrawl(network, bc_config=cfg, seed=23).run()


@pytest.fixture(scope="module")
def sweep(network):
    out = {}
    for n in WINDOWS:
        result = crawl_with_windows(network, n)
        reps = np.array([result.reputation[p] for p in result.seen_peers])
        nets = np.array([result.net_contribution[p] for p in result.seen_peers])
        nonzero = np.abs(reps) > 1e-6
        out[n] = {
            "coverage": float(nonzero.mean()),
            "consistency": spearman_r(nets[nonzero], reps[nonzero])
            if nonzero.sum() > 2
            else float("nan"),
        }
    return out


def test_bench_selection_paper_windows(benchmark, network):
    result = benchmark.pedantic(
        crawl_with_windows, args=(network, 10), rounds=1, iterations=1
    )
    assert result.messages_logged > 0


def test_selection_coverage_monotone(sweep, capsys):
    with capsys.disabled():
        print()
        print("Nh=Nr  coverage  consistency(nonzero)")
        for n in WINDOWS:
            print(f"{n:5d}  {sweep[n]['coverage']:.3f}     {sweep[n]['consistency']:.3f}")
    # Larger windows carry weakly more information.
    assert sweep[20]["coverage"] >= sweep[2]["coverage"] - 0.02


def test_paper_windows_are_sufficient(sweep):
    """Nh = Nr = 10 already achieves most of the Nh = Nr = 20 coverage —
    the paper's choice is on the plateau."""
    assert sweep[10]["coverage"] >= 0.8 * sweep[20]["coverage"]
