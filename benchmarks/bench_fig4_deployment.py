"""Figure 4: one month of (synthetic) Tribler deployment.

Regenerates both panels and checks the paper's observations:

* 4(a) — a majority of seen peers downloaded more than they uploaded, a
  cluster sits at exactly zero (fresh installs), and a few altruists
  contributed tens of gigabytes;
* 4(b) — the reputation CDF at the measurement peer has roughly 40 %
  negative, ~10 % positive, and a large mass at ≈ 0.
"""

import numpy as np
import pytest

from repro.deployment.network import DeploymentParams
from repro.experiments import run_fig4
from repro.experiments.report import report_fig4

GB = 1024.0**3

PARAMS = DeploymentParams(num_peers=2000)


@pytest.fixture(scope="module")
def fig4_result():
    return run_fig4(PARAMS, seed=42)


def test_fig4a(benchmark, fig4_result, capsys):
    result = benchmark.pedantic(
        run_fig4, args=(PARAMS,), kwargs={"seed": 42}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(report_fig4(fig4_result))
    net = result.net_contribution
    # Majority net-negative.
    assert (net < 0).mean() > 0.5
    # A visible cluster at exactly zero (fresh installs).
    assert (net == 0).mean() > 0.05
    # Altruists with tens of GB.
    assert result.max_altruist_gb > 10.0


def test_fig4b(fig4_result):
    f = fig4_result.fractions
    # Paper: ~40 % negative / ~50 % zero / ~10 % positive.
    assert 0.25 < f["negative"] < 0.55
    assert 0.35 < f["zero"] < 0.70
    assert 0.03 < f["positive"] < 0.20
    # CDF is a valid distribution function.
    assert fig4_result.reputation_cdf[-1] == pytest.approx(1.0)
    assert (np.diff(fig4_result.reputation_cdf) >= 0).all()


def test_fig4b_more_negative_than_positive(fig4_result):
    assert fig4_result.fractions["negative"] > 2 * fig4_result.fractions["positive"]
