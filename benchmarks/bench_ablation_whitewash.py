"""Ablation: whitewashing countermeasures (paper §3.5 / future work).

Compares the three stranger policies under a whitewashing attack:
permanent identities (the deployed assumption), a static newcomer
penalty, and the adaptive stranger policy.  Prints the service each group
obtains and asserts the qualitative trade-off the paper's discussion
predicts.
"""

import pytest

from repro.analysis.ascii_plot import render_table
from repro.experiments.whitewash import WhitewashParams, run_whitewash

PARAMS = WhitewashParams(rounds=150)
KINDS = ("trusted", "static", "adaptive")


@pytest.fixture(scope="module")
def results():
    return {kind: run_whitewash(kind, PARAMS, seed=42) for kind in KINDS}


def test_bench_whitewash_adaptive(benchmark):
    result = benchmark.pedantic(
        run_whitewash, args=("adaptive", PARAMS), kwargs={"seed": 42},
        rounds=1, iterations=1,
    )
    assert result.policy == "adaptive"


def test_whitewash_tradeoff(results, capsys):
    rows = [
        (
            kind,
            results[kind].service["newcomer"],
            results[kind].service["washer"],
            results[kind].washer_advantage,
            results[kind].identities_burned,
            results[kind].prior_trajectory[-1],
        )
        for kind in KINDS
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                [
                    "stranger policy",
                    "newcomer units",
                    "washer units",
                    "washer/newcomer",
                    "ids burned",
                    "final prior",
                ],
                rows,
                "{:.2f}",
            )
        )
    # Permanent identities: whitewashing is essentially free.
    assert results["trusted"].washer_advantage > 0.5
    # Adaptive policy: whitewashers suppressed well below the trusted case.
    assert results["adaptive"].washer_advantage < 0.5 * results["trusted"].washer_advantage
    # Honest newcomers keep most of their service under every policy.
    for kind in KINDS:
        assert results[kind].service["newcomer"] > 0.5 * results["trusted"].service["newcomer"]
