"""Micro-benchmarks of the maxflow kernels.

The 2-hop closed form is BarterCast's online hot path (evaluated on every
choke decision under the rank/ban policies); these benches quantify its
advantage over the generic kernels and over networkx on graphs of the
size a peer's subjective view actually reaches.
"""

import networkx as nx
import numpy as np
import pytest

from repro.graph.maxflow import (
    bounded_ford_fulkerson,
    ford_fulkerson,
    maxflow_two_hop,
)
from repro.graph.transfer_graph import TransferGraph


def random_graph(num_nodes: int, avg_degree: float, seed: int) -> TransferGraph:
    rng = np.random.default_rng(seed)
    g = TransferGraph()
    for node in range(num_nodes):
        g.add_node(node)
    num_edges = int(num_nodes * avg_degree)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    weights = rng.lognormal(18.0, 1.5, size=num_edges)  # ~ MB-GB in bytes
    for s, d, w in zip(src, dst, weights):
        if s != d:
            g.add_transfer(int(s), int(d), float(w))
    return g


@pytest.fixture(scope="module")
def local_view():
    """A graph the size of a mature subjective view (hundreds of peers)."""
    return random_graph(num_nodes=300, avg_degree=12.0, seed=7)


def test_bench_two_hop_kernel(benchmark, local_view):
    result = benchmark(lambda: maxflow_two_hop(local_view, 0, 1).value)
    assert result >= 0.0


def test_bench_bounded_ford_fulkerson(benchmark, local_view):
    result = benchmark(
        lambda: bounded_ford_fulkerson(local_view, 0, 1, max_hops=2).value
    )
    assert result >= 0.0


def test_bench_exact_ford_fulkerson(benchmark, local_view):
    result = benchmark(lambda: ford_fulkerson(local_view, 0, 1).value)
    assert result >= 0.0


def test_bench_networkx_reference(benchmark, local_view):
    nxg = local_view.to_networkx()

    def run():
        value, _ = nx.maximum_flow(nxg, 0, 1, capacity="capacity")
        return value

    result = benchmark(run)
    assert result >= 0.0


def test_two_hop_equals_bounded_on_bench_graph(local_view):
    """Correctness guard for the kernels being compared."""
    for sink in range(1, 20):
        a = maxflow_two_hop(local_view, 0, sink).value
        b = bounded_ford_fulkerson(local_view, 0, sink, max_hops=2).value
        assert a == pytest.approx(b, rel=1e-9, abs=1e-6)
