"""CI bench regression gate: fresh smoke run vs the committed artifacts.

The committed ``BENCH_reputation.json`` / ``BENCH_parallel.json`` record
the perf trajectory, but nothing made CI *fail* when a change quietly
slowed the hot path down.  This script closes that gap:

* **reputation engine** — rerun the cache bench at smoke scale and
  compare the dirty+batch and columnar *speedup ratios* (each variant vs
  the wholesale_scalar baseline, same host, same scale) against the
  artifact's ``smoke_reference`` section.  Ratios cancel host speed, so
  a CI runner can be compared against the reference machine; a fresh
  ratio more than ``--threshold`` (default 30 %) below the committed one
  means that engine path itself regressed, and the script exits
  non-zero.
* **parallel sweep** — rerun the sweep pool at smoke scale with
  ``--jobs 2`` and compare the jobs_2 speedup against the committed
  ``BENCH_parallel.json``.  The committed artifact may come from a
  host with fewer cores (``cpu_count`` is recorded), in which case any
  multi-core runner clears it easily — the check guards against
  machinery regressions (task pickling blowups, serialization on the
  merge path), not against scheduling noise.

Timing on starved runners is noise: with fewer than 4 CPU cores the
gate **skips with a notice** (exit 0) unless ``--force`` is given.
Pass ``--skip-parallel`` to check only the reputation engine (the
parallel smoke sweep costs tens of seconds).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPUTATION_ARTIFACT = REPO_ROOT / "BENCH_reputation.json"
PARALLEL_ARTIFACT = REPO_ROOT / "BENCH_parallel.json"

#: Default tolerated relative slowdown of the dirty+batch speedup ratio.
DEFAULT_THRESHOLD = 0.30


def _load(path: Path) -> dict:
    if not path.exists():
        raise SystemExit(f"missing committed artifact {path}; run the full bench first")
    return json.loads(path.read_text())


def check_reputation(threshold: float) -> bool:
    """Fresh smoke dirty+batch speedup vs the committed smoke reference."""
    from bench_reputation_cache import SMOKE_REFERENCE, run_bench

    committed = _load(REPUTATION_ARTIFACT)
    reference = committed.get("smoke_reference")
    if reference is None:
        print(
            "[bench-gate] BENCH_reputation.json predates the smoke_reference "
            "section; regenerate the full bench to arm the reputation gate"
        )
        return True
    fresh = run_bench(SMOKE_REFERENCE)
    fresh_ratio = fresh["speedup_dirty_batch"]
    committed_ratio = reference["speedup_dirty_batch"]
    floor = committed_ratio * (1.0 - threshold)
    ok = fresh_ratio >= floor
    print(
        f"[bench-gate] reputation dirty+batch speedup: fresh {fresh_ratio:.2f}x "
        f"vs committed {committed_ratio:.2f}x (floor {floor:.2f}x) -> "
        f"{'ok' if ok else 'REGRESSION'}"
    )
    # Columnar-vs-scalar smoke gate: same ratio discipline for the
    # columnar backend.  Graceful on artifacts from before the backend
    # landed (no committed ratio -> nothing to compare against).
    committed_columnar = reference.get("speedup_columnar_batch")
    if committed_columnar is not None:
        fresh_columnar = fresh["speedup_columnar_batch"]
        col_floor = committed_columnar * (1.0 - threshold)
        col_ok = fresh_columnar >= col_floor
        print(
            f"[bench-gate] reputation columnar speedup: fresh "
            f"{fresh_columnar:.2f}x vs committed {committed_columnar:.2f}x "
            f"(floor {col_floor:.2f}x) -> {'ok' if col_ok else 'REGRESSION'}"
        )
        ok = ok and col_ok
    else:
        print(
            "[bench-gate] no committed columnar smoke ratio yet; "
            "columnar gate unarmed"
        )
    return ok


def check_telemetry(budget: float = 0.10) -> bool:
    """Fresh telemetry-overhead probe against the absolute budget.

    Unlike the ratio gates this is not compared against the committed
    artifact: the budget is a hard product guarantee (timeseries +
    profiler on must cost <= ``budget`` over a plain run), so we measure
    it directly.  Best-of-3 per mode; a measured overhead below the
    budget passes even if the committed number differs.
    """
    from bench_reputation_cache import run_telemetry_overhead

    fresh = run_telemetry_overhead(repeats=3)
    overhead = fresh["overhead_telemetry_pct"]
    ok = overhead <= budget * 100.0
    print(
        f"[bench-gate] telemetry overhead (timeseries+profile vs plain): "
        f"{overhead:+.1f}% (budget {budget:.0%}) -> "
        f"{'ok' if ok else 'REGRESSION'}"
    )
    return ok


def check_dissemination(budget: float = 0.10) -> bool:
    """Fresh dissemination-overhead probe against the absolute budget.

    Same discipline as :func:`check_telemetry`: recording per-claim
    dissemination DAGs must cost <= ``budget`` over a plain run, and the
    always-on causal-envelope stamp must stay noise over raw message
    creation.  Measured fresh rather than compared against the committed
    artifact — the budget is a product guarantee.  The probe times the
    fig1 ``fast`` profile (the smallest profile used for real figures)
    as interleaved pairs on process CPU time: the tiny CI shrink is
    sub-second, where machine noise alone straddles the gate.
    """
    from bench_reputation_cache import run_dissemination_overhead

    fresh = run_dissemination_overhead(repeats=2)
    overhead = fresh["overhead_dissemination_pct"]
    stamp_us = fresh["envelope_stamp_us_per_message"]
    ok = overhead <= budget * 100.0
    print(
        f"[bench-gate] dissemination overhead (recording vs plain): "
        f"{overhead:+.1f}% (budget {budget:.0%}); envelope stamp "
        f"{stamp_us:.2f}us/message -> {'ok' if ok else 'REGRESSION'}"
    )
    return ok


def check_parallel(threshold: float) -> bool:
    """Fresh smoke --jobs 2 speedup vs the committed parallel artifact."""
    from bench_parallel_sweep import run_bench as run_parallel_bench

    from repro.experiments import ScenarioConfig

    committed = _load(PARALLEL_ARTIFACT)
    committed_speedup = committed["speedups"]["jobs_2"]
    fresh = run_parallel_bench(
        ScenarioConfig.tiny(), fig4_peers=200, jobs_levels=(1, 2)
    )
    if not fresh["identical_payloads"]:
        print("[bench-gate] parallel sweep payloads diverged across job levels")
        return False
    fresh_speedup = fresh["speedups"]["jobs_2"]
    floor = committed_speedup * (1.0 - threshold)
    ok = fresh_speedup >= floor
    print(
        f"[bench-gate] parallel jobs_2 speedup: fresh {fresh_speedup:.2f}x "
        f"vs committed {committed_speedup:.2f}x "
        f"(committed on {committed.get('cpu_count')} core(s), floor {floor:.2f}x) -> "
        f"{'ok' if ok else 'REGRESSION'}"
    )
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="tolerated relative slowdown before failing (default 0.30)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="run even on hosts with fewer than 4 CPU cores",
    )
    parser.add_argument(
        "--skip-parallel",
        action="store_true",
        help="check only the reputation engine (skip the sweep smoke run)",
    )
    parser.add_argument(
        "--telemetry-budget",
        type=float,
        default=0.10,
        help="tolerated telemetry-on slowdown over a plain run (default 0.10)",
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    if cores < 4 and not args.force:
        print(
            f"[bench-gate] skipped: only {cores} CPU core(s) available; "
            "timing ratios on starved runners are noise (use --force to run anyway)"
        )
        return 0

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    ok = check_reputation(args.threshold)
    ok = check_telemetry(args.telemetry_budget) and ok
    ok = check_dissemination(args.telemetry_budget) and ok
    if not args.skip_parallel:
        ok = check_parallel(args.threshold) and ok
    if not ok:
        print(
            f"[bench-gate] FAILED: a hot path slowed down by more than "
            f"{args.threshold:.0%} relative to the committed artifact"
        )
        return 1
    print("[bench-gate] all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
