"""Figure 3: disobeying the message protocol.

Regenerates the two disobedience sweeps under the ban policy (δ = −0.5)
and checks the paper's claims:

* (a) ignoring the message protocol does not significantly change the
  system's effectiveness — the sharers' information base survives;
* (b) lying degrades effectiveness as the liar fraction grows, but the
  freeriders do not end up *faster* than sharers for moderate fractions.
"""

import numpy as np
import pytest

from repro.experiments import run_fig3
from repro.experiments.report import report_fig3

PCTS = (0, 20, 40)


@pytest.fixture(scope="module")
def fig3a(scenario):
    return run_fig3(scenario, kind="ignore", percentages=PCTS)


@pytest.fixture(scope="module")
def fig3b(scenario):
    return run_fig3(scenario, kind="lie", percentages=PCTS)


def test_fig3a_ignore(benchmark, scenario, fig3a, capsys):
    result = benchmark.pedantic(
        run_fig3, args=(scenario,),
        kwargs={"kind": "ignore", "percentages": (0, 40)},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(report_fig3(fig3a))
    assert result.kind == "ignore"


def test_fig3a_ignorers_do_not_break_effectiveness(fig3a):
    """Paper: 'this behaviour does not significantly change the
    effectiveness of our reputation system'."""
    rel = fig3a.relative_freerider_speed()
    # Freerider relative speed at the largest ignore fraction stays within
    # 35 percentage points of the no-ignorer case.
    assert abs(rel[-1] - rel[0]) < 0.35


def test_fig3b_lie(fig3b, capsys):
    with capsys.disabled():
        print()
        print(report_fig3(fig3b))
    assert fig3b.kind == "lie"
    assert np.isfinite(fig3b.freerider_speed_kbps).all()


def test_fig3b_lying_does_not_collapse_sharers(fig3b):
    """Sharers keep a healthy absolute speed even with many liars."""
    assert (fig3b.sharer_speed_kbps > 50.0).all()
