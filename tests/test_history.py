"""Unit tests for the private history ledger."""

import pytest

from repro.core.history import PrivateHistory, TransferTotals


class TestRecording:
    def test_empty_ledger(self):
        h = PrivateHistory("me")
        assert len(h) == 0
        assert h.total_uploaded == 0.0
        assert h.total_downloaded == 0.0
        assert h.net_contribution == 0.0

    def test_upload_accumulates(self):
        h = PrivateHistory("me")
        h.record_upload("p", 100.0, now=1.0)
        h.record_upload("p", 50.0, now=2.0)
        rec = h.get("p")
        assert rec.uploaded == 150.0
        assert rec.downloaded == 0.0
        assert rec.last_seen == 2.0

    def test_download_accumulates(self):
        h = PrivateHistory("me")
        h.record_download("p", 70.0, now=3.0)
        assert h.get("p").downloaded == 70.0
        assert h.total_downloaded == 70.0

    def test_net_contribution(self):
        h = PrivateHistory("me")
        h.record_upload("a", 100.0, now=1.0)
        h.record_download("b", 30.0, now=1.0)
        assert h.net_contribution == 70.0

    def test_last_seen_never_goes_backwards(self):
        h = PrivateHistory("me")
        h.record_upload("p", 1.0, now=10.0)
        h.record_upload("p", 1.0, now=5.0)
        assert h.get("p").last_seen == 10.0

    def test_touch_updates_last_seen_only(self):
        h = PrivateHistory("me")
        h.touch("p", 9.0)
        rec = h.get("p")
        assert rec.last_seen == 9.0
        assert rec.uploaded == 0.0 and rec.downloaded == 0.0

    def test_self_interaction_rejected(self):
        h = PrivateHistory("me")
        with pytest.raises(ValueError):
            h.record_upload("me", 1.0, now=0.0)
        with pytest.raises(ValueError):
            h.record_download("me", 1.0, now=0.0)
        with pytest.raises(ValueError):
            h.touch("me", 0.0)

    def test_negative_size_rejected(self):
        h = PrivateHistory("me")
        with pytest.raises(ValueError):
            h.record_upload("p", -1.0, now=0.0)

    def test_get_returns_copy(self):
        h = PrivateHistory("me")
        h.record_upload("p", 10.0, now=0.0)
        rec = h.get("p")
        rec.uploaded = 9999.0
        assert h.get("p").uploaded == 10.0

    def test_get_unknown_peer_zeros(self):
        h = PrivateHistory("me")
        rec = h.get("stranger")
        assert rec.uploaded == 0.0 and rec.downloaded == 0.0

    def test_contains(self):
        h = PrivateHistory("me")
        h.record_upload("p", 1.0, now=0.0)
        assert "p" in h
        assert "q" not in h


class TestSelections:
    @pytest.fixture
    def ledger(self):
        h = PrivateHistory("me")
        # downloads (peer uploads TO me): c > a > b
        h.record_download("a", 50.0, now=1.0)
        h.record_download("b", 10.0, now=2.0)
        h.record_download("c", 90.0, now=3.0)
        h.record_upload("d", 40.0, now=4.0)  # d uploaded nothing to me
        return h

    def test_top_uploaders_order(self, ledger):
        assert ledger.top_uploaders(2) == ["c", "a"]

    def test_top_uploaders_excludes_zero_upload(self, ledger):
        assert "d" not in ledger.top_uploaders(10)

    def test_top_uploaders_zero_n(self, ledger):
        assert ledger.top_uploaders(0) == []

    def test_most_recent_order(self, ledger):
        assert ledger.most_recent(2) == ["d", "c"]

    def test_most_recent_includes_non_uploaders(self, ledger):
        assert ledger.most_recent(1) == ["d"]

    def test_most_recent_zero_n(self, ledger):
        assert ledger.most_recent(0) == []

    def test_selection_deterministic_on_ties(self):
        h1 = PrivateHistory("me")
        h2 = PrivateHistory("me")
        for h in (h1, h2):
            for p in ("x", "y", "z"):
                h.record_download(p, 10.0, now=1.0)
        assert h1.top_uploaders(2) == h2.top_uploaders(2)
        assert h1.most_recent(2) == h2.most_recent(2)


class TestTransferTotals:
    def test_net(self):
        assert TransferTotals(uploaded=10.0, downloaded=3.0).net == 7.0

    def test_defaults(self):
        t = TransferTotals()
        assert t.uploaded == 0.0 and t.downloaded == 0.0 and t.last_seen == 0.0
