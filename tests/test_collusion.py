"""Security tests: collusion and sybil-style attacks on the gossip layer.

The paper deliberately does not target die-hard cheating, but its maxflow
argument makes a concrete promise: *the value of maxflow(j, i) is always
constrained by i's incoming edges*, which come only from i's own private
history.  These tests exercise that promise against stronger adversaries
than Figure 3's lone liars: rings of colluding identities that cross-vouch
arbitrarily large fake transfers.
"""

import pytest

from repro.core.messages import BarterCastMessage, HistoryRecord
from repro.core.node import BarterCastNode
from repro.core.reputation import MB

HUGE = 1e15


def ring_messages(members, t0=0.0):
    """Every ring member claims huge uploads to every other member."""
    messages = []
    for i, sender in enumerate(members):
        records = tuple(
            HistoryRecord(counterparty=other, uploaded=HUGE, downloaded=0.0)
            for other in members
            if other != sender
        )
        messages.append(BarterCastMessage(sender=sender, created_at=t0 + i, records=records))
    return messages


class TestCollusionRing:
    def test_isolated_ring_earns_nothing(self):
        """A ring with no real edges to the evaluator stays at reputation 0:
        fake internal volume creates no path into the evaluator."""
        evaluator = BarterCastNode("eva")
        ring = [f"sybil{i}" for i in range(5)]
        for message in ring_messages(ring):
            evaluator.receive_message(message)
        for member in ring:
            assert evaluator.reputation_of(member) == 0.0

    def test_ring_credit_capped_by_single_real_edge(self):
        """If one ring member really uploaded x to the evaluator, the whole
        ring's reputations are capped by scale(x) — the bottleneck edge."""
        evaluator = BarterCastNode("eva")
        ring = [f"sybil{i}" for i in range(5)]
        real = 30 * MB
        evaluator.record_download(ring[0], real, now=1.0)
        for message in ring_messages(ring, t0=2.0):
            evaluator.receive_message(message)
        cap = evaluator.config.metric.scale(real)
        for member in ring:
            assert evaluator.reputation_of(member) <= cap + 1e-12

    def test_ring_cannot_whitewash_a_debtor(self):
        """A ring member that really consumed from the evaluator keeps a
        negative reputation despite unlimited fake vouching."""
        evaluator = BarterCastNode("eva")
        ring = [f"sybil{i}" for i in range(4)]
        debtor = ring[0]
        evaluator.record_upload(debtor, 900 * MB, now=1.0)
        for message in ring_messages(ring, t0=2.0):
            evaluator.receive_message(message)
        # Ring vouching creates no path debtor -> evaluator (nobody the
        # evaluator downloaded from vouches), so the debt stands.
        assert evaluator.reputation_of(debtor) < -0.5

    def test_ring_laundering_through_real_intermediary_is_bottlenecked(self):
        """Sybils routing credit through a peer that really served the
        evaluator gain at most that peer's real service — once, not per
        sybil... in fact the shared bottleneck caps each sybil identically,
        and no amplification of total credit beyond the real edge occurs
        per evaluation."""
        evaluator = BarterCastNode("eva")
        evaluator.record_download("relay", 50 * MB, now=1.0)
        sybils = [f"sybil{i}" for i in range(6)]
        for i, sybil in enumerate(sybils):
            message = BarterCastMessage(
                sender=sybil,
                created_at=2.0 + i,
                records=(HistoryRecord("relay", uploaded=HUGE, downloaded=0.0),),
            )
            evaluator.receive_message(message)
        cap = evaluator.config.metric.scale(50 * MB)
        for sybil in sybils:
            assert 0.0 < evaluator.reputation_of(sybil) <= cap + 1e-12

    def test_victim_smearing_is_bounded_by_attacker_credibility(self):
        """An attacker claiming huge uploads *to a victim* can push the
        victim's reputation down only as far as the evaluator's real
        outgoing service can carry flow toward the victim."""
        evaluator = BarterCastNode("eva")
        victim = "victim"
        # The evaluator's only real outgoing edge: 20 MB to the attacker.
        evaluator.record_upload("attacker", 20 * MB, now=1.0)
        smear = BarterCastMessage(
            sender="attacker",
            created_at=2.0,
            records=(HistoryRecord(victim, uploaded=HUGE, downloaded=0.0),),
        )
        evaluator.receive_message(smear)
        # maxflow(eva -> victim) <= 20 MB, so the smear is bounded:
        floor = -evaluator.config.metric.scale(20 * MB)
        assert evaluator.reputation_of(victim) >= floor - 1e-12
        assert evaluator.reputation_of(victim) < 0.0  # the smear does bite

    def test_self_promotion_rejected_outright(self):
        """Records about the evaluator itself are ignored; a node cannot be
        made to believe it received service it never saw."""
        evaluator = BarterCastNode("eva")
        msg = BarterCastMessage(
            sender="attacker",
            created_at=1.0,
            records=(HistoryRecord("eva", uploaded=HUGE, downloaded=0.0),),
        )
        applied = evaluator.receive_message(msg)
        assert applied == 0
        assert evaluator.graph.capacity("attacker", "eva") == 0.0
