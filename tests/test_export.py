"""Tests for the figure-series exporters."""

import csv

import numpy as np
import pytest

from repro.analysis.export import (
    export_fig1,
    export_fig2,
    export_fig3,
    export_fig4,
    write_series,
)
from repro.experiments.fig1 import Fig1Result
from repro.experiments.fig2 import Fig2Result
from repro.experiments.fig3 import Fig3Result
from repro.experiments.fig4 import Fig4Result


@pytest.fixture
def fig1():
    return Fig1Result(
        times_days=np.array([0.5, 1.0]),
        sharer_reputation=np.array([0.01, 0.05]),
        freerider_reputation=np.array([-0.01, -0.04]),
        peer_ids=[1, 2],
        net_contribution_gb=np.array([1.0, -1.0]),
        system_reputation=np.array([0.3, -0.3]),
        spearman=1.0,
        pearson=1.0,
    )


@pytest.fixture
def fig2():
    days = np.array([0.5, 1.5])
    series = np.array([100.0, 200.0])
    return Fig2Result(
        days=days,
        rank={"sharers": series, "freeriders": series / 2},
        ban={"sharers": series, "freeriders": series / 3},
        ban_delta=-0.5,
        delta_sweep={-0.3: series / 3, -0.5: series / 2},
    )


@pytest.fixture
def fig3():
    return Fig3Result(
        kind="lie",
        percentages=np.array([0.0, 20.0]),
        sharer_speed_kbps=np.array([300.0, 280.0]),
        freerider_speed_kbps=np.array([150.0, 200.0]),
    )


@pytest.fixture
def fig4():
    values = np.array([-0.5, 0.0, 0.5])
    return Fig4Result(
        net_contribution=np.array([-100.0, 0.0, 50.0]),
        reputation_values=values,
        reputation_cdf=np.array([1 / 3, 2 / 3, 1.0]),
        fractions={"negative": 1 / 3, "zero": 1 / 3, "positive": 1 / 3},
        messages_logged=10,
        peers_seen=3,
    )


class TestExporters:
    def test_fig1_tables(self, fig1):
        tables = export_fig1(fig1)
        assert set(tables) == {
            "fig1a_reputation_over_time",
            "fig1b_contribution_vs_reputation",
        }
        assert tables["fig1a_reputation_over_time"]["rows"][0] == [0.5, 0.01, -0.01]

    def test_fig2_tables(self, fig2):
        tables = export_fig2(fig2)
        assert "fig2c_delta_sweep" in tables
        header = tables["fig2c_delta_sweep"]["header"]
        assert header[0] == "day"
        assert any("-0.3" in h for h in header)

    def test_fig3_key_tracks_kind(self, fig3):
        assert set(export_fig3(fig3)) == {"fig3b_lie"}

    def test_fig4_contribution_sorted(self, fig4):
        tables = export_fig4(fig4)
        rows = tables["fig4a_net_contribution"]["rows"]
        values = [r[1] for r in rows]
        assert values == sorted(values)


class TestWriteSeries:
    def test_tsv_round_trip(self, fig1, tmp_path):
        paths = write_series(export_fig1(fig1), tmp_path, fmt="tsv")
        assert len(paths) == 2
        text = paths[0].read_text().splitlines()
        assert text[0].startswith("# ")
        assert len(text) == 3  # header + 2 rows

    def test_csv_round_trip(self, fig1, tmp_path):
        paths = write_series(export_fig1(fig1), tmp_path, fmt="csv")
        with paths[0].open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["day", "sharers", "freeriders"]
        assert float(rows[1][0]) == 0.5

    def test_nan_rendered(self, fig2, tmp_path):
        fig2.rank["freeriders"] = np.array([np.nan, 100.0])
        paths = write_series(export_fig2(fig2), tmp_path, fmt="tsv")
        rank_file = [p for p in paths if "fig2a" in p.name][0]
        assert "nan" in rank_file.read_text()

    def test_unsupported_format(self, fig1, tmp_path):
        with pytest.raises(ValueError):
            write_series(export_fig1(fig1), tmp_path, fmt="xlsx")

    def test_creates_directory(self, fig1, tmp_path):
        target = tmp_path / "nested" / "dir"
        write_series(export_fig1(fig1), target)
        assert target.exists()
