"""Tests for reputation provenance & explainability.

The load-bearing guarantees of the provenance layer:

* **lineage replay** — for every live claim the recorded lineage is
  enough to reconstruct the exact materialized subjective-graph edge
  value (max over live claims), under arbitrary schedules of loss,
  duplication, delay and churn;
* **exact flow attribution** — ``maxflow_two_hop(record_paths=True)``
  returns ≤2-hop paths whose flows sum to the flow value bit-exactly,
  match an independent networkx oracle on a layered 2-hop graph, are
  edge-disjoint, and yield exact leave-one-out deltas with no re-solve;
* **null-object discipline** — provenance is off by default and a
  provenance-on run produces byte-identical figure exports to a
  provenance-off run (recording observes, never perturbs);
* **the CLI** — ``repro explain`` prints at least one claim-lineage
  entry and a path decomposition that sums to the maxflow value.
"""

import json

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import BarterCastMessage, HistoryRecord
from repro.core.sharedhistory import SubjectiveSharedHistory
from repro.experiments.scenario import ScenarioConfig, build_simulation
from repro.faults import FaultConfig, audit_simulation
from repro.graph.batch import maxflow_two_hop_batch
from repro.graph.maxflow import (
    bounded_ford_fulkerson,
    leave_one_out_values,
    maxflow_two_hop,
)
from repro.graph.transfer_graph import TransferGraph
from repro.obs.explain import explain_reputation, render_explanation, top_subjects
from repro.obs.provenance import (
    NULL_PROVENANCE,
    NullProvenanceRecorder,
    ProvenanceRecorder,
    provenance_totals_delta,
    snapshot_provenance_totals,
)


def make_store(provenance=True):
    graph = TransferGraph()
    recorder = ProvenanceRecorder() if provenance else None
    store = SubjectiveSharedHistory("me", graph, provenance=recorder)
    return store, recorder


def msg(sender, created_at, counterparty, up, down, msg_id=None):
    return BarterCastMessage(
        sender=sender,
        created_at=created_at,
        records=(HistoryRecord(counterparty, up, down),),
        msg_id=msg_id,
    )


# ---------------------------------------------------------------------------
# Claim lineage: unit-level semantics
# ---------------------------------------------------------------------------
class TestClaimLineage:
    def test_fresh_claim_carries_full_lineage(self):
        store, rec = make_store()
        store.ingest(msg("a", 10.0, "b", 100.0, 40.0, msg_id=("a", 1)), now=12.5)
        lineage = store.lineage_of("a", "b")
        assert set(lineage) == {"a"}
        entry = lineage["a"]
        assert entry.reporter == "a"
        assert entry.msg_id == ("a", 1)
        assert entry.value == 100.0
        assert entry.reported_at == 10.0
        assert entry.received_at == 12.5
        assert entry.hops == 1
        assert entry.superseded == 0
        # The reverse direction (a's claimed download) is tracked too.
        assert store.lineage_of("b", "a")["a"].value == 40.0
        assert rec.claims_recorded == 2
        assert rec.claims_superseded == 0

    def test_msg_id_falls_back_to_sender_and_time(self):
        store, _ = make_store()
        store.ingest(msg("a", 10.0, "b", 1.0, 0.0))  # unstamped message
        assert store.lineage_of("a", "b")["a"].msg_id == ("a", 10.0)

    def test_received_at_defaults_to_creation_time(self):
        store, _ = make_store()
        store.ingest(msg("a", 10.0, "b", 1.0, 0.0))
        assert store.lineage_of("a", "b")["a"].received_at == 10.0

    def test_supersede_increments_and_points_at_new_message(self):
        store, rec = make_store()
        store.ingest(msg("a", 10.0, "b", 100.0, 0.0, msg_id=("a", 1)))
        store.ingest(msg("a", 20.0, "b", 250.0, 0.0, msg_id=("a", 2)))
        entry = store.lineage_of("a", "b")["a"]
        assert entry.msg_id == ("a", 2)
        assert entry.value == 250.0
        assert entry.superseded == 1
        assert rec.claims_superseded >= 1

    def test_equal_value_confirmation_refreshes_lineage(self):
        store, _ = make_store()
        store.ingest(msg("a", 10.0, "b", 100.0, 0.0, msg_id=("a", 1)))
        store.ingest(msg("a", 20.0, "b", 100.0, 0.0, msg_id=("a", 2)))
        entry = store.lineage_of("a", "b")["a"]
        # The fresher confirming message becomes the lineage anchor even
        # though the value (and hence the materialized edge) is unchanged.
        assert entry.msg_id == ("a", 2)
        assert entry.reported_at == 20.0
        assert entry.superseded == 1

    def test_stale_and_redelivered_copies_leave_lineage_untouched(self):
        store, rec = make_store()
        store.ingest(msg("a", 20.0, "b", 100.0, 0.0, msg_id=("a", 2)), now=21.0)
        before = store.lineage_of("a", "b")["a"]
        store.ingest(msg("a", 10.0, "b", 50.0, 0.0, msg_id=("a", 1)))  # stale
        store.ingest(msg("a", 20.0, "b", 100.0, 0.0, msg_id=("a", 2)))  # dup
        assert store.lineage_of("a", "b")["a"] == before
        # One record claims both directions, so each bad copy counts twice.
        assert rec.stale_dropped == 2
        assert rec.redeliveries_ignored == 2

    def test_churn_wipe_removes_lineage(self):
        store, rec = make_store()
        store.ingest(msg("a", 10.0, "b", 100.0, 40.0))
        assert store.forget_reporter("a") == 2
        assert store.lineage_of("a", "b") == {}
        assert rec.claims_forgotten == 2

    def test_provenance_off_stores_no_lineage(self):
        store, _ = make_store(provenance=False)
        assert not store.provenance_enabled
        store.ingest(msg("a", 10.0, "b", 100.0, 40.0, msg_id=("a", 1)))
        assert store.lineage_of("a", "b") == {}
        # ... while the view itself is identical to the provenance-on one.
        assert store.claimed("a", "b") == 100.0

    def test_null_recorder_is_inert(self):
        assert not NULL_PROVENANCE.enabled
        assert isinstance(NULL_PROVENANCE, NullProvenanceRecorder)
        NULL_PROVENANCE.record_claim("me", ("a", "b"), "a", (None, 0.0, 0), False)
        NULL_PROVENANCE.record_forget("me", "a", 5)
        assert NULL_PROVENANCE.claims_recorded == 0
        assert NULL_PROVENANCE.claims_forgotten == 0

    def test_totals_snapshot_delta(self):
        base = snapshot_provenance_totals()
        store, _ = make_store()
        store.ingest(msg("a", 10.0, "b", 100.0, 40.0))
        delta = provenance_totals_delta(base)
        assert delta["claims_recorded"] == 2
        assert "stale_dropped" not in delta  # only non-zero deltas


# ---------------------------------------------------------------------------
# Lineage replay reconstructs the subjective graph (the tentpole property)
# ---------------------------------------------------------------------------
class TestLineageReplay:
    @staticmethod
    def assert_replay_reconstructs(sim):
        checked = 0
        for node in sim.nodes.values():
            shared = node.shared
            assert shared.provenance_enabled
            for src, dst in shared.known_edges():
                lineage = shared.lineage_of(src, dst)
                # Every live claim must carry lineage (provenance was on
                # from t=0), and replaying the recorded claim values —
                # max over reporters — must land exactly on the
                # materialized subjective edge.
                reconstructed = max(
                    (entry.value for entry in lineage.values()), default=0.0
                )
                assert reconstructed == node.graph.capacity(src, dst)
                for entry in lineage.values():
                    assert entry.hops == 1
                    assert entry.received_at >= entry.reported_at
                checked += 1
        assert checked > 0

    def test_replay_on_clean_run(self):
        sim = build_simulation(ScenarioConfig.tiny().with_provenance())
        sim.run()
        self.assert_replay_reconstructs(sim)

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        loss=st.floats(min_value=0.0, max_value=0.7),
        duplicate=st.floats(min_value=0.0, max_value=0.5),
        delay=st.floats(min_value=0.0, max_value=600.0),
        churn=st.floats(min_value=0.0, max_value=6.0),
    )
    def test_replay_under_random_fault_schedules(
        self, seed, loss, duplicate, delay, churn
    ):
        faults = FaultConfig(
            loss=loss,
            duplicate=duplicate,
            delay_max=delay,
            churn_rate=churn,
            churn_wipe_prob=0.5 if churn else 0.0,
        )
        scenario = (
            ScenarioConfig.tiny(seed=seed % 97).with_faults(faults).with_provenance()
        )
        sim = build_simulation(scenario)
        sim.run()
        self.assert_replay_reconstructs(sim)
        # The fault auditor's lineage invariant (reconstruction + honest
        # envelope per claim) must agree.
        assert audit_simulation(sim, max_rep_targets=3) == []

    def test_delay_shows_up_in_received_at(self):
        faults = FaultConfig(delay_max=600.0)
        sim = build_simulation(
            ScenarioConfig.tiny().with_faults(faults).with_provenance()
        )
        sim.run()
        lags = [
            entry.received_at - entry.reported_at
            for node in sim.nodes.values()
            for src, dst in node.shared.known_edges()
            for entry in node.shared.lineage_of(src, dst).values()
        ]
        assert lags and max(lags) > 0.0
        assert all(lag >= 0.0 for lag in lags)


# ---------------------------------------------------------------------------
# Flow attribution: recorded paths vs oracles
# ---------------------------------------------------------------------------
@st.composite
def random_graphs(draw):
    """Small random weighted digraphs over integer nodes."""
    n = draw(st.integers(min_value=2, max_value=8))
    possible = [(i, j) for i in range(n) for j in range(n) if i != j]
    edges = draw(
        st.lists(
            st.tuples(
                st.sampled_from(possible),
                st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
            ),
            max_size=20,
        )
    )
    g = TransferGraph()
    for node in range(n):
        g.add_node(node)
    for (i, j), w in edges:
        g.add_transfer(i, j, w)
    return g


def nx_two_hop_oracle(g: TransferGraph, s, t) -> float:
    """2-hop bounded maxflow via networkx on the layered path graph.

    Each intermediary ``v`` becomes its own layer node, so networkx can
    only route ``s -> t`` directly or through exactly one intermediary —
    an independent implementation of the 2-hop bound.
    """
    if not (g.has_node(s) and g.has_node(t)):
        return 0.0
    layered = nx.DiGraph()
    layered.add_node("S")
    layered.add_node("T")
    direct = g.capacity(s, t)
    if direct:
        layered.add_edge("S", "T", capacity=direct)
    out_s = g.successors(s)
    in_t = g.predecessors(t)
    for v in out_s:
        if v in (s, t) or v not in in_t:
            continue
        layered.add_edge("S", ("via", v), capacity=out_s[v])
        layered.add_edge(("via", v), "T", capacity=in_t[v])
    value, _ = nx.maximum_flow(layered, "S", "T", capacity="capacity")
    return float(value)


class TestPathAttribution:
    @settings(max_examples=60, deadline=None)
    @given(random_graphs())
    def test_paths_sum_to_value_and_match_oracle(self, g):
        result = maxflow_two_hop(g, 0, 1, record_paths=True)
        # Bit-exact: the recording twin mirrors the scalar accumulation.
        assert sum(p.flow for p in result.paths) == result.value
        assert result.value == pytest.approx(
            nx_two_hop_oracle(g, 0, 1), rel=1e-9, abs=1e-9
        )
        assert result.value == maxflow_two_hop(g, 0, 1).value

    @settings(max_examples=60, deadline=None)
    @given(random_graphs())
    def test_paths_are_edge_disjoint_with_valid_bottlenecks(self, g):
        result = maxflow_two_hop(g, 0, 1, record_paths=True)
        seen = set()
        for path in result.paths:
            assert path.flow > 0.0
            assert 2 <= len(path.nodes) <= 3
            edges = list(zip(path.nodes, path.nodes[1:]))
            for edge in edges:
                assert edge not in seen  # 2-hop paths are edge-disjoint
                seen.add(edge)
            assert path.bottleneck in edges
            assert len(path.residuals) == len(edges)
            bn_residual = path.residuals[edges.index(path.bottleneck)]
            assert bn_residual == pytest.approx(0.0, abs=1e-9)
            for (src, dst), residual in zip(edges, path.residuals):
                assert residual == pytest.approx(
                    g.capacity(src, dst) - path.flow
                    if (src, dst) == path.bottleneck
                    else residual
                )
                assert residual >= -1e-9

    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_leave_one_out_is_exact_for_two_hop(self, g):
        result = maxflow_two_hop(g, 0, 1, record_paths=True)
        for v, claimed in leave_one_out_values(result).items():
            pruned = TransferGraph.from_edges(
                (s, t, w) for s, t, w in g.edges() if v not in (s, t)
            )
            for node in (0, 1):
                pruned.add_node(node)
            true_without = maxflow_two_hop(pruned, 0, 1).value
            assert claimed == pytest.approx(true_without, rel=1e-9, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_batch_recording_matches_scalar(self, g):
        targets = [n for n in g.nodes() if n != 0]
        batch = maxflow_two_hop_batch(g, 0, targets, record_paths=True)
        for j in targets:
            inflow, outflow, in_paths, out_paths = batch[j]
            scalar_in = maxflow_two_hop(g, j, 0, record_paths=True)
            scalar_out = maxflow_two_hop(g, 0, j, record_paths=True)
            assert inflow == scalar_in.value
            assert outflow == scalar_out.value
            assert in_paths == scalar_in.paths
            assert out_paths == scalar_out.paths

    def test_loo_requires_recorded_paths(self):
        g = TransferGraph.from_edges([("s", "t", 5.0)])
        with pytest.raises(ValueError):
            leave_one_out_values(maxflow_two_hop(g, "s", "t"))

    def test_bounded_ff_recording_sums_to_value(self):
        g = TransferGraph.from_edges(
            [("s", "a", 4.0), ("a", "t", 3.0), ("s", "t", 2.0)]
        )
        result = bounded_ford_fulkerson(g, "s", "t", max_hops=2, record_paths=True)
        assert sum(p.flow for p in result.paths) == pytest.approx(result.value)


# ---------------------------------------------------------------------------
# explain_reputation on a real simulation
# ---------------------------------------------------------------------------
class TestExplain:
    @pytest.fixture(scope="class")
    def sim(self):
        sim = build_simulation(ScenarioConfig.tiny().with_provenance())
        sim.run()
        return sim

    def find_gossip_explanation(self, sim):
        for node in sim.nodes.values():
            peers = [p for p in sim.nodes if p != node.peer_id]
            for subject in top_subjects(node, peers, 5):
                expl = explain_reputation(node, subject)
                if any(ev.origin == "gossip" and ev.lineage for ev in expl.evidence):
                    return expl
        pytest.fail("no explanation with gossip-backed lineage found")

    def test_decomposition_sums_to_flows(self, sim):
        node = next(iter(sim.nodes.values()))
        peers = [p for p in sim.nodes if p != node.peer_id]
        for subject in top_subjects(node, peers, 3):
            expl = explain_reputation(node, subject)
            assert sum(p.flow for p in expl.in_result.paths) == expl.inflow
            assert sum(p.flow for p in expl.out_result.paths) == expl.outflow
            assert -1.0 < expl.reputation < 1.0
            assert expl.exact  # default kernel is two_hop

    def test_lineage_attached_to_gossip_edges(self, sim):
        expl = self.find_gossip_explanation(sim)
        gossip = [ev for ev in expl.evidence if ev.origin == "gossip"]
        assert gossip and any(ev.lineage for ev in gossip)
        for ev in gossip:
            for entry in ev.lineage:
                assert entry.hops == 1
                # The materialized edge is the max over live claims.
                assert entry.value <= ev.value
        # Private edges are authoritative and never carry gossip lineage.
        for ev in expl.evidence:
            if ev.origin == "private":
                assert not ev.lineage
                assert expl.evaluator in (ev.src, ev.dst)

    def test_render_and_json(self, sim):
        expl = self.find_gossip_explanation(sim)
        text = render_explanation(expl)
        assert f"== R_{expl.evaluator}({expl.subject}):" in text
        assert "claim by" in text
        assert "bottleneck" in text
        doc = json.loads(json.dumps(expl.to_json()))
        assert doc["evaluator"] == expl.evaluator
        assert doc["inflow_bytes"] == expl.inflow
        assert any(e["lineage"] for e in doc["evidence"])

    def test_self_explanation_rejected(self, sim):
        node = next(iter(sim.nodes.values()))
        with pytest.raises(ValueError):
            explain_reputation(node, node.peer_id)

    def test_top_subjects_deterministic_and_bounded(self, sim):
        node = next(iter(sim.nodes.values()))
        peers = [p for p in sim.nodes if p != node.peer_id]
        first = top_subjects(node, peers, 4)
        assert first == top_subjects(node, peers, 4)
        assert len(first) == min(4, len(peers))


# ---------------------------------------------------------------------------
# Provenance never perturbs results (null-object discipline)
# ---------------------------------------------------------------------------
class TestProvenanceBitIdentity:
    def test_fig2_export_byte_identical_with_provenance(self, tmp_path):
        from repro.analysis.export import export_fig2, write_series
        from repro.experiments.fig2 import run_fig2

        outs = []
        for tag, scenario in (
            ("off", ScenarioConfig.tiny()),
            ("on", ScenarioConfig.tiny().with_provenance()),
        ):
            result = run_fig2(scenario, deltas=(-0.5,))
            paths = write_series(export_fig2(result), tmp_path / tag)
            outs.append({p.name: p.read_bytes() for p in paths})
        assert outs[0] == outs[1]

    def test_default_scenario_has_no_recorder(self):
        sim = build_simulation(ScenarioConfig.tiny())
        assert sim.provenance is None
        node = next(iter(sim.nodes.values()))
        assert not node.shared.provenance_enabled


# ---------------------------------------------------------------------------
# The CLI: repro explain
# ---------------------------------------------------------------------------
class TestExplainCli:
    def test_explain_prints_lineage_and_exact_decomposition(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        export = tmp_path / "explanations.json"
        code = main(
            [
                "explain",
                "--peer",
                "0",
                "--profile",
                "tiny",
                "--top-k",
                "3",
                "--export",
                str(export),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "== R_0(" in out
        assert "claim by" in out  # at least one claim-lineage entry
        docs = json.loads(export.read_text())
        assert isinstance(docs, list) and docs
        for doc in docs:
            assert sum(p["flow"] for p in doc["in_paths"]) == doc["inflow_bytes"]
            assert sum(p["flow"] for p in doc["out_paths"]) == doc["outflow_bytes"]
        # The run manifest lands beside the export, not over it.
        manifest = json.loads((tmp_path / "run_manifest.json").read_text())
        assert manifest["command"] == "explain"
        assert "faults" not in manifest  # fault-free run omits the section
        assert manifest["extra"]["provenance"]["claims_recorded"] > 0

    def test_explain_unknown_peer_fails(self, capsys):
        from repro.cli import main

        assert main(["explain", "--peer", "99999", "--profile", "tiny"]) == 2
        assert "not in the population" in capsys.readouterr().err
