"""Tests for the time-dimension observability subsystem.

Covers the ring-buffer recorder, the collector's cross-process
merge/export, the phase/kernel profiler, Chrome-trace conversion, the
sweep monitor spool, and the headline guarantees: telemetry fully on is
bit-identical to a plain run, and a run's final time-series sample
equals its end-of-run aggregates.
"""

import json
import math

import numpy as np
import pytest

from repro.experiments import ScenarioConfig, run_fig1
from repro.obs import (
    NULL_OBS,
    NULL_PROFILER,
    NULL_TIMESERIES,
    Observability,
    Profiler,
    TimeSeriesCollector,
    TimeSeriesConfig,
    TimeSeriesRecorder,
    make_observability,
)
from repro.obs import profile as profile_mod
from repro.obs.chrome_trace import (
    profile_spans_to_chrome_events,
    trace_to_chrome_events,
    write_chrome_trace,
)
from repro.obs.monitor import (
    SweepMonitorWriter,
    read_status,
    render_status,
    watch,
    write_worker_heartbeat,
)
from repro.obs.profile import activate, set_active_profiler


class TestRecorder:
    def _recorder(self, capacity=8):
        rec = TimeSeriesRecorder(label="t", capacity=capacity)
        rec.add_probe("x", lambda now: now * 2.0)
        rec.add_probe("const", lambda now: 7.0)
        return rec

    def test_samples_and_columns(self):
        rec = self._recorder()
        for t in (0.0, 1.0, 2.0):
            rec.sample(t)
        assert rec.samples == 3
        assert list(rec.columns) == ["x", "const"]
        np.testing.assert_array_equal(rec.times(), [0.0, 1.0, 2.0])
        np.testing.assert_array_equal(rec.column("x"), [0.0, 2.0, 4.0])
        assert rec.last() == {"t": 2.0, "x": 4.0, "const": 7.0}

    def test_ring_evicts_oldest(self):
        rec = self._recorder(capacity=4)
        for t in range(10):
            rec.sample(float(t))
        assert rec.samples == 4
        assert rec.samples_total == 10
        assert rec.samples_dropped == 6
        np.testing.assert_array_equal(rec.times(), [6.0, 7.0, 8.0, 9.0])
        np.testing.assert_array_equal(rec.column("x"), [12.0, 14.0, 16.0, 18.0])
        snap = rec.to_dict()
        assert snap["t"] == [6.0, 7.0, 8.0, 9.0]
        assert snap["samples_dropped"] == 6

    def test_probe_registration_is_frozen_after_first_sample(self):
        rec = self._recorder()
        rec.sample(0.0)
        with pytest.raises(RuntimeError):
            rec.add_probe("late", lambda now: 0.0)

    def test_duplicate_probe_rejected(self):
        rec = self._recorder()
        with pytest.raises(ValueError):
            rec.add_probe("x", lambda now: 0.0)

    def test_csv_round_trip(self, tmp_path):
        rec = self._recorder()
        rec.sample(0.5)
        rec.sample(1.25)
        path = rec.write_csv(tmp_path / "ts.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "t,x,const"
        values = [float(v) for v in lines[2].split(",")]
        assert values == [1.25, 2.5, 7.0]


class TestCollector:
    def test_labels_and_merge_order(self):
        col = TimeSeriesCollector(TimeSeriesConfig(interval_s=60.0))
        col.begin_task("task-a")
        rec = TimeSeriesRecorder(label=col.next_label())
        assert rec.label == "task-a"
        assert col.next_label() == "run-2"  # no pending label -> counter
        rec.add_probe("x", lambda now: now)
        rec.sample(1.0)
        col.attach(rec)
        # Worker snapshots merge ahead of nothing, then local recorders.
        col.merge([{"label": "w1", "t": [5.0], "series": {"x": [5.0]}}])
        labels = [s["label"] for s in col.series()]
        assert labels == ["w1", "task-a"]

    def test_summary_final_values(self):
        col = TimeSeriesCollector()
        rec = TimeSeriesRecorder(label="s")
        rec.add_probe("coverage", lambda now: now / 10.0)
        rec.sample(5.0)
        rec.sample(10.0)
        col.attach(rec)
        summary = col.summary()
        assert summary["interval_s"] is None
        entry = summary["series"][0]
        assert entry["samples"] == 2
        assert entry["final"] == {"t": 10.0, "coverage": 1.0}

    def test_export_writes_csv_and_json(self, tmp_path):
        col = TimeSeriesCollector()
        rec = TimeSeriesRecorder(label="fig2/rank")
        rec.add_probe("x", lambda now: now)
        rec.sample(1.0)
        col.attach(rec)
        written = col.export(tmp_path)
        names = sorted(p.name for p in written)
        assert names == ["timeseries.json", "timeseries_fig2_rank.csv"]
        doc = json.loads((tmp_path / "timeseries.json").read_text())
        assert doc["series"][0]["label"] == "fig2/rank"

    def test_null_collector_exports_nothing(self, tmp_path):
        assert NULL_TIMESERIES.export(tmp_path) == []
        assert not NULL_TIMESERIES.enabled


class TestProfiler:
    def test_phase_paths_and_self_time(self):
        prof = Profiler()
        with prof.phase("outer"):
            with prof.phase("inner"):
                pass
        snap = prof.snapshot()
        assert set(snap["phases"]) == {"outer", "outer/inner"}
        outer = snap["phases"]["outer"]
        inner = snap["phases"]["outer/inner"]
        assert outer["count"] == 1 and inner["count"] == 1
        # Self wall excludes the child's wall time.
        assert outer["self_wall_s"] <= outer["wall_s"]
        assert outer["wall_s"] >= inner["wall_s"]

    def test_events_and_kernels(self):
        prof = Profiler()
        prof.observe_event("gossip", 0.25)
        prof.observe_event("gossip", 0.75)
        prof.observe_kernel("maxflow_two_hop", 1e-4)
        snap = prof.snapshot()
        assert snap["events"]["gossip"]["count"] == 2
        assert snap["events"]["gossip"]["wall_s"] == pytest.approx(1.0)
        kernel = snap["kernels"]["maxflow_two_hop"]
        assert kernel["count"] == 1
        assert kernel["total"] == pytest.approx(1e-4)

    def test_span_log_capped(self):
        prof = Profiler(max_spans=2)
        for _ in range(4):
            with prof.phase("p"):
                pass
        assert len(prof.spans) == 2
        assert prof.spans_dropped == 2
        assert prof.snapshot()["phases"]["p"]["count"] == 4

    def test_merge_snapshot_matches_serial(self):
        serial = Profiler()
        workers = [Profiler(), Profiler()]
        for i, prof in enumerate(workers):
            for rep in range(3):
                dur = 0.1 * (i + 1) + 0.01 * rep
                with prof.phase("round"):
                    pass
                prof.observe_event("ev", dur)
                prof.observe_kernel("k", dur)
                serial.observe_event("ev", dur)
                serial.observe_kernel("k", dur)
        parent = Profiler()
        for prof in workers:
            parent.merge_snapshot(prof.snapshot())
        snap = parent.snapshot()
        assert snap["phases"]["round"]["count"] == 6
        assert snap["events"]["ev"]["count"] == 6
        assert snap["events"]["ev"]["wall_s"] == pytest.approx(
            serial.snapshot()["events"]["ev"]["wall_s"]
        )
        assert snap["kernels"]["k"]["count"] == 6
        assert snap["kernels"]["k"]["p50"] == pytest.approx(
            serial.snapshot()["kernels"]["k"]["p50"]
        )

    def test_null_profiler_guards(self):
        assert not NULL_PROFILER.enabled
        with pytest.raises(RuntimeError):
            NULL_PROFILER.phase("x")
        NULL_PROFILER.observe_event("e", 1.0)  # harmless no-ops
        NULL_PROFILER.observe_kernel("k", 1.0)

    def test_activate_restores_previous_hook(self):
        assert profile_mod.ACTIVE is None
        prof = Profiler()
        with activate(prof):
            assert profile_mod.ACTIVE is prof
            with activate(NULL_PROFILER):
                assert profile_mod.ACTIVE is None
            assert profile_mod.ACTIVE is prof
        assert profile_mod.ACTIVE is None

    def test_kernel_hook_records_invocations(self):
        from repro.graph.maxflow import maxflow_two_hop
        from repro.graph.transfer_graph import TransferGraph

        g = TransferGraph()
        g.add_transfer(1, 2, 5.0)
        g.add_transfer(2, 3, 4.0)
        prof = Profiler()
        set_active_profiler(prof)
        try:
            flow = maxflow_two_hop(g, 1, 3)
        finally:
            set_active_profiler(None)
        plain = maxflow_two_hop(g, 1, 3)
        assert flow.value == plain.value == 4.0
        assert prof.snapshot()["kernels"]["maxflow_two_hop"]["count"] == 1


class TestChromeTrace:
    def test_profile_spans_to_events(self):
        events = profile_spans_to_chrome_events(
            [("bt.round", 0, 1.0, 0.5), ("bt.round/choke", 1, 1.1, 0.2)]
        )
        complete = [e for e in events if e.get("ph") == "X"]
        assert [e["name"] for e in complete] == ["bt.round", "bt.round/choke"]
        assert complete[0]["ts"] == pytest.approx(1.0e6)
        assert complete[0]["dur"] == pytest.approx(0.5e6)

    def test_trace_records_to_events(self):
        header = {"seed": 7}
        records = [
            {"cat": "sim.event", "name": "gossip", "wall": 1.0, "sim": 60.0},
            {"cat": "bt.transfer", "name": "piece", "wall": 2.0, "dur": 0.5,
             "attrs": {"bytes": 4}},
        ]
        events = trace_to_chrome_events(header, records)
        meta = [e for e in events if e["ph"] == "M"]
        assert any("seed 7" in e["args"]["name"] for e in meta)
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["args"]["sim"] == 60.0
        complete = next(e for e in events if e["ph"] == "X")
        assert complete["args"]["bytes"] == 4
        assert complete["ts"] == pytest.approx((2.0 - 0.5) * 1e6)

    def test_write_requires_a_source(self, tmp_path):
        with pytest.raises(ValueError):
            write_chrome_trace(tmp_path / "out.json")

    def test_end_to_end_from_jsonl(self, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        obs = make_observability(trace_path=trace_path, seed=5)
        obs.tracer.category("sim.event").emit("tick", sim_time=1.0)
        obs.close()
        out = write_chrome_trace(
            tmp_path / "out.json",
            trace_path=trace_path,
            profile_spans=[("p", 0, 0.0, 1.0)],
        )
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "tick" in names and "p" in names
        assert doc["displayTimeUnit"] == "ms"


class TestMonitor:
    def test_writer_and_heartbeats_round_trip(self, tmp_path):
        writer = SweepMonitorWriter(tmp_path)
        writer.start(total=4, jobs=2, command="fig2")
        write_worker_heartbeat(tmp_path, "fig2/rank", "running")
        write_worker_heartbeat(tmp_path, "fig2/rank", "done")
        writer.task_done("fig2/rank", 1)
        status = read_status(tmp_path)
        assert status["sweep"]["done"] == 1
        assert status["sweep"]["total"] == 4
        assert status["workers"][0]["task_id"] == "fig2/rank"
        assert status["workers"][0]["state"] == "done"
        rendered = render_status(status)
        assert "1/4 tasks" in rendered
        assert "fig2/rank" in rendered
        writer.finish("done")
        assert read_status(tmp_path)["sweep"]["status"] == "done"

    def test_start_clears_stale_worker_files(self, tmp_path):
        (tmp_path / "worker-999.json").write_text("{}")
        SweepMonitorWriter(tmp_path).start(total=1, jobs=1)
        assert not (tmp_path / "worker-999.json").exists()

    def test_stall_detection(self, tmp_path):
        writer = SweepMonitorWriter(tmp_path)
        writer.start(total=2, jobs=1)
        write_worker_heartbeat(tmp_path, "slow-task", "running")
        status = read_status(tmp_path)
        future = status["workers"][0]["time_unix"] + 1000.0
        rendered = render_status(status, now=future, stall_after=120.0)
        assert "STALLED" in rendered

    def test_watch_once_exit_codes(self, tmp_path, capsys):
        assert watch(tmp_path / "empty", once=True) == 2
        writer = SweepMonitorWriter(tmp_path)
        writer.start(total=1, jobs=1)
        writer.finish("done")
        assert watch(tmp_path, once=True) == 0
        out = capsys.readouterr().out
        assert "no sweep found" in out
        assert "1 tasks" in out


class TestObservabilityBundleLegs:
    def test_all_off_is_the_shared_null_bundle(self):
        assert make_observability() is NULL_OBS

    def test_timeseries_flag_forms(self):
        rides = make_observability(timeseries=-1.0)
        assert rides.timeseries.enabled
        assert rides.timeseries.config.interval_s is None
        timed = make_observability(timeseries=120.0)
        assert timed.timeseries.config.interval_s == 120.0
        explicit = make_observability(
            timeseries=TimeSeriesConfig(interval_s=60.0, capacity=16)
        )
        assert explicit.timeseries.config.capacity == 16

    def test_profile_flag(self):
        obs = make_observability(profile=True)
        assert obs.profiler.enabled
        assert not obs.metrics.enabled

    def test_default_bundle_legs_disabled(self):
        obs = Observability()
        assert obs.timeseries is NULL_TIMESERIES
        assert obs.profiler is NULL_PROFILER


class TestSimulatorTimeseries:
    def _run(self, obs=None, seed=3):
        return run_fig1(ScenarioConfig.tiny(seed=seed), obs=obs)

    def test_telemetry_on_is_bit_identical(self):
        plain = self._run()
        obs = make_observability(metrics=True, profile=True, timeseries=-1.0)
        with activate(obs.profiler):
            instrumented = self._run(obs=obs)
        obs.close()
        np.testing.assert_array_equal(
            plain.sharer_reputation, instrumented.sharer_reputation
        )
        np.testing.assert_array_equal(
            plain.freerider_reputation, instrumented.freerider_reputation
        )
        np.testing.assert_array_equal(
            plain.net_contribution_gb, instrumented.net_contribution_gb
        )
        assert plain.spearman == instrumented.spearman
        # ... and the telemetry legs actually recorded.
        series = obs.timeseries.series()
        assert len(series) == 1
        assert series[0]["samples_total"] > 0
        phases = obs.profiler.snapshot()["phases"]
        assert "bt.round" in phases and "gossip" in phases
        assert "bt.round/choke" in phases

    def test_final_sample_equals_end_of_run_aggregates(self):
        from repro.core.policies import RankPolicy
        from repro.experiments.faults import (
            DEFAULT_DELTA,
            _coverage,
            _ground_truth,
            _reputation_measures,
        )
        from repro.experiments.scenario import build_simulation

        scenario = ScenarioConfig.tiny(seed=3)
        obs = make_observability(timeseries=-1.0)
        sim = build_simulation(scenario, policy=RankPolicy(), obs=obs)
        sim.run()
        final = sim.timeseries.last()
        assert final["t"] == scenario.trace_params.duration
        gt_edges, contribution = _ground_truth(sim)
        assert final["coverage"] == _coverage(sim, gt_edges)
        _, inversion = _reputation_measures(sim, contribution, DEFAULT_DELTA)
        assert final["rank_inversion_rate"] == inversion
        assert 0.0 <= final["cache_hit_rate"] <= 1.0
        # No fault channel in this scenario: net deltas stay zero.
        assert final["net_delivered"] == 0.0 and final["net_dropped"] == 0.0

    def test_explicit_cadence_controls_sample_count(self):
        from repro.core.policies import RankPolicy
        from repro.experiments.scenario import build_simulation

        scenario = ScenarioConfig.tiny(seed=3)
        obs = make_observability(timeseries=6 * 3600.0)
        sim = build_simulation(scenario, policy=RankPolicy(), obs=obs)
        sim.run()
        times = sim.timeseries.times()
        # First sample one cadence in, then every 6h, plus the horizon close.
        assert times[0] == 6 * 3600.0
        deltas = np.diff(times)
        assert np.all(deltas[:-1] == 6 * 3600.0)
        assert times[-1] == scenario.trace_params.duration

    def test_net_probes_see_fault_channel(self):
        from repro.core.policies import RankPolicy
        from repro.experiments.scenario import build_simulation
        from repro.faults import FaultConfig

        scenario = ScenarioConfig.tiny(seed=3).with_faults(
            FaultConfig(loss=0.3)
        )
        obs = make_observability(timeseries=-1.0)
        sim = build_simulation(scenario, policy=RankPolicy(), obs=obs)
        sim.run()
        final = sim.timeseries.last()
        assert final["net_delivered"] == float(sim.channel.delivered) > 0
        assert final["net_dropped"] == float(sim.channel.dropped) > 0


class TestParallelTransport:
    def _tasks(self):
        from repro.parallel import fig1_task

        return [
            fig1_task(ScenarioConfig.tiny(seed=3)),
            fig1_task(ScenarioConfig.tiny(seed=4)),
        ]

    def test_jobs2_ships_series_and_profile_home(self, tmp_path):
        from repro.parallel import ParallelRunner

        obs = make_observability(metrics=True, profile=True, timeseries=-1.0)
        runner = ParallelRunner(jobs=2, obs=obs, monitor_dir=str(tmp_path))
        results = runner.run(self._tasks())
        assert runner.last_run_info["mode"] == "pool"
        labels = [s["label"] for s in obs.timeseries.series()]
        assert labels == ["fig1", "fig1"]
        snap = obs.profiler.snapshot()
        assert snap["phases"]["bt.round"]["count"] > 0
        assert obs.metrics.value("sim.events") > 0
        # Payloads equal a serial run of the same tasks.
        serial = [run_fig1(ScenarioConfig.tiny(seed=s)) for s in (3, 4)]
        for parallel_res, serial_res in zip(results, serial):
            np.testing.assert_array_equal(
                parallel_res.payload.sharer_reputation,
                serial_res.sharer_reputation,
            )
        status = read_status(tmp_path)
        assert status["sweep"]["done"] == 2
        assert status["sweep"]["status"] == "done"

    def test_parallel_series_match_inline(self):
        # Metrics on so the counter-backed columns (gossip_exchanges,
        # bt_bytes) exist: inline tasks share the parent registry while
        # workers get fresh ones, and the per-run shadow accumulators
        # must make both paths byte-identical anyway.
        from repro.parallel import ParallelRunner

        def series_for(jobs):
            obs = make_observability(metrics=True, timeseries=-1.0)
            runner = ParallelRunner(jobs=jobs, obs=obs)
            runner.run(self._tasks())
            return obs.timeseries.series()

        inline = series_for(1)
        pooled = series_for(2)
        assert len(inline) == len(pooled) == 2
        for a, b in zip(inline, pooled):
            assert a["columns"] == b["columns"]
            assert "gossip_exchanges" in a["columns"]
            assert "bt_bytes" in a["columns"]
            assert a["t"] == b["t"]
            assert a["series"] == b["series"]
