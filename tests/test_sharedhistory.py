"""Unit tests for the subjective shared history."""

import pytest

from repro.core.messages import BarterCastMessage, HistoryRecord
from repro.core.sharedhistory import SubjectiveSharedHistory
from repro.graph.transfer_graph import TransferGraph


def msg(sender, t, *records):
    return BarterCastMessage(sender=sender, created_at=t, records=tuple(records))


@pytest.fixture
def store():
    graph = TransferGraph()
    return SubjectiveSharedHistory("me", graph), graph


class TestIngestion:
    def test_record_creates_both_edges(self, store):
        shared, graph = store
        shared.ingest(msg("r", 1.0, HistoryRecord("c", uploaded=10.0, downloaded=4.0)))
        assert graph.capacity("r", "c") == 10.0
        assert graph.capacity("c", "r") == 4.0

    def test_own_message_rejected(self, store):
        shared, _ = store
        with pytest.raises(ValueError):
            shared.ingest(msg("me", 1.0))

    def test_records_about_owner_ignored(self, store):
        shared, graph = store
        applied = shared.ingest(msg("r", 1.0, HistoryRecord("me", 100.0, 0.0)))
        assert applied == 0
        assert graph.capacity("r", "me") == 0.0
        assert graph.capacity("me", "r") == 0.0

    def test_malformed_records_dropped(self, store):
        shared, graph = store
        applied = shared.ingest(msg("r", 1.0, HistoryRecord("c", -5.0, 0.0)))
        assert applied == 0
        assert shared.records_dropped >= 1

    def test_newer_record_supersedes(self, store):
        shared, graph = store
        shared.ingest(msg("r", 1.0, HistoryRecord("c", 10.0, 0.0)))
        shared.ingest(msg("r", 2.0, HistoryRecord("c", 25.0, 3.0)))
        assert graph.capacity("r", "c") == 25.0
        assert graph.capacity("c", "r") == 3.0

    def test_stale_record_dropped(self, store):
        shared, graph = store
        shared.ingest(msg("r", 5.0, HistoryRecord("c", 25.0, 0.0)))
        shared.ingest(msg("r", 1.0, HistoryRecord("c", 10.0, 0.0)))
        assert graph.capacity("r", "c") == 25.0

    def test_duplicate_record_not_counted_as_applied(self, store):
        shared, _ = store
        shared.ingest(msg("r", 1.0, HistoryRecord("c", 10.0, 0.0)))
        applied = shared.ingest(msg("r", 2.0, HistoryRecord("c", 10.0, 0.0)))
        assert applied == 0

    def test_messages_seen_counter(self, store):
        shared, _ = store
        shared.ingest(msg("r", 1.0))
        shared.ingest(msg("q", 2.0))
        assert shared.messages_seen == 2


class TestDeliveryIdempotency:
    """An unreliable channel redelivers and reorders messages; the view
    must be independent of arrival order and copy count."""

    def test_redelivered_message_is_noop(self, store):
        shared, graph = store
        m = msg("r", 1.0, HistoryRecord("c", 10.0, 4.0))
        shared.ingest(m)
        dropped_before = shared.records_dropped
        applied = shared.ingest(msg("r", 1.0, HistoryRecord("c", 10.0, 4.0)))
        assert applied == 0
        assert shared.records_dropped == dropped_before + 1
        assert graph.capacity("r", "c") == 10.0
        assert graph.capacity("c", "r") == 4.0

    def test_equal_timestamp_tie_keeps_max(self, store):
        shared, graph = store
        shared.ingest(msg("r", 1.0, HistoryRecord("c", 25.0, 0.0)))
        # Same reported_at, smaller value (e.g. a stale duplicate that
        # raced a fresher same-tick claim): must not clobber the max.
        applied = shared.ingest(msg("r", 1.0, HistoryRecord("c", 10.0, 0.0)))
        assert applied == 0
        assert graph.capacity("r", "c") == 25.0

    def test_equal_timestamp_order_independent(self):
        lo = HistoryRecord("c", 10.0, 0.0)
        hi = HistoryRecord("c", 25.0, 0.0)
        views = []
        for first, second in ((lo, hi), (hi, lo)):
            graph = TransferGraph()
            shared = SubjectiveSharedHistory("me", graph)
            shared.ingest(msg("r", 1.0, first))
            shared.ingest(msg("r", 1.0, second))
            views.append(graph.capacity("r", "c"))
        assert views[0] == views[1] == 25.0

    def test_reporters_lists_live_claimants(self, store):
        shared, _ = store
        assert shared.reporters() == set()
        shared.ingest(msg("a", 1.0, HistoryRecord("b", 10.0, 0.0)))
        shared.ingest(msg("b", 1.0, HistoryRecord("a", 0.0, 4.0)))
        assert shared.reporters() == {"a", "b"}
        shared.forget_reporter("a")
        assert shared.reporters() == {"b"}


class TestClaimArbitration:
    def test_max_over_reporters(self, store):
        shared, graph = store
        # a claims it uploaded 10 to b; b claims it downloaded 30 from a.
        shared.ingest(msg("a", 1.0, HistoryRecord("b", uploaded=10.0, downloaded=0.0)))
        shared.ingest(msg("b", 1.0, HistoryRecord("a", uploaded=0.0, downloaded=30.0)))
        assert graph.capacity("a", "b") == 30.0

    def test_reporter_lowering_claim_keeps_other(self, store):
        shared, graph = store
        shared.ingest(msg("a", 1.0, HistoryRecord("b", uploaded=50.0, downloaded=0.0)))
        shared.ingest(msg("b", 1.0, HistoryRecord("a", uploaded=0.0, downloaded=30.0)))
        # a revises downwards; b's independent claim remains the max.
        shared.ingest(msg("a", 2.0, HistoryRecord("b", uploaded=5.0, downloaded=0.0)))
        assert graph.capacity("a", "b") == 30.0

    def test_claim_of(self, store):
        shared, _ = store
        shared.ingest(msg("a", 1.0, HistoryRecord("b", 10.0, 2.0)))
        assert shared.claim_of("a", "a", "b") == 10.0
        assert shared.claim_of("a", "b", "a") == 2.0
        assert shared.claim_of("zzz", "a", "b") is None
        assert shared.claim_of("a", "x", "y") is None

    def test_claimed_reads_graph(self, store):
        shared, _ = store
        shared.ingest(msg("a", 1.0, HistoryRecord("b", 7.0, 0.0)))
        assert shared.claimed("a", "b") == 7.0
        assert shared.claimed("b", "a") == 0.0


class TestForget:
    def test_forget_reporter_removes_claims(self, store):
        shared, graph = store
        shared.ingest(msg("a", 1.0, HistoryRecord("b", 10.0, 0.0)))
        changed = shared.forget_reporter("a")
        assert changed >= 1
        assert graph.capacity("a", "b") == 0.0

    def test_forget_keeps_other_reporters(self, store):
        shared, graph = store
        shared.ingest(msg("a", 1.0, HistoryRecord("b", 10.0, 0.0)))
        shared.ingest(msg("b", 1.0, HistoryRecord("a", 0.0, 4.0)))
        shared.forget_reporter("a")
        assert graph.capacity("a", "b") == 4.0

    def test_forget_unknown_reporter_noop(self, store):
        shared, _ = store
        assert shared.forget_reporter("ghost") == 0
