"""Cross-module property-based tests (hypothesis).

These pin the protocol-level invariants the figures rely on:

* message selection never exceeds its windows, never duplicates, and
  reports exactly the sender's ledger;
* the subjective shared history converges to the same graph regardless
  of message arrival order (gossip is asynchronous and unordered);
* reputation is antisymmetric for symmetric observers sharing one graph;
* the whole gossip pipeline preserves the maxflow security bound.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.history import PrivateHistory
from repro.core.messages import BarterCastMessage, HistoryRecord, select_records
from repro.core.node import BarterCastNode
from repro.core.reputation import ReputationMetric
from repro.core.sharedhistory import SubjectiveSharedHistory
from repro.graph.transfer_graph import TransferGraph


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

@st.composite
def ledgers(draw):
    """A private history with a handful of counterparties."""
    owner = "owner"
    history = PrivateHistory(owner)
    n = draw(st.integers(min_value=0, max_value=12))
    for i in range(n):
        up = draw(st.floats(min_value=0, max_value=1e9, allow_nan=False))
        down = draw(st.floats(min_value=0, max_value=1e9, allow_nan=False))
        t = draw(st.floats(min_value=0, max_value=1e6, allow_nan=False))
        if up:
            history.record_upload(f"p{i}", up, t)
        if down:
            history.record_download(f"p{i}", down, t)
        if not up and not down:
            history.touch(f"p{i}", t)
    return history


@st.composite
def message_batches(draw):
    """Messages from several reporters with distinct timestamps."""
    n_msgs = draw(st.integers(min_value=1, max_value=8))
    messages = []
    for m in range(n_msgs):
        sender = f"r{draw(st.integers(min_value=0, max_value=4))}"
        n_recs = draw(st.integers(min_value=0, max_value=4))
        records = []
        for k in range(n_recs):
            counterparty = f"c{draw(st.integers(min_value=0, max_value=5))}"
            records.append(
                HistoryRecord(
                    counterparty=counterparty,
                    uploaded=draw(st.floats(min_value=0, max_value=1e9, allow_nan=False)),
                    downloaded=draw(st.floats(min_value=0, max_value=1e9, allow_nan=False)),
                )
            )
        # Distinct timestamps: supersede semantics are deterministic.
        messages.append(
            BarterCastMessage(sender=sender, created_at=float(m), records=tuple(records))
        )
    return messages


# ---------------------------------------------------------------------------
# Selection invariants
# ---------------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(ledgers(), st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=6))
def test_selection_invariants(history, nh, nr):
    records = select_records(history, nh, nr)
    names = [r.counterparty for r in records]
    # Bounded, duplicate-free, and faithful to the ledger.
    assert len(records) <= nh + nr
    assert len(names) == len(set(names))
    for record in records:
        totals = history.get(record.counterparty)
        assert record.uploaded == totals.uploaded
        assert record.downloaded == totals.downloaded
        assert record.is_sane()


@settings(max_examples=60, deadline=None)
@given(ledgers())
def test_top_uploaders_sorted_by_service(history):
    top = history.top_uploaders(10)
    values = [history.get(p).downloaded for p in top]
    assert values == sorted(values, reverse=True)
    assert all(v > 0 for v in values)


# ---------------------------------------------------------------------------
# Shared-history order independence
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(message_batches(), st.randoms(use_true_random=False))
def test_shared_history_order_independent(messages, rnd):
    def build(msgs):
        graph = TransferGraph()
        store = SubjectiveSharedHistory("owner", graph)
        for message in msgs:
            store.ingest(message)
        return {(a, b): w for a, b, w in graph.edges()}

    baseline = build(messages)
    shuffled = list(messages)
    rnd.shuffle(shuffled)
    assert build(shuffled) == baseline


# ---------------------------------------------------------------------------
# Reputation antisymmetry and the maxflow bound, end to end
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=0, max_value=1e10, allow_nan=False),
    st.floats(min_value=0, max_value=1e10, allow_nan=False),
)
def test_two_party_antisymmetry(up, down):
    a = BarterCastNode("a")
    b = BarterCastNode("b")
    if up:
        a.record_upload("b", up, 1.0)
        b.record_download("a", up, 1.0)
    if down:
        a.record_download("b", down, 2.0)
        b.record_upload("a", down, 2.0)
    if up or down:
        assert a.reputation_of("b") == pytest.approx(-b.reputation_of("a"), abs=1e-12)


@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=1, max_value=1e9, allow_nan=False),   # real service v -> eva
    st.floats(min_value=1, max_value=1e15, allow_nan=False),  # liar's claimed upload
)
def test_gossip_pipeline_preserves_maxflow_bound(real_service, lie_size):
    """However big the lie, hearsay credit never exceeds real service."""
    evaluator = BarterCastNode("eva")
    evaluator.record_download("v", real_service, 1.0)
    lie = BarterCastMessage(
        sender="liar",
        created_at=2.0,
        records=(HistoryRecord("v", uploaded=lie_size, downloaded=0.0),),
    )
    evaluator.receive_message(lie)
    cap = evaluator.config.metric.scale(real_service)
    assert evaluator.reputation_of("liar") <= cap + 1e-12
