"""Tests for the incremental reputation engine.

Three families:

* **Batched kernel equivalence** — ``maxflow_two_hop_batch`` must be
  *bit-identical* to per-target scalar ``maxflow_two_hop`` calls, and both
  must agree with an independent networkx reference (exact maxflow on the
  2-hop-restricted subgraph, whose every path has length <= 2).
* **Dirty-set staleness oracle** — a ``cache_mode="dirty"`` node replaying
  a random stream of transfers, gossip, claim retractions and node
  removals must answer every reputation query exactly like a cache-free
  oracle node (and like the wholesale-invalidation node).
* **Telemetry / cache-mode plumbing** — hit/miss/invalidation counters and
  the version-neutrality of no-op writes.
"""

from __future__ import annotations

import importlib.util
import math
import sys
from pathlib import Path

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import BarterCastMessage, HistoryRecord
from repro.core.node import BarterCastNode
from repro.core.reputation import MB, ReputationMetric
from repro.graph.batch import maxflow_two_hop_batch
from repro.graph.maxflow import maxflow_two_hop
from repro.graph.transfer_graph import TransferGraph

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

NODE_IDS = st.integers(min_value=0, max_value=9)
WEIGHTS = st.floats(min_value=0.1, max_value=1e9, allow_nan=False, allow_infinity=False)

edge_lists = st.lists(st.tuples(NODE_IDS, NODE_IDS, WEIGHTS), max_size=40)


def build_graph(edges) -> TransferGraph:
    g = TransferGraph()
    for s, d, w in edges:
        if s != d:
            g.add_transfer(s, d, w)
    return g


def two_hop_reference_nx(g: TransferGraph, s, t) -> float:
    """Independent 2-hop maxflow: exact maxflow on the subgraph containing
    only the direct edge and the ``s -> v -> t`` path edges (every path in
    that subgraph has length <= 2, so exact flow == 2-hop-bounded flow)."""
    if not g.has_node(s) or not g.has_node(t):
        return 0.0
    sub = nx.DiGraph()
    sub.add_node(s)
    sub.add_node(t)
    out_s = g.successors(s)
    in_t = g.predecessors(t)
    direct = out_s.get(t, 0.0)
    if direct:
        sub.add_edge(s, t, capacity=direct)
    for v, c_sv in out_s.items():
        if v == t:
            continue
        c_vt = in_t.get(v)
        if c_vt:
            sub.add_edge(s, v, capacity=c_sv)
            sub.add_edge(v, t, capacity=c_vt)
    value, _ = nx.maximum_flow(sub, s, t)
    return float(value)


# ---------------------------------------------------------------------------
# Batched kernel equivalence
# ---------------------------------------------------------------------------


class TestBatchKernel:
    @given(edges=edge_lists, owner=NODE_IDS)
    @settings(max_examples=100, deadline=None)
    def test_batch_bitwise_equals_scalar(self, edges, owner):
        g = build_graph(edges)
        targets = [n for n in range(10) if n != owner] + [99]  # 99: unknown peer
        flows = maxflow_two_hop_batch(g, owner, targets)
        assert set(flows) == set(targets)
        for j, (inflow, outflow) in flows.items():
            assert inflow == maxflow_two_hop(g, j, owner).value
            assert outflow == maxflow_two_hop(g, owner, j).value

    @given(edges=edge_lists, owner=NODE_IDS)
    @settings(max_examples=60, deadline=None)
    def test_batch_matches_networkx_reference(self, edges, owner):
        g = build_graph(edges)
        targets = [n for n in range(10) if n != owner]
        for j, (inflow, outflow) in maxflow_two_hop_batch(g, owner, targets).items():
            assert math.isclose(
                inflow, two_hop_reference_nx(g, j, owner), rel_tol=1e-9, abs_tol=1e-6
            )
            assert math.isclose(
                outflow, two_hop_reference_nx(g, owner, j), rel_tol=1e-9, abs_tol=1e-6
            )

    @given(edges=edge_lists, owner=NODE_IDS)
    @settings(max_examples=60, deadline=None)
    def test_metric_batch_bitwise_equals_scalar(self, edges, owner):
        g = build_graph(edges)
        metric = ReputationMetric()
        targets = [n for n in range(10) if n != owner]
        batched = metric.reputation_batch(g, owner, targets)
        for j in targets:
            assert batched[j] == metric.reputation(g, owner, j)

    def test_batch_skips_owner_and_duplicates(self):
        g = build_graph([(0, 1, 5.0)])
        flows = maxflow_two_hop_batch(g, 0, [0, 1, 1, 0])
        assert set(flows) == {1}

    def test_metric_batch_falls_back_for_iterative_kernels(self):
        g = build_graph([(1, 0, 5.0), (1, 2, 3.0), (2, 0, 4.0)])
        metric = ReputationMetric(kernel="exact")
        batched = metric.reputation_batch(g, 0, [1, 2])
        for j in (1, 2):
            assert batched[j] == metric.reputation(g, 0, j)


# ---------------------------------------------------------------------------
# Dirty-set staleness oracle
# ---------------------------------------------------------------------------

PEERS = st.integers(min_value=1, max_value=9)


@st.composite
def op_streams(draw):
    """A random stream of node-state mutations."""
    n = draw(st.integers(min_value=1, max_value=25))
    ops = []
    for _ in range(n):
        kind = draw(
            st.sampled_from(["up", "down", "msg", "forget", "remove"])
        )
        if kind in ("up", "down"):
            ops.append((kind, draw(PEERS), draw(WEIGHTS)))
        elif kind == "msg":
            reporter = draw(PEERS)
            records = draw(
                st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=9), WEIGHTS, WEIGHTS
                    ),
                    min_size=1,
                    max_size=4,
                )
            )
            created = draw(st.floats(min_value=0, max_value=100, allow_nan=False))
            ops.append((kind, reporter, records, created))
        elif kind == "forget":
            ops.append((kind, draw(PEERS)))
        else:  # remove
            ops.append((kind, draw(PEERS)))
    return ops


def _apply(node: BarterCastNode, op, now: float) -> None:
    kind = op[0]
    if kind == "up":
        node.record_upload(op[1], op[2], now)
    elif kind == "down":
        node.record_download(op[1], op[2], now)
    elif kind == "msg":
        _, reporter, records, created = op
        msg = BarterCastMessage(
            sender=reporter,
            created_at=created,
            records=tuple(
                HistoryRecord(counterparty=c, uploaded=u, downloaded=d)
                for c, u, d in records
                if c != reporter
            ),
        )
        node.receive_message(msg)
    elif kind == "forget":
        node.shared.forget_reporter(op[1])
    elif kind == "remove":
        node.graph.remove_node(op[1])


class TestDirtySetNeverStale:
    @given(ops=op_streams())
    @settings(max_examples=60, deadline=None)
    def test_dirty_and_wholesale_match_oracle(self, ops):
        dirty = BarterCastNode(0, cache_mode="dirty")
        wholesale = BarterCastNode(0, cache_mode="wholesale")
        oracle = BarterCastNode(0, cache_mode="off")
        targets = list(range(1, 10))
        now = 0.0
        for op in ops:
            now += 1.0
            for node in (dirty, wholesale, oracle):
                _apply(node, op, now)
            want = {p: oracle.reputation_of(p) for p in targets}
            # Batched lookup on the dirty node, scalar on the wholesale one:
            # every path must agree with the cache-free oracle, bitwise.
            assert dirty.reputations_of(targets) == want
            assert {p: wholesale.reputation_of(p) for p in targets} == want

    @given(ops=op_streams())
    @settings(max_examples=30, deadline=None)
    def test_dirty_scalar_lookups_match_oracle(self, ops):
        dirty = BarterCastNode(0, cache_mode="dirty")
        oracle = BarterCastNode(0, cache_mode="off")
        targets = list(range(1, 10))
        now = 0.0
        for op in ops:
            now += 1.0
            _apply(dirty, op, now)
            _apply(oracle, op, now)
            for p in targets:
                assert dirty.reputation_of(p) == oracle.reputation_of(p)


# ---------------------------------------------------------------------------
# Telemetry and cache-mode plumbing
# ---------------------------------------------------------------------------


class TestCacheTelemetry:
    def test_hit_miss_counting(self):
        n = BarterCastNode("me")
        n.record_download("p", 100 * MB, now=1.0)
        n.reputation_of("p")
        n.reputation_of("p")
        assert n.rep_cache_misses == 1
        assert n.rep_cache_hits == 1

    def test_dirty_invalidation_is_targeted(self):
        n = BarterCastNode("me")
        msg = BarterCastMessage(
            "r", 1.0, records=(HistoryRecord("a", 100 * MB, 0.0),
                               HistoryRecord("b", 50 * MB, 0.0))
        )
        n.receive_message(msg)
        n.reputations_of(["r", "a", "b"])
        assert n.rep_cache_size == 3
        # A far-away edge change (r -> a grows) must only evict r and a.
        msg2 = BarterCastMessage("r", 2.0, records=(HistoryRecord("a", 200 * MB, 0.0),))
        n.receive_message(msg2)
        assert n.rep_cache_size == 1
        assert n.rep_cache_invalidations == 2

    def test_owner_incident_edge_clears_everything(self):
        n = BarterCastNode("me")
        msg = BarterCastMessage("r", 1.0, records=(HistoryRecord("a", 100 * MB, 0.0),))
        n.receive_message(msg)
        n.reputations_of(["r", "a"])
        assert n.rep_cache_size == 2
        n.record_upload("a", 10 * MB, now=2.0)  # edge (me, a): full clear
        assert n.rep_cache_size == 0

    def test_noop_gossip_does_not_invalidate(self):
        n = BarterCastNode("me")
        msg = BarterCastMessage("r", 1.0, records=(HistoryRecord("a", 100 * MB, 0.0),))
        n.receive_message(msg)
        n.reputations_of(["r", "a"])
        invalidations = n.rep_cache_invalidations
        # A second reporter claiming a *lower* total for the same edge does
        # not move the materialized max: the cache must survive untouched.
        msg2 = BarterCastMessage("a", 2.0, records=(HistoryRecord("r", 0.0, 50 * MB),))
        n.receive_message(msg2)
        assert n.rep_cache_size == 2
        assert n.rep_cache_invalidations == invalidations

    def test_cache_mode_off_never_caches(self):
        n = BarterCastNode("me", cache_mode="off")
        n.record_download("p", 100 * MB, now=1.0)
        n.reputation_of("p")
        n.reputation_of("p")
        assert n.rep_cache_hits == 0
        assert n.rep_cache_misses == 2
        assert n.rep_cache_size == 0

    def test_invalid_cache_mode_rejected(self):
        with pytest.raises(ValueError):
            BarterCastNode("me", cache_mode="bogus")

    def test_invalidate_cache_forces_cold(self):
        n = BarterCastNode("me")
        n.record_download("p", 100 * MB, now=1.0)
        n.reputation_of("p")
        n.invalidate_cache()
        n.reputation_of("p")
        assert n.rep_cache_misses == 2

    def test_non_default_kernel_falls_back_to_full_invalidation(self):
        from repro.core.node import BarterCastConfig

        cfg = BarterCastConfig(metric=ReputationMetric(kernel="exact"))
        n = BarterCastNode("me", config=cfg)
        msg = BarterCastMessage("r", 1.0, records=(HistoryRecord("a", 100 * MB, 0.0),))
        n.receive_message(msg)
        n.reputations_of(["r", "a"])
        assert n.rep_cache_size == 2
        # Any far-away change clears everything under an inexact kernel.
        msg2 = BarterCastMessage("b", 2.0, records=(HistoryRecord("c", 1 * MB, 0.0),))
        n.receive_message(msg2)
        assert n.rep_cache_size == 0


# ---------------------------------------------------------------------------
# Bench smoke (tier-1 guard for the benchmark harness)
# ---------------------------------------------------------------------------


def test_reputation_cache_bench_smoke(tmp_path):
    """The perf bench's workload must keep running (and stay bit-identical
    across engine variants) at smoke scale."""
    bench_path = (
        Path(__file__).resolve().parent.parent
        / "benchmarks"
        / "bench_reputation_cache.py"
    )
    spec = importlib.util.spec_from_file_location("bench_reputation_cache", bench_path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod  # dataclasses resolve annotations via sys.modules
    try:
        spec.loader.exec_module(mod)
    finally:
        sys.modules.pop(spec.name, None)
    payload = mod.run_bench(mod.SMOKE)
    out = tmp_path / "BENCH_reputation.json"
    mod.write_results(payload, out)
    assert out.exists()
    assert payload["identical_reputations"]
    assert set(payload["variants"]) == {
        "wholesale_scalar",
        "wholesale_batch",
        "dirty_scalar",
        "dirty_batch",
        "columnar_batch",
    }
    assert all(v["seconds"] > 0 for v in payload["variants"].values())
