"""Unit tests for the statistics collector."""

import numpy as np
import pytest

from repro.bittorrent.stats import StatsCollector


@pytest.fixture
def stats():
    return StatsCollector(peer_ids=[1, 2, 3], duration=100.0, bucket_seconds=10.0)


class TestRecording:
    def test_bucket_count(self, stats):
        assert stats.num_buckets == 10

    def test_ragged_duration_rounds_up(self):
        s = StatsCollector([1], duration=95.0, bucket_seconds=10.0)
        assert s.num_buckets == 10

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StatsCollector([1], duration=0.0, bucket_seconds=1.0)
        with pytest.raises(ValueError):
            StatsCollector([1], duration=10.0, bucket_seconds=0.0)

    def test_bucket_of_clamps(self, stats):
        assert stats.bucket_of(-5.0) == 0
        assert stats.bucket_of(0.0) == 0
        assert stats.bucket_of(99.9) == 9
        assert stats.bucket_of(1e9) == 9

    def test_transfer_recorded_both_sides(self, stats):
        stats.record_transfer(1, 2, 500.0, now=15.0)
        assert stats.total_uploaded(1) == 500.0
        assert stats.total_downloaded(2) == 500.0
        assert stats.total_downloaded(1) == 0.0

    def test_net_contribution(self, stats):
        stats.record_transfer(1, 2, 500.0, now=15.0)
        stats.record_transfer(2, 1, 100.0, now=25.0)
        assert stats.net_contribution(1) == 400.0
        assert stats.net_contribution(2) == -400.0

    def test_leech_time(self, stats):
        stats.record_leech_time(1, 10.0, now=5.0)
        stats.record_leech_time(1, 10.0, now=15.0)
        assert stats.leech_time[stats.index[1]].sum() == 20.0


class TestSeries:
    def test_group_speed_series_basic(self, stats):
        stats.record_transfer(2, 1, 1000.0, now=5.0)
        stats.record_leech_time(1, 10.0, now=5.0)
        series = stats.group_speed_series([1])
        assert series[0] == pytest.approx(100.0)  # 1000 B / 10 s
        assert np.isnan(series[1])

    def test_group_speed_series_means_over_active_peers(self, stats):
        stats.record_transfer(3, 1, 1000.0, now=5.0)
        stats.record_leech_time(1, 10.0, now=5.0)
        stats.record_transfer(3, 2, 3000.0, now=5.0)
        stats.record_leech_time(2, 10.0, now=5.0)
        series = stats.group_speed_series([1, 2])
        assert series[0] == pytest.approx((100.0 + 300.0) / 2)

    def test_group_speed_series_empty_group(self, stats):
        series = stats.group_speed_series([])
        assert np.isnan(series).all()

    def test_group_mean_speed(self, stats):
        stats.record_transfer(2, 1, 1000.0, now=5.0)
        stats.record_leech_time(1, 10.0, now=5.0)
        stats.record_transfer(2, 1, 2000.0, now=55.0)
        stats.record_leech_time(1, 20.0, now=55.0)
        assert stats.group_mean_speed([1]) == pytest.approx(3000.0 / 30.0)

    def test_group_mean_speed_window(self, stats):
        stats.record_transfer(2, 1, 1000.0, now=5.0)
        stats.record_leech_time(1, 10.0, now=5.0)
        stats.record_transfer(2, 1, 9000.0, now=95.0)
        stats.record_leech_time(1, 10.0, now=95.0)
        early = stats.group_mean_speed([1], t0=0.0, t1=50.0)
        assert early == pytest.approx(100.0)

    def test_group_mean_speed_never_leeched_nan(self, stats):
        assert np.isnan(stats.group_mean_speed([1]))

    def test_bucket_times_midpoints(self, stats):
        times = stats.bucket_times()
        assert times[0] == 5.0
        assert times[-1] == 95.0

    def test_reputation_series(self, stats):
        stats.record_reputation_sample(10.0, {1: 0.5, 2: -0.5})
        stats.record_reputation_sample(20.0, {1: 0.6, 2: -0.6})
        times, means = stats.reputation_series([1])
        assert list(times) == [10.0, 20.0]
        assert list(means) == [0.5, 0.6]

    def test_reputation_series_group_mean(self, stats):
        stats.record_reputation_sample(10.0, {1: 1.0, 2: 0.0})
        _, means = stats.reputation_series([1, 2])
        assert means[0] == pytest.approx(0.5)

    def test_reputation_series_missing_peer_nan(self, stats):
        stats.record_reputation_sample(10.0, {1: 1.0})
        _, means = stats.reputation_series([3])
        assert np.isnan(means[0])
