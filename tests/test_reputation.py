"""Unit and property tests for the reputation metric."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reputation import DEFAULT_UNIT_BYTES, MB, ReputationMetric, system_reputation
from repro.graph.transfer_graph import TransferGraph


class TestScaling:
    def test_zero_diff_is_zero(self):
        assert ReputationMetric().scale(0.0) == 0.0

    def test_range_open_interval(self):
        m = ReputationMetric()
        assert -1.0 < m.scale(-1e18) < -0.999
        assert 0.999 < m.scale(1e18) < 1.0

    def test_antisymmetric(self):
        m = ReputationMetric()
        for diff in (1.0, 1e6, 1e9, 123456.0):
            assert m.scale(diff) == pytest.approx(-m.scale(-diff))

    def test_monotone(self):
        m = ReputationMetric()
        values = [m.scale(x * MB) for x in (-1000, -100, -1, 0, 1, 100, 1000)]
        assert values == sorted(values)

    def test_paper_knee_at_100mb(self):
        # "0 vs 100 MB more significant than 1000 vs 1100 MB"
        m = ReputationMetric()
        early = m.scale(100 * MB) - m.scale(0.0)
        late = m.scale(1100 * MB) - m.scale(1000 * MB)
        assert early > 10 * late

    def test_unit_at_100mb_gives_half(self):
        m = ReputationMetric()
        assert m.scale(DEFAULT_UNIT_BYTES) == pytest.approx(0.5)

    def test_linear_scaling(self):
        m = ReputationMetric(scaling="linear", linear_range=10.0, unit_bytes=MB)
        assert m.scale(5 * MB) == pytest.approx(0.5)
        assert m.scale(20 * MB) == 1.0  # clipped
        assert m.scale(-20 * MB) == -1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ReputationMetric(unit_bytes=0.0)
        with pytest.raises(ValueError):
            ReputationMetric(kernel="bogus")
        with pytest.raises(ValueError):
            ReputationMetric(scaling="bogus")
        with pytest.raises(ValueError):
            ReputationMetric(linear_range=0.0)


class TestReputation:
    def test_direct_uploader_positive(self):
        g = TransferGraph.from_edges([("j", "i", 500 * MB)])
        m = ReputationMetric()
        assert m.reputation(g, "i", "j") > 0.5

    def test_direct_consumer_negative(self):
        g = TransferGraph.from_edges([("i", "j", 500 * MB)])
        m = ReputationMetric()
        assert m.reputation(g, "i", "j") < -0.5

    def test_stranger_zero(self):
        g = TransferGraph.from_edges([("a", "b", 500 * MB)])
        g.add_node("i")
        g.add_node("j")
        assert ReputationMetric().reputation(g, "i", "j") == 0.0

    def test_pairwise_antisymmetry(self):
        g = TransferGraph.from_edges([("i", "j", 100 * MB), ("j", "i", 30 * MB)])
        m = ReputationMetric()
        assert m.reputation(g, "i", "j") == pytest.approx(-m.reputation(g, "j", "i"))

    def test_self_reputation_rejected(self):
        g = TransferGraph()
        g.add_node("i")
        with pytest.raises(ValueError):
            ReputationMetric().reputation(g, "i", "i")

    def test_two_hop_indirect_service_counts(self):
        # j uploaded to v, v uploaded to i: i should see j positively,
        # bounded by the smaller leg.
        g = TransferGraph.from_edges([("j", "v", 300 * MB), ("v", "i", 120 * MB)])
        m = ReputationMetric()
        rep = m.reputation(g, "i", "j")
        assert rep == pytest.approx(m.scale(120 * MB))

    def test_incorrect_information_bounded_by_direct_edges(self):
        # A liar claims a huge upload j->v, but v only gave i 10 MB;
        # j's reputation at i cannot exceed what 10 MB of real service buys.
        g = TransferGraph.from_edges([("j", "v", 1e15), ("v", "i", 10 * MB)])
        m = ReputationMetric()
        assert m.reputation(g, "i", "j") <= m.scale(10 * MB) + 1e-12

    def test_kernels_agree_on_two_hop_graph(self):
        g = TransferGraph.from_edges(
            [("j", "v", 50 * MB), ("v", "i", 70 * MB), ("j", "i", 5 * MB), ("i", "j", 2 * MB)]
        )
        r2 = ReputationMetric(kernel="two_hop").reputation(g, "i", "j")
        rb = ReputationMetric(kernel="bounded", max_hops=2).reputation(g, "i", "j")
        assert r2 == pytest.approx(rb)

    def test_exact_kernel_sees_longer_paths(self):
        g = TransferGraph.from_edges(
            [("j", "a", 100 * MB), ("a", "b", 100 * MB), ("b", "i", 100 * MB)]
        )
        r2 = ReputationMetric(kernel="two_hop").reputation(g, "i", "j")
        rx = ReputationMetric(kernel="exact").reputation(g, "i", "j")
        assert r2 == 0.0
        assert rx == pytest.approx(0.5)  # arctan(100 MB / unit) = arctan(1)

    def test_maxflow_accessor_respects_kernel(self):
        g = TransferGraph.from_edges([("a", "b", 10.0), ("b", "c", 10.0), ("c", "d", 10.0)])
        assert ReputationMetric(kernel="two_hop").maxflow(g, "a", "d") == 0.0
        assert ReputationMetric(kernel="exact").maxflow(g, "a", "d") == 10.0
        assert ReputationMetric(kernel="bounded", max_hops=3).maxflow(g, "a", "d") == 10.0


class TestSystemReputation:
    def test_average_over_evaluators(self):
        reps = {"a": {"x": 0.5}, "b": {"x": -0.1}, "x": {"a": 1.0}}
        assert system_reputation(reps, "x") == pytest.approx(0.2)

    def test_excludes_self_opinion(self):
        reps = {"x": {"x": 1.0}, "a": {"x": 0.4}}
        assert system_reputation(reps, "x") == pytest.approx(0.4)

    def test_no_opinions_zero(self):
        assert system_reputation({"a": {"b": 0.3}}, "zzz") == 0.0


@settings(max_examples=80, deadline=None)
@given(st.floats(min_value=-1e15, max_value=1e15, allow_nan=False))
def test_scale_bounded_and_antisymmetric(diff):
    m = ReputationMetric()
    v = m.scale(diff)
    assert -1.0 < v < 1.0
    assert v == pytest.approx(-m.scale(-diff), abs=1e-12)


@settings(max_examples=80, deadline=None)
@given(
    st.floats(min_value=0, max_value=1e12, allow_nan=False),
    st.floats(min_value=0, max_value=1e12, allow_nan=False),
)
def test_reputation_sign_matches_flow_difference(up, down):
    g = TransferGraph()
    g.add_node("i")
    g.add_node("j")
    if up > 0:
        g.add_transfer("j", "i", up)
    if down > 0:
        g.add_transfer("i", "j", down)
    rep = ReputationMetric().reputation(g, "i", "j")
    assert rep == pytest.approx(ReputationMetric().scale(up - down))
