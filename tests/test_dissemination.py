"""Tests for causal dissemination tracing.

Covers the always-on message envelope (msg_id / parent_id / hops), the
recorder's DAG and analytics queries, the lineage-replay auditor
(replayed claims must match ``SubjectiveSharedHistory`` exactly), fault
attribution, the collector's merge/export plumbing (``--jobs 2`` bytes
equal serial), Chrome-trace flow arrows, the fault channel's
churn-versus-loss accounting, and the headline guarantee: recording on
is bit-identical to a plain run.
"""

import json

import numpy as np
import pytest

from repro.core.messages import BarterCastMessage, HistoryRecord
from repro.core.policies import RankPolicy
from repro.experiments import ScenarioConfig, run_fig1
from repro.experiments.scenario import build_simulation
from repro.faults import ChannelModel, FaultConfig
from repro.obs import (
    NULL_DISSEMINATION,
    NULL_OBS,
    DisseminationCollector,
    DisseminationConfig,
    DisseminationRecorder,
    make_observability,
)
from repro.obs.chrome_trace import trace_to_chrome_events
from repro.obs.dissemination import DISSEMINATION_FILENAME, render_attribution
from repro.obs.trace import read_trace
from repro.sim.rng import RngRegistry

FAULTS = FaultConfig(loss=0.2, duplicate=0.2, delay_max=7200.0, churn_rate=4.0)


@pytest.fixture(scope="module")
def faulted_run():
    """One recorded faulted run shared by the analytics/auditor tests."""
    scenario = ScenarioConfig.tiny(seed=7).with_faults(FAULTS)
    obs = make_observability(metrics=True, dissemination=True)
    sim = build_simulation(scenario, policy=RankPolicy(), obs=obs)
    sim.run()
    return sim, obs


def _msg(sender, created_at, records, msg_id=None, parent_id=None):
    return BarterCastMessage(
        sender=sender,
        created_at=created_at,
        records=tuple(records),
        msg_id=msg_id,
        parent_id=parent_id,
    )


class TestRecorderSynthetic:
    """Hand-built event logs with known DAGs and analytics answers."""

    def _recorder(self):
        rec = DisseminationRecorder(label="syn")
        rec.set_population(["A", "B", "C", "D"])
        m1 = _msg("A", 0.0, [HistoryRecord("B", 10.0, 5.0)], msg_id=("A", 1))
        m2 = _msg(
            "A", 100.0, [HistoryRecord("B", 20.0, 7.0)],
            msg_id=("A", 2), parent_id=("A", 1),
        )
        rec.record_send(m1, "C", 0.0)
        rec.record_deliver(m1, "C", 10.0)
        rec.record_send(m1, "D", 0.0)
        rec.record_drop(m1, "D", 12.0, "loss")
        rec.record_send(m2, "C", 100.0)
        rec.record_deliver(m2, "C", 110.0)
        return rec, m1, m2

    def test_claims_and_dag_spine(self):
        rec, _, _ = self._recorder()
        assert rec.claims() == [("A", "B")]
        dag = rec.claim_dag(("A", "B"))
        assert dag["messages"] == [("A", 1), ("A", 2)]
        assert dag["spine"] == [(("A", 1), ("A", 2))]
        assert [(mid, dst) for mid, dst, _ in dag["deliveries"]] == [
            (("A", 1), "C"),
            (("A", 2), "C"),
        ]

    def test_claim_stats_coverage_milestones(self):
        rec, _, _ = self._recorder()
        (entry,) = rec.claim_stats()
        # Eligible = population minus reporter A and counterparty B.
        assert entry["eligible"] == 2
        assert entry["reached"] == 1
        assert entry["copies"] == 2
        assert entry["first_t"] == 10.0
        assert entry["redundancy"] == 2.0
        assert entry["t50"] == 10.0  # need 1 of 2
        assert entry["t90"] is None  # need 2 of 2, D never reached
        assert rec.redundancy_factor() == 2.0
        assert rec.hop_histogram() == {"1": 2}

    def test_replay_supersedes_by_created_at(self):
        rec, _, _ = self._recorder()
        # m2 (created_at 100) supersedes m1 for both directed edges.
        assert rec.replay_claims("C") == {
            ("A", "A", "B"): 20.0,
            ("A", "B", "A"): 7.0,
        }
        assert rec.replay_claims("D") == {}

    def test_replay_out_of_order_delivery(self):
        rec = DisseminationRecorder()
        rec.set_population(["A", "B", "C"])
        m1 = _msg("A", 0.0, [HistoryRecord("B", 10.0, 5.0)], msg_id=("A", 1))
        m2 = _msg("A", 100.0, [HistoryRecord("B", 20.0, 7.0)], msg_id=("A", 2))
        # The delaying channel reorders: the newer message lands first.
        rec.record_deliver(m2, "C", 110.0)
        rec.record_deliver(m1, "C", 120.0)
        assert rec.replay_claims("C")[("A", "A", "B")] == 20.0

    def test_wipe_erases_and_attribution_reports_it(self):
        rec, _, m2 = self._recorder()
        rec.record_wipe("C", 200.0)
        assert rec.replay_claims("C") == {}
        entries = rec.explain_missing(receiver="C")
        (entry,) = entries
        assert entry["delivered_at"] == [10.0, 110.0]
        assert entry["wiped_by"] == ["churn-wipe@t=200"]
        assert "was erased at peer C" in render_attribution(entry)

    def test_attribution_names_exact_drop_events(self):
        rec, _, _ = self._recorder()
        entries = rec.explain_missing(receiver="D")
        (entry,) = entries
        assert entry["claim"] == ["A", "B"]
        assert entry["attempts"] == 1
        assert entry["cut_by"] == ["loss@t=12"]
        text = render_attribution(entry)
        assert "never reached peer D" in text
        assert "loss@t=12" in text

    def test_no_attribution_without_an_attempt(self):
        rec = DisseminationRecorder()
        rec.set_population(["A", "B", "C"])
        m1 = _msg("A", 0.0, [HistoryRecord("B", 1.0, 1.0)], msg_id=("A", 1))
        rec.record_send(m1, "C", 0.0)
        rec.record_drop(m1, "C", 0.0, "loss")
        # C was attempted; pairs the schedule never targeted are silent.
        assert {e["receiver"] for e in rec.explain_missing()} == {"C"}

    def test_event_counts_split_drop_causes(self):
        rec, _, m2 = self._recorder()
        rec.record_drop(m2, "D", 130.0, "churn-offline", copy=1, delay=30.0)
        counts = rec.event_counts()
        assert counts["drop"] == 2
        assert counts["drop.loss"] == 1
        assert counts["drop.churn-offline"] == 1

    def test_plan_emits_duplicate_and_delay_events(self):
        rec = DisseminationRecorder()
        rec.set_population(["A", "B", "C"])
        m1 = _msg("A", 0.0, [HistoryRecord("B", 1.0, 1.0)], msg_id=("A", 1))
        rec.record_plan(m1, "C", 10.0, [10.0, 40.0])
        counts = rec.event_counts()
        assert counts["duplicate"] == 1
        assert counts["delay"] == 1  # only the second copy is delayed


class TestByteIdentity:
    def test_recording_off_and_on_are_bit_identical(self):
        plain = run_fig1(ScenarioConfig.tiny(seed=3))
        obs = make_observability(dissemination=True)
        recorded = run_fig1(ScenarioConfig.tiny(seed=3), obs=obs)
        np.testing.assert_array_equal(
            plain.sharer_reputation, recorded.sharer_reputation
        )
        np.testing.assert_array_equal(
            plain.freerider_reputation, recorded.freerider_reputation
        )
        np.testing.assert_array_equal(
            plain.net_contribution_gb, recorded.net_contribution_gb
        )
        assert plain.spearman == recorded.spearman
        # ... and the recorder actually saw the run.
        (snap,) = obs.dissemination.series()
        assert snap["summary"]["events"]["deliver"] > 0

    def test_faulted_run_identical_with_recording(self):
        scenario = ScenarioConfig.tiny(seed=7).with_faults(FAULTS)
        plain = run_fig1(scenario)
        recorded = run_fig1(scenario, obs=make_observability(dissemination=True))
        np.testing.assert_array_equal(
            plain.sharer_reputation, recorded.sharer_reputation
        )
        assert plain.spearman == recorded.spearman


class TestFaultedRunAnalytics:
    def test_envelope_invariants(self, faulted_run):
        sim, _ = faulted_run
        rec = sim.dissemination
        for mid in rec.message_ids():
            env = rec.message(mid)
            peer, seq = mid
            assert peer == env["sender"]
            assert env["hops"] == 1  # BarterCast never forwards
            if seq == 1:
                assert env["parent_id"] is None
            else:
                assert env["parent_id"] == (peer, seq - 1)

    def test_lineage_replay_matches_shared_history(self, faulted_run):
        """The auditor cross-check: replaying each peer's deliver/wipe
        events under the supersede rule reproduces its subjective shared
        history exactly — both directions (no extra, no missing)."""
        sim, _ = faulted_run
        rec = sim.dissemination
        for peer, node in sim.nodes.items():
            expected = {}
            for src, dst in node.shared.known_edges():
                for reporter in node.shared.reporters():
                    value = node.shared.claim_of(reporter, src, dst)
                    if value is not None:
                        expected[(reporter, src, dst)] = value
            assert rec.replay_claims(peer) == expected

    def test_fault_attribution_names_exact_events(self, faulted_run):
        sim, _ = faulted_run
        rec = sim.dissemination
        missing = rec.explain_missing()
        assert missing, "a 20% loss + churn run must leave undelivered claims"
        attributed = [e for e in missing if e["cut_by"] or e["wiped_by"]]
        assert attributed
        entry = attributed[0]
        for cause in entry["cut_by"]:
            kind, t = cause.split("@t=")
            assert kind in ("loss", "unconnectable", "offline", "churn-offline")
            # The named event exists in the log at exactly that time.
            claim_mids = rec._claim_messages()[
                (entry["claim"][0], entry["claim"][1])
            ]
            assert any(
                k == "drop"
                and mid in claim_mids
                and dst == entry["receiver"]
                and f"{et:g}" == t
                for k, et, mid, _, dst, _ in rec._iter_events()
            )
        text = render_attribution(entry)
        assert str(entry["receiver"]) in text

    def test_churn_drops_counted_separately_from_loss(self, faulted_run):
        sim, obs = faulted_run
        assert sim.channel.dropped_by_churn > 0
        assert (
            obs.metrics.value("net.dropped_by_churn")
            == float(sim.channel.dropped_by_churn)
        )
        # Churn-cut copies are inside the total, never double-counted.
        assert sim.channel.dropped_by_churn < sim.channel.dropped
        counts = sim.dissemination.event_counts()
        assert counts["drop.churn-offline"] == sim.channel.dropped_by_churn

    def test_summary_and_manifest_digest(self, faulted_run):
        sim, obs = faulted_run
        summary = obs.dissemination.summary()
        assert summary["coverage_fractions"] == [0.5, 0.9]
        (run,) = summary["runs"]
        assert run["population"] == len(sim.nodes)
        assert run["claims_reached"] <= run["claims"]
        assert run["redundancy_factor"] > 1.0  # duplication was on


class TestChannelTelemetry:
    def _stream(self, seed=7):
        return RngRegistry(seed).stream("faults.channel")

    def test_last_verdict_tracks_every_outcome(self):
        ch = ChannelModel(FaultConfig(loss=1.0), self._stream())
        assert ch.last_verdict is None
        ch.plan_delivery("a", "b", 5.0)
        assert ch.last_verdict == "dropped"
        ch = ChannelModel(FaultConfig(), self._stream())
        ch.plan_delivery("a", "b", 5.0)
        assert ch.last_verdict == "delivered"
        ch.note_undeliverable("a", "b", 6.0)
        assert ch.last_verdict == "offline"

    def test_offline_trace_carries_copy_delay_churn(self, tmp_path):
        trace_path = tmp_path / "net.jsonl"
        obs = make_observability(trace_path=trace_path, seed=1)
        ch = ChannelModel(
            FaultConfig(delay_max=10.0), self._stream(), obs=obs
        )
        ch.plan_delivery("a", "b", 5.0)
        ch.note_undeliverable("a", "b", 9.0, copy=2, delay=3.5, by_churn=True)
        obs.close()
        _, events = read_trace(trace_path)
        offline = next(e for e in events if e["name"] == "offline")
        assert offline["attrs"]["copy"] == 2
        assert offline["attrs"]["delay"] == 3.5
        assert offline["attrs"]["by_churn"] is True
        delivered = next(e for e in events if e["name"] == "delivered")
        assert len(delivered["attrs"]["delays"]) == delivered["attrs"]["copies"]
        assert ch.dropped_by_churn == 1
        assert ch.dropped == 1


class TestCollector:
    def test_labels_and_merge_order(self):
        col = DisseminationCollector()
        col.begin_task("task-a")
        rec = DisseminationRecorder(label=col.next_label())
        assert rec.label == "task-a"
        assert col.next_label() == "run-2"  # no pending label -> counter
        col.attach(rec)
        col.merge([{"label": "w1", "summary": {}, "claims": [], "undelivered": []}])
        labels = [s["label"] for s in col.series()]
        assert labels == ["w1", "task-a"]

    def test_export_writes_csv_and_json(self, tmp_path):
        col = DisseminationCollector()
        col.begin_task("fig2/rank")
        rec = DisseminationRecorder(label=col.next_label(), config=col.config)
        rec.set_population(["A", "B", "C"])
        m1 = _msg("A", 0.0, [HistoryRecord("B", 2.0, 1.0)], msg_id=("A", 1))
        rec.record_send(m1, "C", 0.0)
        rec.record_deliver(m1, "C", 1.0)
        col.attach(rec)
        written = col.export(tmp_path)
        names = sorted(p.name for p in written)
        assert names == ["dissemination.json", "dissemination_fig2_rank.csv"]
        doc = json.loads((tmp_path / DISSEMINATION_FILENAME).read_text())
        assert doc["series"][0]["label"] == "fig2/rank"
        header, row = (
            (tmp_path / "dissemination_fig2_rank.csv").read_text().splitlines()
        )
        assert header == "reporter,counterparty,eligible,reached,copies,first_t,t50,t90"
        assert row == "A,B,1,1,1,1.0,1.0,1.0"

    def test_null_collector_guards(self, tmp_path):
        assert not NULL_DISSEMINATION.enabled
        assert NULL_DISSEMINATION.export(tmp_path) == []
        with pytest.raises(RuntimeError):
            NULL_DISSEMINATION.attach(DisseminationRecorder())

    def test_bundle_flag_forms(self):
        assert make_observability() is NULL_OBS
        on = make_observability(dissemination=True)
        assert on.dissemination.enabled
        assert on.dissemination.config.coverage_fractions == (0.5, 0.9)
        explicit = make_observability(
            dissemination=DisseminationConfig(coverage_fractions=(0.25,))
        )
        assert explicit.dissemination.config.coverage_fractions == (0.25,)


class TestParallelParity:
    def _tasks(self):
        from repro.parallel import fig1_task

        faults = FaultConfig(loss=0.2, churn_rate=2.0)
        return [
            fig1_task(ScenarioConfig.tiny(seed=3).with_faults(faults)),
            fig1_task(ScenarioConfig.tiny(seed=4).with_faults(faults)),
        ]

    def _export_bytes(self, jobs, out_dir):
        from repro.parallel import ParallelRunner

        obs = make_observability(dissemination=True)
        runner = ParallelRunner(jobs=jobs, obs=obs)
        runner.run(self._tasks())
        obs.dissemination.export(out_dir)
        return (out_dir / DISSEMINATION_FILENAME).read_bytes()

    def test_jobs2_export_bytes_equal_serial(self, tmp_path):
        serial = self._export_bytes(1, tmp_path / "serial")
        pooled = self._export_bytes(2, tmp_path / "pooled")
        assert serial == pooled
        doc = json.loads(serial.decode("utf-8"))
        assert len(doc["series"]) == 2
        assert all(s["summary"]["events"]["deliver"] > 0 for s in doc["series"])


class TestChromeFlowArrows:
    def test_matched_pairs_only(self):
        records = [
            {"cat": "bc.message", "name": "send", "wall": 1.0,
             "attrs": {"msg_id": [1, 1]}},
            {"cat": "bc.message", "name": "receive", "wall": 1.5,
             "attrs": {"msg_id": [1, 1]}},
            {"cat": "bc.message", "name": "receive", "wall": 2.0,
             "attrs": {"msg_id": [1, 1]}},  # duplicate copy
            {"cat": "bc.message", "name": "send", "wall": 3.0,
             "attrs": {"msg_id": [9, 9]}},  # receive sampled away
            {"cat": "bc.message", "name": "receive", "wall": 4.0,
             "attrs": {"msg_id": [5, 5]}},  # send sampled away
        ]
        events = trace_to_chrome_events({"seed": 1}, records)
        starts = [e for e in events if e.get("ph") == "s"]
        finishes = [e for e in events if e.get("ph") == "f"]
        assert len(starts) == len(finishes) == 2
        assert sorted(e["id"] for e in starts) == sorted(e["id"] for e in finishes)
        assert len({e["id"] for e in starts}) == 2
        by_id = {e["id"]: e for e in starts}
        for fin in finishes:
            assert fin["bp"] == "e"
            assert fin["ts"] >= by_id[fin["id"]]["ts"]

    def test_traced_fig2_round_trip_has_no_dangling_flows(self, tmp_path):
        from repro import cli

        trace = tmp_path / "run.jsonl"
        assert cli.main(
            ["fig2", "--profile", "tiny", "--seed", "5", "--trace", str(trace)]
        ) == 0
        assert cli.main(["chrome-trace", str(trace)]) == 0
        doc = json.loads((tmp_path / "run.chrome.json").read_text())
        starts = [e for e in doc["traceEvents"] if e.get("ph") == "s"]
        finishes = [e for e in doc["traceEvents"] if e.get("ph") == "f"]
        assert starts, "a traced fig2 run must produce flow arrows"
        s_ids = sorted(e["id"] for e in starts)
        f_ids = sorted(e["id"] for e in finishes)
        assert len(set(s_ids)) == len(s_ids)  # one start per flow id
        assert s_ids == f_ids  # every start finishes, every finish starts
