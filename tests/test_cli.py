"""Tests for the command-line interface.

The CLI drives full experiments; to keep these tests fast we monkeypatch
the scenario lookup so ``--profile fast`` resolves to the tiny profile.
"""

import pytest

from repro import cli
from repro.experiments import ScenarioConfig


@pytest.fixture(autouse=True)
def tiny_profiles(monkeypatch):
    monkeypatch.setattr(
        ScenarioConfig,
        "named",
        classmethod(lambda cls, profile, seed=42: ScenarioConfig.tiny(seed)),
    )


class TestCli:
    def test_fig1_runs(self, capsys):
        assert cli.main(["fig1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1(a)" in out

    def test_fig2_runs(self, capsys):
        assert cli.main(["fig2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2(b)" in out

    def test_fig3_single_kind(self, capsys):
        assert cli.main(["fig3", "--kind", "ignore", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3(a)" in out
        assert "Figure 3(b)" not in out

    def test_fig4_runs(self, capsys):
        assert cli.main(["fig4", "--peers", "300", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4(b)" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            cli.main(["figure99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.main([])


class TestNewSubcommands:
    def test_whitewash_runs(self, capsys):
        assert cli.main(["whitewash", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Whitewashing defenses" in out
        assert "adaptive" in out

    def test_scalability_runs(self, capsys):
        assert cli.main(["scalability", "--peers", "2000", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Scalability" in out
        assert "query growth factor" in out

    def test_fig1_export(self, capsys, tmp_path):
        target = tmp_path / "series"
        assert cli.main(["fig1", "--seed", "3", "--export", str(target)]) == 0
        files = sorted(p.name for p in target.iterdir())
        assert files == [
            "fig1a_reputation_over_time.tsv",
            "fig1b_contribution_vs_reputation.tsv",
            "run_manifest.json",
        ]

    def test_fig4_export(self, capsys, tmp_path):
        target = tmp_path / "series"
        assert (
            cli.main(
                ["fig4", "--peers", "300", "--seed", "3", "--export", str(target)]
            )
            == 0
        )
        files = sorted(p.name for p in target.iterdir())
        assert files == [
            "fig4a_net_contribution.tsv",
            "fig4b_reputation_cdf.tsv",
            "run_manifest.json",
        ]

    def test_all_fig4_peers_override(self, capsys, monkeypatch):
        seen = {}

        def fake_fig4(peers, seed, export_dir=None, obs=None, manifest=None):
            seen["peers"] = peers

        monkeypatch.setattr(cli, "_fig4", fake_fig4)
        assert cli.main(["all", "--seed", "3", "--fig4-peers", "123"]) == 0
        assert seen["peers"] == 123


class TestTelemetryFlags:
    def test_timeseries_and_prof_export_artifacts(self, capsys, tmp_path):
        assert cli.main([
            "fig1", "--seed", "3", "--timeseries", "--prof", "--metrics",
            "--export", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "== Profile ==" in out
        assert (tmp_path / "run_manifest.json").exists()
        assert (tmp_path / "timeseries.json").exists()
        assert (tmp_path / "profile_chrome.json").exists()
        csvs = list(tmp_path.glob("timeseries_*.csv"))
        assert len(csvs) == 1
        header = csvs[0].read_text().splitlines()[0]
        assert header.startswith("t,coverage,rank_inversion_rate")
        import json

        doc = json.loads((tmp_path / "run_manifest.json").read_text())
        assert "timeseries" in doc["extra"] and "profile" in doc["extra"]

    def test_timeseries_cadence_value(self, capsys, tmp_path):
        assert cli.main([
            "fig1", "--seed", "3", "--timeseries", "7200",
            "--export", str(tmp_path),
        ]) == 0
        csvs = list(tmp_path.glob("timeseries_*.csv"))
        rows = csvs[0].read_text().strip().splitlines()[1:]
        assert float(rows[0].split(",")[0]) == 7200.0


class TestReportSubcommand:
    def test_report_from_export_dir(self, capsys, tmp_path):
        assert cli.main([
            "fig1", "--seed", "3", "--metrics", "--export", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        assert cli.main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "== Run: fig1 ==" in out
        assert "== Metrics ==" in out

    def test_report_from_bare_manifest_path(self, capsys, tmp_path):
        assert cli.main([
            "fig1", "--seed", "3", "--export", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        manifest = tmp_path / "run_manifest.json"
        assert cli.main(["report", str(manifest)]) == 0
        assert "== Run: fig1 ==" in capsys.readouterr().out

    def test_report_schema_mismatch_readable(self, capsys, tmp_path):
        bad = tmp_path / "run_manifest.json"
        bad.write_text('{"schema": "something/v99"}')
        assert cli.main(["report", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "something/v99" in err and "Traceback" not in err

    def test_report_missing_path(self, capsys, tmp_path):
        assert cli.main(["report", str(tmp_path / "nope")]) == 2
        assert "no run manifest" in capsys.readouterr().err


class TestMonitorSubcommand:
    def test_monitor_once_no_sweep(self, capsys, tmp_path):
        assert cli.main(["monitor", str(tmp_path), "--once"]) == 2
        assert "no sweep found" in capsys.readouterr().out

    def test_monitor_once_after_sweep(self, capsys, tmp_path):
        assert cli.main([
            "fig2", "--seed", "3", "--jobs", "2",
            "--monitor-dir", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        assert cli.main(["monitor", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "tasks (100%)" in out
        assert "worker" in out


class TestChromeTraceSubcommand:
    def test_convert_trace(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert cli.main([
            "fig1", "--seed", "3", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        out_path = tmp_path / "run.chrome.json"
        assert cli.main(["chrome-trace", str(trace)]) == 0
        assert out_path.exists()
        import json

        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]

    def test_missing_trace_errors(self, capsys, tmp_path):
        assert cli.main(["chrome-trace", str(tmp_path / "missing.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err
