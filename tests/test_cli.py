"""Tests for the command-line interface.

The CLI drives full experiments; to keep these tests fast we monkeypatch
the scenario lookup so ``--profile fast`` resolves to the tiny profile.
"""

import pytest

from repro import cli
from repro.experiments import ScenarioConfig


@pytest.fixture(autouse=True)
def tiny_profiles(monkeypatch):
    monkeypatch.setattr(
        ScenarioConfig,
        "named",
        classmethod(lambda cls, profile, seed=42: ScenarioConfig.tiny(seed)),
    )


class TestCli:
    def test_fig1_runs(self, capsys):
        assert cli.main(["fig1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1(a)" in out

    def test_fig2_runs(self, capsys):
        assert cli.main(["fig2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2(b)" in out

    def test_fig3_single_kind(self, capsys):
        assert cli.main(["fig3", "--kind", "ignore", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3(a)" in out
        assert "Figure 3(b)" not in out

    def test_fig4_runs(self, capsys):
        assert cli.main(["fig4", "--peers", "300", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4(b)" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            cli.main(["figure99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.main([])


class TestNewSubcommands:
    def test_whitewash_runs(self, capsys):
        assert cli.main(["whitewash", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Whitewashing defenses" in out
        assert "adaptive" in out

    def test_scalability_runs(self, capsys):
        assert cli.main(["scalability", "--peers", "2000", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Scalability" in out
        assert "query growth factor" in out

    def test_fig1_export(self, capsys, tmp_path):
        target = tmp_path / "series"
        assert cli.main(["fig1", "--seed", "3", "--export", str(target)]) == 0
        files = sorted(p.name for p in target.iterdir())
        assert files == [
            "fig1a_reputation_over_time.tsv",
            "fig1b_contribution_vs_reputation.tsv",
            "run_manifest.json",
        ]

    def test_fig4_export(self, capsys, tmp_path):
        target = tmp_path / "series"
        assert (
            cli.main(
                ["fig4", "--peers", "300", "--seed", "3", "--export", str(target)]
            )
            == 0
        )
        files = sorted(p.name for p in target.iterdir())
        assert files == [
            "fig4a_net_contribution.tsv",
            "fig4b_reputation_cdf.tsv",
            "run_manifest.json",
        ]

    def test_all_fig4_peers_override(self, capsys, monkeypatch):
        seen = {}

        def fake_fig4(peers, seed, export_dir=None, obs=None, manifest=None):
            seen["peers"] = peers

        monkeypatch.setattr(cli, "_fig4", fake_fig4)
        assert cli.main(["all", "--seed", "3", "--fig4-peers", "123"]) == 0
        assert seen["peers"] == 123
