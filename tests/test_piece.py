"""Unit and property tests for bitfields and rarest-first selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bittorrent.piece import Bitfield, pick_rarest


class TestBitfield:
    def test_empty_start(self):
        b = Bitfield(10)
        assert b.num_have == 0
        assert not b.is_complete
        assert b.fraction == 0.0

    def test_complete_start(self):
        b = Bitfield(10, complete=True)
        assert b.num_have == 10
        assert b.is_complete

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Bitfield(0)

    def test_add(self):
        b = Bitfield(5)
        assert b.add(2) is True
        assert b.add(2) is False  # duplicate
        assert b.num_have == 1

    def test_add_many_counts_new(self):
        b = Bitfield(10)
        b.add(3)
        new = b.add_many(np.array([3, 4, 5]))
        assert new == 2
        assert b.num_have == 3

    def test_add_many_empty(self):
        b = Bitfield(10)
        assert b.add_many(np.empty(0, dtype=np.int64)) == 0

    def test_completion(self):
        b = Bitfield(3)
        b.add_many(np.array([0, 1, 2]))
        assert b.is_complete
        assert b.fraction == 1.0

    def test_missing_mask(self):
        b = Bitfield(4)
        b.add(1)
        assert list(b.missing_mask()) == [True, False, True, True]

    def test_wants_from_complete_uploader(self):
        mine = Bitfield(4)
        seeder = Bitfield(4, complete=True)
        assert mine.wants_from(seeder)

    def test_wants_from_empty_uploader(self):
        mine = Bitfield(4)
        other = Bitfield(4)
        assert not mine.wants_from(other)

    def test_wants_from_subset_uploader(self):
        mine = Bitfield(4)
        mine.add_many(np.array([0, 1]))
        other = Bitfield(4)
        other.add(0)
        assert not mine.wants_from(other)  # I already have everything it has
        other.add(3)
        assert mine.wants_from(other)

    def test_complete_wants_nothing(self):
        mine = Bitfield(4, complete=True)
        assert not mine.wants_from(Bitfield(4, complete=True))


class TestPickRarest:
    def test_picks_rarest_first(self):
        avail = np.array([5, 1, 3, 2], dtype=np.int32)
        receiver = np.zeros(4, dtype=bool)
        in_flight = np.zeros(4, dtype=bool)
        picked = pick_rarest(avail, None, receiver, in_flight, 2)
        assert list(picked) == [1, 3]

    def test_respects_uploader_have(self):
        avail = np.array([1, 1, 1, 1], dtype=np.int32)
        uploader = np.array([True, False, True, False])
        receiver = np.zeros(4, dtype=bool)
        in_flight = np.zeros(4, dtype=bool)
        picked = pick_rarest(avail, uploader, receiver, in_flight, 4)
        assert set(picked) <= {0, 2}

    def test_excludes_received_and_in_flight(self):
        avail = np.ones(4, dtype=np.int32)
        receiver = np.array([True, False, False, False])
        in_flight = np.array([False, True, False, False])
        picked = pick_rarest(avail, None, receiver, in_flight, 4)
        assert set(picked) == {2, 3}

    def test_k_zero(self):
        avail = np.ones(4, dtype=np.int32)
        z = np.zeros(4, dtype=bool)
        assert pick_rarest(avail, None, z, z, 0).size == 0

    def test_no_candidates(self):
        avail = np.ones(4, dtype=np.int32)
        receiver = np.ones(4, dtype=bool)
        in_flight = np.zeros(4, dtype=bool)
        assert pick_rarest(avail, None, receiver, in_flight, 2).size == 0

    def test_k_exceeds_candidates(self):
        avail = np.ones(4, dtype=np.int32)
        receiver = np.array([True, True, False, False])
        in_flight = np.zeros(4, dtype=bool)
        picked = pick_rarest(avail, None, receiver, in_flight, 10)
        assert set(picked) == {2, 3}

    def test_result_sorted_by_rarity(self):
        avail = np.array([9, 2, 7, 1, 5], dtype=np.int32)
        z = np.zeros(5, dtype=bool)
        picked = pick_rarest(avail, None, z, z, 3)
        assert list(picked) == [3, 1, 5 - 1]  # indices 3 (1), 1 (2), 4 (5)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=64),
    k=st.integers(min_value=0, max_value=70),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_pick_rarest_invariants(n, k, seed):
    rng = np.random.default_rng(seed)
    avail = rng.integers(0, 20, size=n).astype(np.int32)
    uploader = rng.random(n) < 0.7
    receiver = rng.random(n) < 0.3
    in_flight = rng.random(n) < 0.1
    picked = pick_rarest(avail, uploader, receiver, in_flight, k)
    # No duplicates; only valid candidates; at most k.
    assert len(set(picked.tolist())) == picked.size
    assert picked.size <= max(0, k)
    for p in picked:
        assert uploader[p] and not receiver[p] and not in_flight[p]
    # The picked set contains the k rarest candidates (by availability).
    candidates = np.flatnonzero(uploader & ~receiver & ~in_flight)
    if k > 0 and candidates.size:
        picked_avail = sorted(avail[picked].tolist())
        best = sorted(avail[candidates].tolist())[: picked.size]
        assert picked_avail == best
