"""Unit and property tests for the pluggable reputation engines.

Covers the mechanism-zoo contract (DESIGN.md §15): cross-engine
agreement on the degenerate cases every mechanism must score the same
way, the per-engine semantics that differ on purpose (ratio's closed
bounds and native ban threshold), node-level engine dispatch with the
default path untouched, and the RankPolicy stranger-rotation property —
with every reputation tied at zero the rank order must equal plain
BitTorrent's shuffle for the same seed, under every engine.
"""

import math

import pytest

from repro.core.engines import (
    ENGINE_NAMES,
    ENGINES,
    BarterCastEngine,
    DifferentialGossipEngine,
    RatioCreditEngine,
    make_engine,
)
from repro.core.messages import BarterCastMessage, HistoryRecord
from repro.core.node import BarterCastNode
from repro.core.policies import NoPolicy, RankPolicy
from repro.core.reputation import MB
from repro.sim.rng import RngRegistry


def engines_on(node):
    """One attached instance of every registered engine, same node."""
    return [make_engine(name).attach(node) for name in ENGINE_NAMES]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_registry_names_match_instances(self):
        for name in ENGINE_NAMES:
            assert make_engine(name).name == name

    def test_expected_zoo(self):
        assert set(ENGINES) == {"bartercast", "gossip", "ratio"}

    def test_unknown_engine_rejected_with_known_list(self):
        with pytest.raises(ValueError, match="bartercast"):
            make_engine("eigentrust")

    def test_engine_knob_validation(self):
        with pytest.raises(ValueError):
            DifferentialGossipEngine(gossip_weight=1.5)
        with pytest.raises(ValueError):
            RatioCreditEngine(ban_ratio=-0.1)


# ---------------------------------------------------------------------------
# Cross-engine agreement on degenerate cases
# ---------------------------------------------------------------------------
class TestEngineAgreement:
    def test_empty_graph_scores_zero_everywhere(self):
        node = BarterCastNode("me")
        for eng in engines_on(node):
            assert eng.reputation_of("stranger") == 0.0
            assert eng.evidence_flows("stranger") == (0.0, 0.0)

    def test_self_reputation_raises_everywhere(self):
        node = BarterCastNode("me")
        for eng in engines_on(node):
            with pytest.raises(ValueError):
                eng.reputation_of("me")

    def test_symmetric_two_peer_scores_zero_everywhere(self):
        node = BarterCastNode("me")
        node.record_upload("p", 64 * MB, now=1.0)
        node.record_download("p", 64 * MB, now=2.0)
        for eng in engines_on(node):
            assert eng.reputation_of("p") == pytest.approx(0.0)

    def test_batch_identical_to_scalar_everywhere(self):
        node = BarterCastNode("me")
        node.record_upload("a", 10 * MB, now=1.0)
        node.record_download("b", 90 * MB, now=2.0)
        node.graph.add_node("c")
        peers = ["a", "b", "c", "me", "a"]  # self and dupes skipped
        for eng in engines_on(node):
            batch = eng.reputations_of(peers)
            assert set(batch) == {"a", "b", "c"}
            for p, value in batch.items():
                assert value == eng.reputation_of(p)

    def test_scores_within_declared_bounds(self):
        node = BarterCastNode("me")
        node.record_upload("leech", 5000 * MB, now=1.0)
        node.record_download("seed", 5000 * MB, now=2.0)
        for eng in engines_on(node):
            lo, hi = eng.score_bounds
            for peer in ("leech", "seed"):
                rep = eng.reputation_of(peer)
                assert not math.isnan(rep)
                if eng.bounds_closed:
                    assert lo <= rep <= hi
                else:
                    assert lo < rep < hi

    def test_rank_tie_break_deterministic_everywhere(self):
        node = BarterCastNode("me")
        for p in ("c", "a", "b"):
            node.graph.add_node(p)
        for eng in engines_on(node):
            # All-zero scores: the shared tie-break is repr order.
            assert eng.rank_by_reputation(["c", "a", "b"]) == ["a", "b", "c"]


# ---------------------------------------------------------------------------
# Per-engine semantics
# ---------------------------------------------------------------------------
class TestBarterCastEngine:
    def test_matches_native_node_path(self):
        node = BarterCastNode("me")
        node.record_download("p", 100 * MB, now=1.0)
        eng = BarterCastEngine().attach(node)
        assert eng.reputation_of("p") == node.reputation_of("p")
        inflow, outflow = eng.evidence_flows("p")
        assert inflow == 100 * MB and outflow == 0.0

    def test_explain_components_decompose_score(self):
        node = BarterCastNode("me")
        node.record_download("p", 100 * MB, now=1.0)
        comp = BarterCastEngine().attach(node).explain_components("p")
        assert comp["net_bytes"] == 100 * MB
        assert comp["score"] == node.reputation_of("p")


class TestRatioCreditEngine:
    def test_bootstrap_grace_is_zero_not_nan(self):
        node = BarterCastNode("me")
        node.graph.add_node("p")
        eng = RatioCreditEngine().attach(node)
        rep = eng.reputation_of("p")
        assert rep == 0.0 and not math.isnan(rep)

    def test_pure_leecher_and_seeder_hit_closed_bounds(self):
        node = BarterCastNode("me")
        node.record_upload("leech", 1 * MB, now=1.0)
        node.record_download("seed", 1 * MB, now=2.0)
        eng = RatioCreditEngine().attach(node)
        assert eng.bounds_closed
        assert eng.reputation_of("leech") == -1.0
        assert eng.reputation_of("seed") == 1.0

    def test_scale_free(self):
        small = BarterCastNode("me")
        small.record_upload("p", 2 * MB, now=1.0)
        small.record_download("p", 1 * MB, now=2.0)
        big = BarterCastNode("me")
        big.record_upload("p", 2000 * MB, now=1.0)
        big.record_download("p", 1000 * MB, now=2.0)
        assert RatioCreditEngine().attach(small).reputation_of(
            "p"
        ) == RatioCreditEngine().attach(big).reputation_of("p")

    def test_effective_delta_is_native_ratio_floor(self):
        eng = RatioCreditEngine(ban_ratio=0.25)
        # ratio r maps to score (r − 1)/(r + 1); the sweep δ is ignored.
        assert eng.effective_delta(-0.5) == pytest.approx(-0.6)
        assert eng.effective_delta(0.0) == pytest.approx(-0.6)
        assert RatioCreditEngine(ban_ratio=1.0).effective_delta(0.0) == 0.0


class TestDifferentialGossipEngine:
    def test_gossip_edges_discounted(self):
        node = BarterCastNode("me")
        node.record_download("j", 30 * MB, now=1.0)  # first-hand j -> me
        msg = BarterCastMessage(
            "j", 2.0, records=(HistoryRecord("q", 40 * MB, 0.0),)
        )
        node.receive_message(msg)  # gossip: j -> q, 40 MB
        eng = DifferentialGossipEngine(gossip_weight=0.5).attach(node)
        up, down = eng.evidence_flows("j")
        assert up == pytest.approx(30 * MB + 0.5 * 40 * MB)
        assert down == 0.0
        metric = node.config.metric
        assert eng.reputation_of("j") == pytest.approx(metric.scale(up))

    def test_full_weight_reduces_to_raw_volume(self):
        node = BarterCastNode("me")
        node.record_download("j", 30 * MB, now=1.0)
        msg = BarterCastMessage(
            "j", 2.0, records=(HistoryRecord("q", 40 * MB, 0.0),)
        )
        node.receive_message(msg)
        eng = DifferentialGossipEngine(gossip_weight=1.0).attach(node)
        assert eng.evidence_flows("j") == (70 * MB, 0.0)


# ---------------------------------------------------------------------------
# Node-level dispatch
# ---------------------------------------------------------------------------
class TestNodeDispatch:
    def test_default_node_skips_dispatch(self):
        node = BarterCastNode("me")
        assert node.engine_name == "bartercast"
        assert node._engine_dispatch is None

    def test_unknown_engine_name_rejected(self):
        with pytest.raises(ValueError):
            BarterCastNode("me", engine="eigentrust")

    @pytest.mark.parametrize("name", ["gossip", "ratio"])
    def test_rival_node_scores_like_standalone_engine(self, name):
        node = BarterCastNode("me", engine=name)
        node.record_upload("p", 10 * MB, now=1.0)
        node.record_download("p", 90 * MB, now=2.0)
        assert node.active_engine().name == name
        reference = BarterCastNode("me")
        reference.record_upload("p", 10 * MB, now=1.0)
        reference.record_download("p", 90 * MB, now=2.0)
        standalone = make_engine(name).attach(reference)
        assert node.reputation_of("p") == standalone.reputation_of("p")
        assert node.reputations_of(["p"]) == {"p": standalone.reputation_of("p")}
        assert node.rank_by_reputation(["p"]) == ["p"]

    def test_active_engine_facade_on_default_node(self):
        node = BarterCastNode("me")
        node.record_download("p", 50 * MB, now=1.0)
        eng = node.active_engine()
        assert eng.name == "bartercast"
        assert eng.reputation_of("p") == node.reputation_of("p")

    def test_aggregation_memo_rides_node_cache_counters(self):
        node = BarterCastNode("me", engine="ratio")
        node.record_upload("p", 10 * MB, now=1.0)
        node.reputation_of("p")
        assert node.rep_cache_misses == 1
        node.reputation_of("p")
        assert node.rep_cache_hits == 1
        assert node.rep_cache_size == 1
        node.record_upload("p", 10 * MB, now=2.0)  # graph write bumps version
        node.reputation_of("p")
        assert node.rep_cache_invalidations >= 1
        assert node.rep_cache_misses == 2


# ---------------------------------------------------------------------------
# RankPolicy stranger rotation (fault-harness satellite)
# ---------------------------------------------------------------------------
class TestStrangerRotation:
    """With every reputation tied at zero, the rank policy must rotate
    the optimistic slot exactly like plain BitTorrent: RankPolicy
    shuffles then stable-sorts, so an all-zero tie preserves the
    shuffle, and both policies consume the same single draw from the
    stream.  Pinned per engine because the zero tie arises differently
    (bartercast/gossip: empty evidence; ratio: bootstrap grace)."""

    PEERS = ["p1", "p2", "p3", "p4", "p5"]

    def _stranger_node(self, engine):
        node = BarterCastNode("me", engine=engine)
        for p in self.PEERS:
            node.graph.add_node(p)
        return node

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_all_zero_tie_matches_plain_bittorrent_cadence(self, engine):
        node = self._stranger_node(engine)
        rank_rng = RngRegistry(11).stream("choker")
        plain_rng = RngRegistry(11).stream("choker")
        rank, plain = RankPolicy(), NoPolicy()
        for _ in range(20):  # whole rotation cadence, not just one round
            assert rank.order_optimistic(
                node, list(self.PEERS), rank_rng
            ) == plain.order_optimistic(None, list(self.PEERS), plain_rng)

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_rotation_deterministic_per_seed(self, engine):
        def orders(seed):
            node = self._stranger_node(engine)
            rng = RngRegistry(seed).stream("choker")
            policy = RankPolicy()
            return [
                tuple(policy.order_optimistic(node, list(self.PEERS), rng))
                for _ in range(10)
            ]

        assert orders(7) == orders(7)
        assert orders(7) != orders(8)  # the shuffle really is seeded

    def test_nonzero_reputation_still_dominates_rotation(self):
        node = BarterCastNode("me")
        node.record_download("good", 500 * MB, now=1.0)
        node.record_upload("bad", 500 * MB, now=1.0)
        node.graph.add_node("s1")
        node.graph.add_node("s2")
        rng = RngRegistry(3).stream("choker")
        order = RankPolicy().order_optimistic(
            node, ["bad", "s1", "good", "s2"], rng
        )
        assert order[0] == "good" and order[-1] == "bad"
        assert set(order[1:3]) == {"s1", "s2"}
