"""Unit tests for the BarterCast node."""

import pytest

from repro.core.adversary import Ignorer, SelfishLiar
from repro.core.messages import BarterCastMessage, HistoryRecord
from repro.core.node import BarterCastConfig, BarterCastNode
from repro.core.reputation import MB, ReputationMetric


class TestTransferAccounting:
    def test_upload_updates_history_and_graph(self):
        n = BarterCastNode("me")
        n.record_upload("p", 100.0, now=1.0)
        assert n.history.get("p").uploaded == 100.0
        assert n.graph.capacity("me", "p") == 100.0

    def test_download_updates_history_and_graph(self):
        n = BarterCastNode("me")
        n.record_download("p", 60.0, now=1.0)
        assert n.graph.capacity("p", "me") == 60.0

    def test_accumulation_reflected_in_graph(self):
        n = BarterCastNode("me")
        n.record_upload("p", 100.0, now=1.0)
        n.record_upload("p", 20.0, now=2.0)
        assert n.graph.capacity("me", "p") == 120.0

    def test_note_seen_self_ignored(self):
        n = BarterCastNode("me")
        n.note_seen("me", 5.0)  # no exception, no record
        assert len(n.history) == 0


class TestGossip:
    def test_honest_message_carries_history(self):
        n = BarterCastNode("me")
        n.record_download("p", 100.0, now=1.0)
        msg = n.create_message(now=2.0)
        assert msg is not None
        assert msg.sender == "me"
        parties = [r.counterparty for r in msg.records]
        assert parties == ["p"]
        assert n.messages_sent == 1

    def test_receive_message_builds_graph(self):
        n = BarterCastNode("me")
        msg = BarterCastMessage("r", 1.0, records=(HistoryRecord("c", 10.0, 3.0),))
        applied = n.receive_message(msg)
        assert applied == 1
        assert n.graph.capacity("r", "c") == 10.0
        assert n.messages_received == 1

    def test_own_message_rejected(self):
        n = BarterCastNode("me")
        msg = BarterCastMessage("me", 1.0)
        with pytest.raises(ValueError):
            n.receive_message(msg)

    def test_private_history_beats_gossip_about_self(self):
        n = BarterCastNode("me")
        n.record_upload("r", 50.0, now=1.0)
        # r claims me->r was enormous; the claim must not override the
        # node's own private history.
        msg = BarterCastMessage("r", 2.0, records=(HistoryRecord("me", 0.0, 1e15),))
        n.receive_message(msg)
        assert n.graph.capacity("me", "r") == 50.0


class TestReputation:
    def test_direct_reputation(self):
        n = BarterCastNode("me")
        n.record_download("p", 200 * MB, now=1.0)
        assert n.reputation_of("p") > 0.5

    def test_self_reputation_rejected(self):
        n = BarterCastNode("me")
        with pytest.raises(ValueError):
            n.reputation_of("me")

    def test_cache_invalidated_on_graph_change(self):
        n = BarterCastNode("me")
        n.record_download("p", 100 * MB, now=1.0)
        r1 = n.reputation_of("p")
        n.record_upload("p", 300 * MB, now=2.0)
        r2 = n.reputation_of("p")
        assert r2 < r1

    def test_cache_returns_same_value_without_changes(self):
        n = BarterCastNode("me")
        n.record_download("p", 100 * MB, now=1.0)
        assert n.reputation_of("p") == n.reputation_of("p")

    def test_reputations_of_batch(self):
        n = BarterCastNode("me")
        n.record_download("a", 100 * MB, now=1.0)
        n.record_upload("b", 100 * MB, now=1.0)
        reps = n.reputations_of(["a", "b", "me"])
        assert set(reps) == {"a", "b"}
        assert reps["a"] > 0 > reps["b"]

    def test_rank_by_reputation(self):
        n = BarterCastNode("me")
        n.record_download("good", 500 * MB, now=1.0)
        n.record_upload("bad", 500 * MB, now=1.0)
        n.graph.add_node("stranger")
        ranked = n.rank_by_reputation(["bad", "stranger", "good"])
        assert ranked == ["good", "stranger", "bad"]

    def test_rank_excludes_self(self):
        n = BarterCastNode("me")
        assert n.rank_by_reputation(["me"]) == []

    def test_known_peers_counts_graph_nodes(self):
        n = BarterCastNode("me")
        assert n.known_peers == 1  # self
        n.record_upload("p", 1.0, now=0.0)
        assert n.known_peers == 2


class TestBehaviors:
    def test_ignorer_sends_nothing(self):
        n = BarterCastNode("me", behavior=Ignorer())
        n.record_download("p", 100.0, now=1.0)
        assert n.create_message(now=2.0) is None
        assert n.messages_sent == 0

    def test_liar_fabricates_uploads(self):
        n = BarterCastNode("me", behavior=SelfishLiar(lie_upload_bytes=1e12))
        n.record_download("p", 100.0, now=1.0)
        msg = n.create_message(now=2.0)
        assert msg is not None
        assert all(r.uploaded == 1e12 and r.downloaded == 0.0 for r in msg.records)

    def test_liar_with_empty_history_sends_nothing(self):
        n = BarterCastNode("me", behavior=SelfishLiar())
        assert n.create_message(now=1.0) is None

    def test_config_controls_selection_size(self):
        cfg = BarterCastConfig(n_highest=1, n_recent=1)
        n = BarterCastNode("me", config=cfg)
        for i in range(5):
            n.record_download(f"p{i}", 100.0 * (i + 1), now=float(i))
        msg = n.create_message(now=10.0)
        # 1 top uploader (p4) + 1 most recent (p4, deduped) = 1 record.
        assert msg.num_records == 1
        assert msg.records[0].counterparty == "p4"
